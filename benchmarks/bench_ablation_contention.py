"""Ablation: cost-model simulator vs contention-aware event simulator.

The paper's simulator computes round times from the Section III cost
model, which explicitly ignores cross-method interference (e.g. a
hot-standby node ingesting migration and reconstruction traffic at
once, or a scattered destination that is also a reconstruction helper).
Our event-driven simulator charges those effects.  This bench
quantifies the gap — the honest error bar on the paper's simulated
FastPR numbers:

* scattered repair: the two simulators agree within tens of percent;
* hot-standby repair: contention erodes most of FastPR's simulated
  gain, because migration and reconstruction share the standby ingest
  bottleneck the model treats as independent.
"""

from conftest import run_once

from repro.bench.harness import Experiment, Panel
from repro.core.plan import RepairScenario
from repro.core.planner import FastPRPlanner, ReconstructionOnlyPlanner
from repro.sim.cost_model import evaluate_plan
from repro.sim.simulator import simulate_repair
from repro.sim.workload import SimulationConfig, build_cluster_with_stf


def run_ablation(runs: int = 2) -> Experiment:
    exp = Experiment(
        "ablation_contention",
        "Cost-model vs event-driven simulation of FastPR",
    )
    for scenario, title in (
        (RepairScenario.SCATTERED, "scattered repair"),
        (RepairScenario.HOT_STANDBY, "hot-standby repair"),
    ):
        panel = Panel(f"Ablation — {title}", "simulator")
        model_times, des_times, recon_model = [], [], []
        for run in range(runs):
            cfg = SimulationConfig(num_stripes=400, seed=41 + 101 * run)
            cluster, stf = build_cluster_with_stf(cfg)
            plan = FastPRPlanner(scenario=scenario, seed=run, group_size=64).plan(
                cluster, stf
            )
            model_times.append(evaluate_plan(cluster, plan).time_per_chunk)
            des_times.append(simulate_repair(cluster, plan).time_per_chunk)
            recon = ReconstructionOnlyPlanner(
                scenario=scenario, seed=run, group_size=64
            ).plan(cluster, stf)
            recon_model.append(evaluate_plan(cluster, recon).time_per_chunk)
        n = len(model_times)
        panel.add_point(
            "fastpr",
            {
                "cost_model": sum(model_times) / n,
                "event_sim": sum(des_times) / n,
                "recon_model": sum(recon_model) / n,
            },
        )
        exp.panels.append(panel)
    return exp


def test_ablation_contention(benchmark, save_result):
    exp = run_once(benchmark, run_ablation)
    save_result(exp)
    for panel in exp.panels:
        model = panel.values_of("cost_model")[0]
        des = panel.values_of("event_sim")[0]
        # Contention can only slow a plan down, never speed it up by
        # much (small timing overlap slack allowed).
        assert des > model * 0.85, f"{panel.title}: DES {des} vs model {model}"
    scattered = exp.panels[0]
    hot = exp.panels[1]
    # Hot-standby suffers relatively more from contention than
    # scattered repair (the standby ingest is shared).
    hot_ratio = hot.values_of("event_sim")[0] / hot.values_of("cost_model")[0]
    scat_ratio = (
        scattered.values_of("event_sim")[0]
        / scattered.values_of("cost_model")[0]
    )
    assert hot_ratio > scat_ratio * 0.9
