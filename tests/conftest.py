"""Shared fixtures for the FastPR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cluster import StorageCluster


@pytest.fixture
def small_cluster() -> StorageCluster:
    """12 storage nodes + 3 standbys, 40 RS(5,3) stripes, seeded."""
    cluster = StorageCluster.random(
        num_nodes=12,
        num_stripes=40,
        n=5,
        k=3,
        num_hot_standby=3,
        seed=7,
        chunk_size=1 << 16,
    )
    return cluster


@pytest.fixture
def stf_cluster(small_cluster):
    """The small cluster with node 0 flagged soon-to-fail."""
    small_cluster.node(0).mark_soon_to_fail()
    return small_cluster, 0


@pytest.fixture
def medium_cluster() -> StorageCluster:
    """30 storage nodes, 120 RS(9,6) stripes — enough for parallelism."""
    return StorageCluster.random(
        num_nodes=30,
        num_stripes=120,
        n=9,
        k=6,
        num_hot_standby=3,
        seed=11,
        chunk_size=1 << 16,
    )
