"""Tests for the Azure-style LRC codec."""

import itertools

import numpy as np
import pytest

from repro.ec.codec import DecodeError
from repro.ec.lrc import LocalReconstructionCodec


def random_chunks(k, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8).tobytes() for _ in range(k)]


@pytest.fixture
def lrc():
    """LRC(6, 2, 2): 6 data, 2 local parities, 2 globals — n=10."""
    return LocalReconstructionCodec(6, 2, 2)


class TestConstruction:
    def test_parameters(self, lrc):
        assert lrc.n == 10
        assert lrc.k == 6
        assert lrc.group_size == 3

    def test_k_not_divisible(self):
        with pytest.raises(ValueError):
            LocalReconstructionCodec(7, 2, 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LocalReconstructionCodec(0, 1, 1)
        with pytest.raises(ValueError):
            LocalReconstructionCodec(4, 2, -1)

    def test_single_repair_cost_is_group_size(self, lrc):
        cost = lrc.single_repair_cost()
        assert cost.helpers == 3
        assert cost.traffic_chunks == 3.0


class TestGroups:
    def test_group_of_data_chunks(self, lrc):
        assert lrc.group_of(0) == 0
        assert lrc.group_of(2) == 0
        assert lrc.group_of(3) == 1
        assert lrc.group_of(5) == 1

    def test_group_of_local_parity(self, lrc):
        assert lrc.group_of(6) == 0
        assert lrc.group_of(7) == 1

    def test_group_of_global_parity_raises(self, lrc):
        with pytest.raises(ValueError):
            lrc.group_of(8)

    def test_local_group_members(self, lrc):
        assert lrc.local_group_members(0) == [0, 1, 2, 6]
        assert lrc.local_group_members(1) == [3, 4, 5, 7]

    def test_bad_group(self, lrc):
        with pytest.raises(ValueError):
            lrc.local_group_members(2)


class TestEncodeDecode:
    def test_systematic_prefix(self, lrc):
        data = random_chunks(6, 64)
        coded = lrc.encode(data)
        assert len(coded) == 10
        assert coded[:6] == data

    def test_local_parity_is_group_xor(self, lrc):
        data = random_chunks(6, 32, seed=2)
        coded = lrc.encode(data)
        group0 = np.frombuffer(coded[0], dtype=np.uint8).copy()
        for i in (1, 2):
            group0 ^= np.frombuffer(coded[i], dtype=np.uint8)
        assert group0.tobytes() == coded[6]

    def test_local_repair_of_data_chunk(self, lrc):
        coded = lrc.encode(random_chunks(6, 64, seed=3))
        available = {i: coded[i] for i in range(10) if i != 1}
        out = lrc.decode(available, [1])
        assert out[1] == coded[1]

    def test_local_repair_of_local_parity(self, lrc):
        coded = lrc.encode(random_chunks(6, 64, seed=4))
        available = {i: coded[i] for i in range(10) if i != 7}
        out = lrc.decode(available, [7])
        assert out[7] == coded[7]

    def test_global_repair_when_group_broken(self, lrc):
        coded = lrc.encode(random_chunks(6, 64, seed=5))
        # Lose two chunks of group 0: local repair impossible, but the
        # global parities save the day.
        available = {i: coded[i] for i in range(10) if i not in (0, 1)}
        out = lrc.decode(available, [0, 1])
        assert out[0] == coded[0]
        assert out[1] == coded[1]

    def test_tolerates_any_single_and_global_failures(self, lrc):
        coded = lrc.encode(random_chunks(6, 32, seed=6))
        # Any 3 losses including at most one per group + globals are
        # recoverable; test the documented pattern (1 data + 2 globals).
        available = {i: coded[i] for i in range(10) if i not in (2, 8, 9)}
        out = lrc.decode(available, [2, 8, 9])
        for i in (2, 8, 9):
            assert out[i] == coded[i]

    def test_unrecoverable_raises(self, lrc):
        coded = lrc.encode(random_chunks(6, 32, seed=7))
        # Lose an entire local group (4 chunks) plus both globals:
        # rank < k.
        available = {
            i: coded[i] for i in range(10) if i not in (0, 1, 2, 6, 8, 9)
        }
        with pytest.raises(DecodeError):
            lrc.decode(available, [0])

    def test_decode_wanted_present(self, lrc):
        coded = lrc.encode(random_chunks(6, 32, seed=8))
        out = lrc.decode({i: coded[i] for i in range(10)}, [3])
        assert out[3] == coded[3]


class TestRepairHelpers:
    def test_local_helpers_preferred(self, lrc):
        helpers = lrc.repair_helpers(1, [i for i in range(10) if i != 1])
        assert sorted(helpers) == [0, 2, 6]

    def test_degraded_falls_back_to_global(self, lrc):
        alive = [i for i in range(10) if i not in (1, 2)]
        helpers = lrc.repair_helpers(1, alive)
        assert len(helpers) == 6
        assert 1 not in helpers
        assert 2 not in helpers


class TestRecoveryCoefficients:
    def test_local_coefficients_all_one(self, lrc):
        coeffs = lrc.recovery_coefficients(0, [1, 2, 6])
        assert coeffs == {1: 1, 2: 1, 6: 1}

    def test_local_streaming_repair(self, lrc):
        coded = lrc.encode(random_chunks(6, 64, seed=9))
        coeffs = lrc.recovery_coefficients(4, [3, 5, 7])
        acc = np.zeros(64, dtype=np.uint8)
        for helper, coeff in coeffs.items():
            assert coeff == 1
            acc ^= np.frombuffer(coded[helper], dtype=np.uint8)
        assert acc.tobytes() == coded[4]

    def test_global_coefficients_reconstruct(self, lrc):
        from repro.ec.galois import gf_mul

        coded = lrc.encode(random_chunks(6, 64, seed=10))
        helpers = [1, 2, 3, 4, 5, 8]  # chunk 0 lost, 6/7/9 unavailable
        coeffs = lrc.recovery_coefficients(0, helpers)
        acc = np.zeros(64, dtype=np.uint8)
        for helper, coeff in coeffs.items():
            table = np.array([gf_mul(coeff, v) for v in range(256)], dtype=np.uint8)
            acc ^= table[np.frombuffer(coded[helper], dtype=np.uint8)]
        assert acc.tobytes() == coded[0]

    def test_lost_in_helpers_raises(self, lrc):
        with pytest.raises(DecodeError):
            lrc.recovery_coefficients(0, [0, 1, 2])
