"""Markdown report generation from saved bench results.

``pytest benchmarks/ --benchmark-only`` writes each experiment's series
to ``benchmarks/results/<id>.json`` (plus a human-readable ``.txt``).
This module folds the JSON documents into one markdown report — a table
per panel — so a full reproduction run can be summarized with::

    python -m repro.bench.report benchmarks/results -o REPORT.md
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .harness import Experiment


def experiment_to_markdown(experiment: Experiment) -> List[str]:
    """Render one experiment as markdown blocks."""
    out = [f"## {experiment.experiment_id}: {experiment.title}", ""]
    for panel in experiment.panels:
        out.append(f"### {panel.title}")
        out.append(f"*{panel.ylabel}*")
        out.append("")
        labels = [series.label for series in panel.series]
        out.append("| " + " | ".join([panel.xlabel] + labels) + " |")
        out.append("|" + "---|" * (len(labels) + 1))
        for i, xtick in enumerate(panel.xticks):
            cells = [xtick]
            for series in panel.series:
                value = series.values[i] if i < len(series.values) else None
                cells.append("" if value is None else f"{value:.4f}")
            out.append("| " + " | ".join(cells) + " |")
        out.append("")
    return out


def _order(path: Path):
    """Paper figures first (numerically), extensions after."""
    name = path.stem
    if name.startswith("fig"):
        digits = "".join(ch for ch in name if ch.isdigit())
        return (0, int(digits or 0), name)
    return (1, 0, name)


def generate_report(
    results_dir: Path, title: str = "FastPR reproduction results"
) -> str:
    """Build the markdown report from every ``*.json`` in a directory."""
    results_dir = Path(results_dir)
    files = sorted(results_dir.glob("*.json"), key=_order)
    if not files:
        raise FileNotFoundError(
            f"no result JSON files in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    parts: List[str] = [f"# {title}", ""]
    for path in files:
        experiment = Experiment.from_dict(json.loads(path.read_text()))
        parts.extend(experiment_to_markdown(experiment))
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fold benchmarks/results/*.json into a markdown report."
    )
    parser.add_argument("results_dir")
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)
    try:
        report = generate_report(Path(args.results_dir))
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
