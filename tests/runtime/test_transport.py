"""Tests for the in-process network transport."""

import time

import pytest

from repro.runtime.messages import DataPacket, RepairAck
from repro.runtime.transport import Network


class TestNetwork:
    def test_attach_and_lookup(self):
        net = Network()
        endpoint = net.attach(0, 1000.0)
        assert net.endpoint(0) is endpoint

    def test_duplicate_attach(self):
        net = Network()
        net.attach(0, None)
        with pytest.raises(ValueError):
            net.attach(0, None)

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            Network().endpoint(5)

    def test_control_message_unthrottled(self):
        net = Network()
        net.attach(0, 10.0)
        net.attach(1, 10.0)
        start = time.monotonic()
        net.send(0, 1, RepairAck(0, 0, 0))
        assert time.monotonic() - start < 0.05
        assert net.endpoint(1).inbox.get_nowait() == RepairAck(0, 0, 0)
        assert net.bytes_transferred == 0

    def test_data_packet_throttled(self):
        net = Network()
        net.attach(0, 10_000.0)
        net.attach(1, 10_000.0)
        packet = DataPacket(0, 0, 0, 0, b"x" * 1000)  # 0.1 s
        start = time.monotonic()
        net.send(0, 1, packet)
        assert time.monotonic() - start >= 0.09
        assert net.bytes_transferred == 1000
        assert net.endpoint(1).inbox.get_nowait() is packet

    def test_loopback_data_rejected(self):
        net = Network()
        net.attach(0, None)
        with pytest.raises(ValueError):
            net.send(0, 0, DataPacket(0, 0, 0, 0, b"x"))

    def test_receiver_rate_governs(self):
        net = Network()
        net.attach(0, 1_000_000.0)
        net.attach(1, 10_000.0)
        start = time.monotonic()
        net.send(0, 1, DataPacket(0, 0, 0, 0, b"x" * 1000))
        assert time.monotonic() - start >= 0.09
