"""The gateway acceptance bar: degraded reads across real processes.

The ISSUE's CI scenario — a live agent cluster (one OS process per
datanode, shared-memory transport), the object gateway as another
process, and one-shot CLI clients: PUT an object, kill a datanode
that holds some of its *data* chunks, GET it back.  The bytes must be
identical and the gateway must report the read as degraded.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.net import shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="needs POSIX shm + flock"
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

NODES = 12
SEED = 7
CHUNK = 4096
K = 6  # rs(9,6)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args):
    return [sys.executable, "-m", "repro.cli", *args]


def _put_with_retry(args, attempts=20, delay=0.5):
    """PUT until the gateway and agents are all up (or give up)."""
    for attempt in range(attempts):
        result = subprocess.run(
            args, env=_env(), capture_output=True, text=True, timeout=120
        )
        if result.returncode == 0:
            return result
        time.sleep(delay)
    raise AssertionError(
        f"gateway put never succeeded: {result.stdout}\n{result.stderr}"
    )


def test_degraded_get_survives_datanode_kill(tmp_path):
    snap = tmp_path / "cluster.json"
    work = tmp_path / "work"
    work.mkdir()
    subprocess.run(
        _cli(
            "snapshot", "--nodes", str(NODES), "--stripes", "4",
            "--code", "rs(9,6)", "--hot-standby", "0",
            "--chunk-size", str(1 << 16), "--seed", str(SEED),
            "-o", str(snap),
        ),
        env=_env(), check=True, capture_output=True, timeout=60,
    )
    payload = bytes((i * 131) % 256 for i in range(10 * K * CHUNK + 77))
    source = tmp_path / "object.bin"
    source.write_bytes(payload)

    agents = {
        node_id: subprocess.Popen(
            _cli(
                "agent", "--snapshot", str(snap), "--node", str(node_id),
                "--transport", "shm", "--workdir", str(work),
                "--seed", str(SEED), "--no-load",
            ),
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        for node_id in range(NODES)
    }
    gateway = subprocess.Popen(
        _cli(
            "gateway", "serve", "--snapshot", str(snap),
            "--workdir", str(work), "--chunk-size", str(CHUNK),
            "--max-seconds", "180",
        ),
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    try:
        _put_with_retry(_cli(
            "gateway", "put", "ci/object", str(source),
            "--workdir", str(work),
        ))

        # The durable manifest names every chunk's node; pick a victim
        # holding data chunks (index < k) so the GET must decode.
        manifests = list((work / "manifests").glob("*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["key"] == "ci/object"
        data_nodes = {
            node
            for stripe in manifest["stripes"]
            for node in stripe["placement"][:K]
        }
        victim = sorted(data_nodes)[0]
        agents[victim].send_signal(signal.SIGKILL)
        agents[victim].wait(timeout=30)

        fetched = tmp_path / "fetched.bin"
        get = subprocess.run(
            _cli(
                "gateway", "get", "ci/object", str(fetched),
                "--workdir", str(work), "--timeout", "120",
            ),
            env=_env(), capture_output=True, text=True, timeout=180,
        )
        assert get.returncode == 0, f"{get.stdout}\n{get.stderr}"
        assert fetched.read_bytes() == payload  # byte-identical
        assert "degraded" in get.stderr
    finally:
        gateway.terminate()
        for proc in agents.values():
            proc.terminate()
        gateway.wait(timeout=30)
        for proc in agents.values():
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
