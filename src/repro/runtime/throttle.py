"""Bandwidth emulation via reservation-based rate limiters.

The testbed-substitute runtime moves real bytes between threads, but
emulates the paper's disk/network bandwidths (``b_d``, ``b_n``) with
rate limiters.  Each limiter models one serial device: a request for
``n`` bytes reserves the device for ``n / rate`` seconds starting when
the device next frees up, then sleeps until that reservation completes.
This matches the serial-resource semantics of the discrete-event
simulator, but in wall-clock time.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class RateLimiter:
    """A serial device with a fixed byte rate.

    Args:
        rate: bytes per second; ``None`` or ``float('inf')`` disables
            throttling (used when loading fixtures).
        name: label for diagnostics.
        stop: optional shutdown event; a set event interrupts any
            throttled sleep immediately, so a testbed teardown never
            waits out emulated transfer time.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; when
            set, every :meth:`throttle` observes its wait into the
            ``ratelimiter_wait_seconds`` histogram and counts bytes
            into ``ratelimiter_bytes_total``, labeled by ``labels``.
        labels: metric labels identifying this device (e.g.
            ``{"device": "disk", "node": 3}``).
    """

    def __init__(
        self,
        rate: Optional[float],
        name: str = "",
        stop: Optional[threading.Event] = None,
        metrics=None,
        labels: Optional[dict] = None,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.name = name
        self.stop = stop
        self._lock = threading.Lock()
        self._next_free = 0.0  # monotonic timestamp
        #: cumulative bytes passed through (for throughput assertions)
        self.bytes_total = 0
        self.labels = dict(labels or {})
        self._wait_hist = None
        self._bytes_counter = None
        if metrics is not None:
            self._wait_hist = metrics.histogram(
                "ratelimiter_wait_seconds",
                "emulated-device reservation wait per throttled request",
            )
            self._bytes_counter = metrics.counter(
                "ratelimiter_bytes_total",
                "bytes passed through each emulated serial device",
            )

    @property
    def unlimited(self) -> bool:
        return self.rate is None or self.rate == float("inf")

    def reserve(self, nbytes: int) -> float:
        """Reserve the device for ``nbytes``; returns the wake deadline.

        Does not sleep; callers combine reservations (e.g. sender +
        receiver NIC) before sleeping via :func:`sleep_until`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        now = time.monotonic()
        if self.unlimited:
            return now
        with self._lock:
            start = max(now, self._next_free)
            deadline = start + nbytes / self.rate
            self._next_free = deadline
            self.bytes_total += nbytes
            return deadline

    def throttle(self, nbytes: int) -> None:
        """Reserve and sleep until the reservation completes.

        The sleep is interruptible via the limiter's ``stop`` event.
        """
        deadline = self.reserve(nbytes)
        if self._wait_hist is not None:
            self._wait_hist.observe(
                max(deadline - time.monotonic(), 0.0), **self.labels
            )
            self._bytes_counter.inc(nbytes, **self.labels)
        sleep_until(deadline, stop=self.stop)


def sleep_until(
    deadline: float, stop: Optional[threading.Event] = None
) -> None:
    """Sleep until a ``time.monotonic`` deadline (no-op if past).

    With ``stop`` set, the wait aborts as soon as the event fires —
    shutdown must not block on emulated bandwidth reservations.
    """
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return
    if stop is not None:
        stop.wait(timeout=remaining)
    else:
        time.sleep(remaining)


def reserve_transfer(
    sender: RateLimiter, receiver: RateLimiter, nbytes: int
) -> float:
    """Reserve a transfer occupying both NICs; returns the deadline.

    Both devices are held for the same window, whose length is set by
    the slower of the two rates — the semantics the analysis assumes
    for its single ``c/b_n`` terms.
    """
    if sender.unlimited and receiver.unlimited:
        return time.monotonic()
    rates = [lim.rate for lim in (sender, receiver) if not lim.unlimited]
    duration = nbytes / min(rates)
    # Lock in a fixed global order to avoid deadlock.
    first, second = sorted((sender, receiver), key=id)
    with first._lock:
        with second._lock:
            now = time.monotonic()
            start = now
            for lim in (sender, receiver):
                if not lim.unlimited:
                    start = max(start, lim._next_free)
            deadline = start + duration
            for lim in (sender, receiver):
                if not lim.unlimited:
                    lim._next_free = deadline
                    lim.bytes_total += nbytes
            return deadline
