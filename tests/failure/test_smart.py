"""Tests for synthetic SMART trace generation."""

import pytest

from repro.failure.smart import (
    DEGRADATION_ATTRIBUTES,
    SMART_ATTRIBUTES,
    DiskTrace,
    SmartSample,
    SmartTraceGenerator,
    daily_samples,
)


class TestGenerator:
    def test_fleet_size(self):
        traces = SmartTraceGenerator(50, seed=1).generate()
        assert len(traces) == 50
        assert [t.disk_id for t in traces] == list(range(50))

    def test_deterministic_with_seed(self):
        a = SmartTraceGenerator(20, seed=9).generate()
        b = SmartTraceGenerator(20, seed=9).generate()
        for ta, tb in zip(a, b):
            assert ta.failure_day == tb.failure_day
            assert ta.samples[0].values == tb.samples[0].values

    def test_validation(self):
        with pytest.raises(ValueError):
            SmartTraceGenerator(0)
        with pytest.raises(ValueError):
            SmartTraceGenerator(5, annual_failure_rate=1.5)

    def test_failure_rate_scales(self):
        low = SmartTraceGenerator(
            300, annual_failure_rate=0.01, seed=3
        ).generate()
        high = SmartTraceGenerator(
            300, annual_failure_rate=0.5, seed=3
        ).generate()
        assert sum(t.will_fail for t in high) > sum(t.will_fail for t in low)

    def test_samples_stop_at_failure(self):
        traces = SmartTraceGenerator(
            200, annual_failure_rate=0.5, seed=4
        ).generate()
        failing = [t for t in traces if t.will_fail]
        assert failing, "seed should produce failures"
        for trace in failing:
            assert trace.samples[-1].day <= trace.failure_day

    def test_all_attributes_present(self):
        trace = SmartTraceGenerator(1, seed=5).generate()[0]
        for sample in trace.samples:
            assert set(sample.values) == set(SMART_ATTRIBUTES)

    def test_failing_disk_counters_ramp(self):
        traces = SmartTraceGenerator(
            300, annual_failure_rate=0.5, seed=6
        ).generate()
        failing = next(t for t in traces if t.will_fail and len(t.samples) > 30)
        early = failing.samples[0]
        late = failing.samples[-1]
        early_total = sum(early.values[a] for a in DEGRADATION_ATTRIBUTES)
        late_total = sum(late.values[a] for a in DEGRADATION_ATTRIBUTES)
        assert late_total > early_total + 50

    def test_power_on_hours_monotone(self):
        trace = SmartTraceGenerator(1, seed=7).generate()[0]
        hours = [s.values["smart_9_power_on_hours"] for s in trace.samples]
        assert hours == sorted(hours)


class TestTraceApi:
    def test_window(self):
        trace = SmartTraceGenerator(1, horizon_days=30, seed=8).generate()[0]
        window = trace.window(end_day=9, length=5)
        assert [s.day for s in window] == [5, 6, 7, 8, 9]

    def test_vector(self):
        sample = SmartSample(0, 0, {a: float(i) for i, a in enumerate(SMART_ATTRIBUTES)})
        assert sample.vector() == [float(i) for i in range(len(SMART_ATTRIBUTES))]

    def test_daily_samples_iteration(self):
        traces = SmartTraceGenerator(5, horizon_days=10, seed=9).generate()
        days = list(daily_samples(traces))
        assert len(days) == 10
        assert all(len(day) <= 5 for day in days)
        assert all(s.day == 0 for s in days[0])
