"""Event-driven execution of repair plans.

This is the Python counterpart of the paper's single-machine simulator
(Section VI-A): "we remove all the actual operations of disk I/Os and
network transmission from the prototype, and simulate the operations by
computing their execution times based on the input network and disk
bandwidths.  Note that the main algorithms, including finding
reconstruction sets and repair scheduling, are still preserved."

Per repair round the simulator spawns:

* one sequential migration pipeline on the STF node — the STF agent
  reads, transmits and writes (at the destination) one chunk at a time,
  bottlenecked by the STF node exactly as in Eq. (4);
* one reconstruction pipeline per repaired chunk — the ``k`` helpers
  read in parallel, their transfers serialize on the destination's NIC
  ingress, and the destination writes the decoded chunk.

Rounds are barriers (the coordinator waits for all agent ACKs before
issuing the next round's commands, Section V).  Resource contention the
closed-form analysis ignores — a node serving as helper for one stripe
and destination for another, or standby nodes ingesting migration and
reconstruction traffic at once — emerges naturally, which is why
simulated FastPR lands slightly above the optimum (Experiment A.1
reports +11.4% on average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..cluster.topology import RackTopology
from ..core.plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    ShardMap,
    split_plan,
)
from ..core.planner import heal_action
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SimClock, Tracer
from ..runtime.faults import FaultPlan
from .events import Delay, Process, Simulation
from .resources import DeviceMap


@dataclass
class DeviceUtilization:
    """Busy-time fractions of one node's devices over a repair."""

    disk: float
    nic_in: float
    nic_out: float


@dataclass
class RepairResult:
    """Outcome of simulating one repair plan."""

    total_time: float
    round_times: List[float] = field(default_factory=list)
    chunks_repaired: int = 0
    bytes_read: int = 0
    bytes_transferred: int = 0
    bytes_written: int = 0
    #: node id -> device busy fractions (event-driven simulator only)
    utilization: Dict[NodeId, DeviceUtilization] = field(default_factory=dict)
    #: healing waves applied after simulated node deaths
    replans: int = 0
    #: migrations converted to reconstructions (STF died mid-repair)
    converted_migrations: int = 0
    #: nodes that died during the simulated repair
    dead_nodes: List[NodeId] = field(default_factory=list)
    #: coordinator crash/recover cycles (journal-backed, round granularity)
    coordinator_restarts: int = 0

    @property
    def time_per_chunk(self) -> float:
        """The metric every figure of the paper plots."""
        if self.chunks_repaired == 0:
            return 0.0
        return self.total_time / self.chunks_repaired

    @property
    def traffic_amplification(self) -> float:
        """Repair traffic relative to the amount of repaired data.

        1.0 for pure migration; ``k`` for pure RS reconstruction — the
        amplification FastPR trades against parallelism.
        """
        if self.bytes_written == 0:
            return 0.0
        return self.bytes_transferred / self.bytes_written


@dataclass
class ShardedRepairResult(RepairResult):
    """Outcome of simulating a sharded (multi-coordinator) repair.

    ``round_times`` concatenates every shard's rounds (sorted by
    shard); ``per_shard_rounds`` keeps them separated.  A takeover
    counts as one ``coordinator_restarts`` too, so single- and
    multi-coordinator results read alike.
    """

    takeovers: int = 0
    per_shard_rounds: Dict[int, List[float]] = field(default_factory=dict)


class RepairSimulator:
    """Executes :class:`RepairPlan` objects against a cluster's resources.

    Args:
        cluster: supplies per-node bandwidths and the chunk size.
        chunk_size: override the cluster's chunk size (bytes).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; the
            simulator mirrors the runtime's metric names
            (``repair_round_seconds``, ``repair_actions_total``, ...)
            with *simulated* seconds, so the same dashboards read both.
        tracer: optional :class:`~repro.obs.Tracer` backed by a
            :class:`~repro.obs.SimClock`; the simulator emits the same
            repair/round/action span tree as the emulated testbed,
            timestamped in simulated seconds.  A wall-clock tracer is
            rejected — mixing clock domains would corrupt the trace.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        chunk_size: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.cluster = cluster
        self.chunk_size = chunk_size or cluster.chunk_size
        if tracer is not None and not isinstance(tracer.clock, SimClock):
            raise ValueError(
                "RepairSimulator tracing needs a SimClock-backed Tracer "
                "(got a {} clock)".format(type(tracer.clock).__name__)
            )
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(clock=SimClock(), enabled=False)
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._actions_counter = m.counter(
            "repair_actions_total",
            "chunk repair actions completed, by executed method",
        )
        self._round_hist = m.histogram(
            "repair_round_seconds",
            "simulated duration of each repair round",
        )
        self._action_hist = m.histogram(
            "repair_action_seconds",
            "simulated start-to-completion latency of each action, by method",
        )
        self._replans_counter = m.counter(
            "repair_replans_total", "healing waves after a node died"
        )
        self._converted_counter = m.counter(
            "repair_converted_migrations_total",
            "migrations converted to reconstructions (STF died mid-repair)",
        )

    @property
    def _clock(self) -> SimClock:
        return self.tracer.clock

    def run(
        self,
        plan: RepairPlan,
        faults: Optional[FaultPlan] = None,
        detection_delay: float = 0.0,
        recovery_delay: float = 0.0,
    ) -> RepairResult:
        """Simulate the plan; returns timing and traffic statistics.

        Args:
            plan: the repair plan to execute.
            faults: optional fault plan whose *time-triggered* crashes
                are mirrored at round granularity — a node whose
                ``at_time`` has passed when a round starts is dead for
                that round, and the round's actions are healed exactly
                like the live coordinator heals them (migration ->
                reconstruction fallback, helper/destination
                substitution via :func:`repro.core.planner.heal_action`).
                Byte-triggered crashes have no simulator counterpart
                (the simulator moves no bytes mid-round).  Coordinator
                crashes are mirrored at round granularity too: an
                ``after_round`` trigger costs one recovery pause after
                that round, and the successor re-executes nothing —
                exactly the journal-backed runtime behavior, whose
                completed rounds survive the crash.  ``after_records``
                triggers have no simulator counterpart (the simulator
                writes no journal records).
            detection_delay: simulated seconds charged once per wave of
                newly detected deaths, modeling the live coordinator's
                deadline-plus-probe discovery latency.
            recovery_delay: simulated seconds charged per coordinator
                crash/recover cycle, modeling journal replay plus the
                inventory reconciliation round trip.
        """
        devices = DeviceMap(self.cluster)
        sim = Simulation()
        round_times: List[float] = []
        start = 0.0
        crashes = faults.crash_times() if faults is not None else []
        coordinator_crashes = sorted(
            (
                c
                for c in (faults.coordinator_crashes if faults else [])
                if c.after_round is not None
            ),
            key=lambda c: c.after_round,
        )
        restarts = 0
        dead: Set[NodeId] = set()
        replans = 0
        converted = 0
        clock = self._clock
        clock.advance_to(sim.now)
        repair_span = self.tracer.start_span(
            "repair",
            stf=plan.stf_node,
            scenario=plan.scenario.value,
            rounds=plan.num_rounds,
            chunks=plan.total_chunks,
            epoch=0,
            resumed=False,
        )
        for round_ in plan.rounds:
            newly_dead = {
                crash.node
                for crash in crashes
                if crash.at_time <= sim.now and crash.node not in dead
            }
            if newly_dead:
                dead |= newly_dead
                replans += 1
                self._replans_counter.inc()
                if detection_delay > 0:
                    sim.spawn(_pause(detection_delay))
                    sim.run()
            actions = list(round_.actions())
            if dead:
                healed_actions = []
                for action in actions:
                    healed = heal_action(
                        self.cluster, plan.stf_node, action, dead, plan.scenario
                    )
                    if (
                        healed.method is RepairMethod.RECONSTRUCTION
                        and action.method is RepairMethod.MIGRATION
                    ):
                        converted += 1
                        self._converted_counter.inc()
                    healed_actions.append(healed)
                actions = healed_actions
            clock.advance_to(sim.now)
            round_span = self.tracer.start_span(
                "round", parent=repair_span, round=round_.index
            )
            self._spawn_actions(
                sim, devices, plan.stf_node, actions, round_span=round_span
            )
            end = sim.run()
            clock.advance_to(end)
            round_span.finish(actions=len(actions))
            self._round_hist.observe(end - start)
            round_times.append(end - start)
            start = end
            # Coordinator crash after this round: the journal already
            # holds every completed round, so the successor only pays
            # the recovery pause before the next round starts.
            while (
                coordinator_crashes
                and coordinator_crashes[0].after_round <= round_.index
            ):
                coordinator_crashes.pop(0)
                restarts += 1
                if recovery_delay > 0:
                    sim.spawn(_pause(recovery_delay))
                    start = sim.run()
        clock.advance_to(sim.now)
        repair_span.finish(restarts=restarts)
        result = RepairResult(
            total_time=sim.now,
            round_times=round_times,
            chunks_repaired=plan.total_chunks,
            bytes_read=devices.bytes_read,
            bytes_transferred=devices.bytes_transferred,
            bytes_written=devices.bytes_written,
            utilization=self._utilization(devices, sim.now),
            replans=replans,
            converted_migrations=converted,
            dead_nodes=sorted(dead),
            coordinator_restarts=restarts,
        )
        return result

    def run_sharded(
        self,
        plan: RepairPlan,
        num_shards: int = 2,
        faults: Optional[FaultPlan] = None,
        topology: Optional[RackTopology] = None,
        detection_delay: float = 0.0,
        recovery_delay: float = 0.0,
    ) -> ShardedRepairResult:
        """Mirror a multi-coordinator repair at round granularity.

        The stripe space splits exactly like the runtime's
        (:func:`~repro.core.plan.split_plan` over the same consistent
        hash), and every shard advances through its own round sequence
        *concurrently*, contending for the same per-node disks and
        NICs — the contention the live runtime's shared
        :class:`~repro.core.scheduling.HelperBudget` arbitrates emerges
        here from the device queues.

        Faults mirror at round granularity, as in :meth:`run`: node
        crashes whose ``at_time`` has passed heal at each shard's next
        round start.  A :class:`~repro.runtime.faults.DomainCrashFault`
        naming coordinators additionally kills those shards — the shard
        pays one ``recovery_delay`` pause before its next round
        (journal replay plus inventory reconciliation; completed rounds
        survive, exactly the runtime takeover) and the run counts one
        takeover.  Pass ``topology`` to resolve domain crashes here, or
        pre-resolve with ``faults.resolve_domains(topology)``.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if faults is not None and faults.domain_crashes and topology is not None:
            faults = faults.resolve_domains(topology)
        sub_plans = split_plan(plan, ShardMap(num_shards))
        devices = DeviceMap(self.cluster)
        sim = Simulation()
        clock = self._clock
        clock.advance_to(sim.now)
        crashes = faults.crash_times() if faults is not None else []
        kill_times: Dict[int, float] = {}
        for dc in faults.domain_crashes if faults is not None else []:
            for shard in dc.coordinators:
                if shard < num_shards:
                    kill_times[shard] = min(
                        dc.at_time, kill_times.get(shard, dc.at_time)
                    )
        state = {"replans": 0, "converted": 0, "takeovers": 0}
        dead: Set[NodeId] = set()
        per_shard_rounds: Dict[int, List[float]] = {
            shard: [] for shard in range(num_shards)
        }
        repair_span = self.tracer.start_span(
            "repair",
            stf=plan.stf_node,
            scenario=plan.scenario.value,
            rounds=plan.num_rounds,
            chunks=plan.total_chunks,
            epoch=0,
            resumed=False,
            shards=num_shards,
        )

        def drive(shard: int, rounds: List, index: int) -> None:
            """Advance one shard to its next round (or finish it)."""
            if index >= len(rounds):
                return
            if shard in kill_times and kill_times[shard] <= sim.now:
                # The shard's coordinator died: a survivor replays its
                # journal and resumes.  Completed rounds survive, so the
                # cost is one recovery pause before the next round.
                del kill_times[shard]
                state["takeovers"] += 1
                if recovery_delay > 0:
                    sim.spawn(
                        _pause(recovery_delay),
                        on_done=lambda _now: start_round(shard, rounds, index),
                    )
                    return
            start_round(shard, rounds, index)

        def start_round(shard: int, rounds: List, index: int) -> None:
            newly_dead = {
                crash.node
                for crash in crashes
                if crash.at_time <= sim.now and crash.node not in dead
            }
            if newly_dead:
                dead.update(newly_dead)
                state["replans"] += 1
                self._replans_counter.inc()
                if detection_delay > 0:
                    sim.spawn(
                        _pause(detection_delay),
                        on_done=lambda _now: launch_round(shard, rounds, index),
                    )
                    return
            launch_round(shard, rounds, index)

        def launch_round(shard: int, rounds: List, index: int) -> None:
            round_ = rounds[index]
            actions = list(round_.actions())
            if dead:
                healed_actions = []
                for action in actions:
                    healed = heal_action(
                        self.cluster, plan.stf_node, action, dead, plan.scenario
                    )
                    if (
                        healed.method is RepairMethod.RECONSTRUCTION
                        and action.method is RepairMethod.MIGRATION
                    ):
                        state["converted"] += 1
                        self._converted_counter.inc()
                    healed_actions.append(healed)
                actions = healed_actions
            clock.advance_to(sim.now)
            round_span = self.tracer.start_span(
                "round", parent=repair_span, round=round_.index, shard=shard
            )
            begin = sim.now

            def round_done(now: float) -> None:
                clock.advance_to(now)
                round_span.finish(actions=len(actions))
                self._round_hist.observe(now - begin)
                per_shard_rounds[shard].append(now - begin)
                drive(shard, rounds, index + 1)

            self._spawn_actions_counted(
                sim, devices, plan.stf_node, actions, round_span, round_done
            )

        for shard, sub_plan in enumerate(sub_plans):
            sim.spawn(
                _pause(0.0),
                on_done=lambda _now, s=shard, r=list(sub_plan.rounds): drive(
                    s, r, 0
                ),
            )
        total = sim.run()
        clock.advance_to(total)
        repair_span.finish(takeovers=state["takeovers"])
        round_times: List[float] = []
        for shard in sorted(per_shard_rounds):
            round_times.extend(per_shard_rounds[shard])
        return ShardedRepairResult(
            total_time=total,
            round_times=round_times,
            chunks_repaired=plan.total_chunks,
            bytes_read=devices.bytes_read,
            bytes_transferred=devices.bytes_transferred,
            bytes_written=devices.bytes_written,
            utilization=self._utilization(devices, total),
            replans=state["replans"],
            converted_migrations=state["converted"],
            dead_nodes=sorted(dead),
            coordinator_restarts=state["takeovers"],
            takeovers=state["takeovers"],
            per_shard_rounds=per_shard_rounds,
        )

    @staticmethod
    def _utilization(devices: DeviceMap, total_time: float):
        if total_time <= 0:
            return {}
        report = {}
        for node_id, node_devices in devices._devices.items():
            report[node_id] = DeviceUtilization(
                disk=node_devices.disk.busy_time / total_time,
                nic_in=node_devices.nic_in.busy_time / total_time,
                nic_out=node_devices.nic_out.busy_time / total_time,
            )
        return report

    # ------------------------------------------------------------------

    def _spawn_actions(
        self,
        sim: Simulation,
        devices: DeviceMap,
        stf_node: NodeId,
        actions: List[ChunkRepairAction],
        round_span=None,
    ) -> None:
        # The STF agent migrates its chunks one at a time.
        migrations = [a for a in actions if a.method is RepairMethod.MIGRATION]
        if migrations:
            spans = [self._action_span(a, round_span) for a in migrations]
            sim.spawn(
                self._migration_chain(devices, stf_node, migrations, sim, spans)
            )
        # Every reconstruction runs as its own parallel pipeline.
        for action in actions:
            if action.method is RepairMethod.RECONSTRUCTION:
                self._spawn_reconstruction(
                    sim, devices, action, self._action_span(action, round_span)
                )

    def _spawn_actions_counted(
        self,
        sim: Simulation,
        devices: DeviceMap,
        stf_node: NodeId,
        actions: List[ChunkRepairAction],
        round_span,
        on_round_done,
    ) -> None:
        """Like :meth:`_spawn_actions`, but reports round completion.

        The sharded mirror runs several shards in one simulation, so
        ``sim.run()`` can no longer serve as the per-round barrier; the
        round instead completes when its migration chain and every
        reconstruction write have finished.
        """
        migrations = [a for a in actions if a.method is RepairMethod.MIGRATION]
        reconstructions = [
            a for a in actions if a.method is RepairMethod.RECONSTRUCTION
        ]
        pending = {"count": (1 if migrations else 0) + len(reconstructions)}
        if pending["count"] == 0:
            sim.spawn(_pause(0.0), on_done=on_round_done)
            return

        def task_done(now: float) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                on_round_done(now)

        if migrations:
            spans = [self._action_span(a, round_span) for a in migrations]
            sim.spawn(
                self._migration_chain(devices, stf_node, migrations, sim, spans),
                on_done=task_done,
            )
        for action in reconstructions:
            self._spawn_reconstruction(
                sim,
                devices,
                action,
                self._action_span(action, round_span),
                on_complete=task_done,
            )

    def _action_span(self, action: ChunkRepairAction, round_span):
        return self.tracer.start_span(
            "action",
            parent=round_span,
            method=action.method.value,
            stripe=action.stripe_id,
            chunk=action.chunk_index,
            destination=action.destination,
        )

    def _finish_action(self, span, now: float, method: RepairMethod) -> None:
        self._clock.advance_to(now)
        span.finish()
        self._actions_counter.inc(method=method.value)
        self._action_hist.observe(span.duration, method=method.value)

    def _migration_chain(
        self,
        devices: DeviceMap,
        stf_node: NodeId,
        migrations: List[ChunkRepairAction],
        sim: Simulation,
        spans: List,
    ) -> Process:
        size = self.chunk_size
        for action, span in zip(migrations, spans):
            yield from devices.read_chunk(stf_node, size)
            yield from devices.transfer_chunk(stf_node, action.destination, size)
            yield from devices.write_chunk(action.destination, size)
            self._finish_action(span, sim.now, RepairMethod.MIGRATION)

    def _spawn_reconstruction(
        self,
        sim: Simulation,
        devices: DeviceMap,
        action: ChunkRepairAction,
        span=None,
        on_complete=None,
    ) -> None:
        """Helpers read+send in parallel; the destination gathers and writes."""
        size = self.chunk_size
        pending = {"count": len(action.sources)}

        def write_done(now: float) -> None:
            if span is not None:
                self._finish_action(span, now, RepairMethod.RECONSTRUCTION)
            if on_complete is not None:
                on_complete(now)

        def helper_done(_now: float) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                sim.spawn(
                    devices.write_chunk(action.destination, size),
                    on_done=write_done,
                )

        for helper in action.sources:
            sim.spawn(
                self._helper_pipeline(devices, helper, action.destination, size),
                on_done=helper_done,
            )

    def _helper_pipeline(
        self, devices: DeviceMap, helper: NodeId, destination: NodeId, size: int
    ) -> Process:
        yield from devices.read_chunk(helper, size)
        yield from devices.transfer_chunk(helper, destination, size)


def _pause(duration: float) -> Process:
    yield Delay(duration)


@dataclass(frozen=True)
class RepairRateCalibration:
    """Simulated whole-node repair times, predictive vs reactive.

    Produced by :func:`calibrate_repair_rates` and consumed by the
    lifetime Monte-Carlo engine (:mod:`repro.sim.lifetime`), which
    needs per-disk repair *durations* rather than per-round traces:
    ``predictive_seconds`` is FastPR draining a still-readable STF node
    (migration + reconstruction mix), ``reactive_seconds`` is pure
    reconstruction around an already-dead node.
    """

    predictive_seconds: float
    reactive_seconds: float
    chunks: int

    @property
    def predictive_days(self) -> float:
        return self.predictive_seconds / 86_400.0

    @property
    def reactive_days(self) -> float:
        return self.reactive_seconds / 86_400.0


def calibrate_repair_rates(
    cluster: StorageCluster,
    stf_node: Optional[NodeId] = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
) -> RepairRateCalibration:
    """Simulate one representative node repair both ways.

    Plans a FastPR (predictive) and a reconstruction-only (reactive)
    repair of ``stf_node`` (default: the busiest storage node, the
    conservative choice) and runs each through the event-driven
    simulator, returning the two total times.  The node's health flag
    is restored afterwards, so the cluster can be reused.
    """
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner, ReconstructionOnlyPlanner

    if stf_node is None:
        stf_node = max(
            cluster.storage_node_ids(), key=lambda n: cluster.load_of(n)
        )
    node = cluster.node(stf_node)
    was_healthy = node.is_healthy
    node.mark_soon_to_fail()
    try:
        simulator = RepairSimulator(cluster, chunk_size=chunk_size)
        chunks = cluster.load_of(stf_node)
        times = {}
        for label, planner in (
            ("predictive", FastPRPlanner(scenario=RepairScenario.SCATTERED, seed=seed)),
            ("reactive", ReconstructionOnlyPlanner(scenario=RepairScenario.SCATTERED, seed=seed)),
        ):
            plan = planner.plan(cluster, stf_node)
            times[label] = simulator.run(plan).total_time
    finally:
        if was_healthy:
            node.mark_healthy()
    return RepairRateCalibration(
        predictive_seconds=times["predictive"],
        reactive_seconds=times["reactive"],
        chunks=chunks,
    )


def simulate_sharded_repair(
    cluster: StorageCluster,
    plan: RepairPlan,
    num_shards: int = 2,
    chunk_size: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    topology: Optional[RackTopology] = None,
    detection_delay: float = 0.0,
    recovery_delay: float = 0.0,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> ShardedRepairResult:
    """One-call convenience wrapper around :meth:`RepairSimulator.run_sharded`."""
    return RepairSimulator(
        cluster, chunk_size=chunk_size, metrics=metrics, tracer=tracer
    ).run_sharded(
        plan,
        num_shards=num_shards,
        faults=faults,
        topology=topology,
        detection_delay=detection_delay,
        recovery_delay=recovery_delay,
    )


def simulate_repair(
    cluster: StorageCluster,
    plan: RepairPlan,
    chunk_size: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    detection_delay: float = 0.0,
    recovery_delay: float = 0.0,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> RepairResult:
    """One-call convenience wrapper around :class:`RepairSimulator`."""
    return RepairSimulator(
        cluster, chunk_size=chunk_size, metrics=metrics, tracer=tracer
    ).run(
        plan,
        faults=faults,
        detection_delay=detection_delay,
        recovery_delay=recovery_delay,
    )
