"""Folding traces into per-round breakdowns (the ``repro report`` core)."""

from __future__ import annotations

import pytest

from repro.obs import (
    REPORT_SCHEMA_VERSION,
    SimClock,
    TraceError,
    Tracer,
    breakdown_from_trace,
    metrics_summary,
    MetricsRegistry,
    render_breakdown,
)


def synthetic_trace() -> dict:
    """One repair, two rounds, deterministic simulated timings.

    Round 0 (t=0..10): a migration finishing at t=4 and two
    reconstructions finishing at t=6 and t=8.
    Round 1 (t=10..15): one reconstruction retried once, done at t=14.
    """
    clock = SimClock()
    tracer = Tracer(clock=clock)
    with tracer.span("repair", stf=2, scenario="scattered"):
        with tracer.span("round", round=0) as r0:
            m = tracer.start_span("action", parent=r0, method="migration")
            a1 = tracer.start_span("action", parent=r0, method="reconstruction")
            a2 = tracer.start_span("action", parent=r0, method="reconstruction")
            clock.advance_to(4.0)
            m.finish()
            clock.advance_to(6.0)
            a1.finish()
            clock.advance_to(8.0)
            a2.finish()
            clock.advance_to(10.0)
        with tracer.span("round", round=1) as r1:
            a3 = tracer.start_span(
                "action", parent=r1, method="reconstruction"
            )
            clock.advance_to(14.0)
            a3.finish(retries=1)
            clock.advance_to(15.0)
    return tracer.to_dict()


class TestBreakdown:
    def test_round_splits(self):
        breakdown = breakdown_from_trace(synthetic_trace())
        assert breakdown.attrs == {"stf": 2, "scenario": "scattered"}
        assert breakdown.total_seconds == 15.0
        assert len(breakdown.rounds) == 2
        r0, r1 = breakdown.rounds
        assert (r0.migrations, r0.reconstructions) == (1, 2)
        assert r0.duration == 10.0
        # migration split = last migration completion since round start;
        # reconstruction split likewise (the slower of the two, t=8).
        assert r0.migration_seconds == 4.0
        assert r0.reconstruction_seconds == 8.0
        assert (r1.actions, r1.retries) == (1, 1)
        assert r1.duration == 5.0
        assert r1.reconstruction_seconds == 4.0
        assert breakdown.total_actions == 4

    def test_crash_recover_repairs_fold_by_round_index(self):
        # Two repair spans (original run + post-crash resume) each
        # carrying a round 0: the report folds them into ONE round
        # entry keyed by index, summing durations.
        clock = SimClock()
        tracer = Tracer(clock=clock)
        for start in (0.0, 10.0):
            clock.advance_to(start)
            with tracer.span("repair", stf=1):
                with tracer.span("round", round=0) as r:
                    a = tracer.start_span(
                        "action", parent=r, method="migration"
                    )
                    clock.advance_to(start + 2.0)
                    a.finish()
        breakdown = breakdown_from_trace(tracer.to_dict())
        assert len(breakdown.rounds) == 1
        assert breakdown.rounds[0].duration == 4.0
        assert breakdown.rounds[0].migrations == 2

    def test_trace_without_repair_span_rejected(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("round", round=0):
            pass
        with pytest.raises(TraceError, match="repair"):
            breakdown_from_trace(tracer.to_dict())

    def test_to_dict_schema(self):
        doc = breakdown_from_trace(synthetic_trace()).to_dict()
        assert doc["version"] == REPORT_SCHEMA_VERSION
        assert doc["total_s"] == 15.0
        assert [r["round"] for r in doc["rounds"]] == [0, 1]
        assert set(doc["rounds"][0]) == {
            "round", "duration_s", "actions", "migrations",
            "reconstructions", "migration_s", "reconstruction_s", "retries",
        }


class TestRendering:
    def test_table_has_one_row_per_round(self):
        text = render_breakdown(breakdown_from_trace(synthetic_trace()))
        lines = text.splitlines()
        assert lines[0].startswith("repair: scenario=scattered, stf=2")
        assert "migration(s)" in lines[1]
        assert len([l for l in lines if l.lstrip().startswith(("0 ", "1 "))]) == 2
        assert lines[-1].startswith("total: 15.000s over 2 rounds")

    def test_metrics_summary_lists_every_family(self):
        registry = MetricsRegistry()
        registry.counter("repair_actions_total").inc(4)
        registry.histogram("repair_round_seconds", buckets=[1.0]).observe(0.5)
        summary = metrics_summary(registry.to_dict())
        assert "repair_actions_total" in summary
        assert "count=1 mean=0.5s" in summary
