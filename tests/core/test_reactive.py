"""Tests for reactive (failed-node and multi-failure) repair."""

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import RepairMethod, RepairScenario
from repro.core.reactive import (
    MultiFailureRepairPlanner,
    UnrecoverableStripeError,
    plan_failed_node_repair,
    repair_after_failures,
)
from repro.core.planner import apply_plan
from repro.sim.cost_model import evaluate_plan


def make_cluster(seed=1, num_nodes=16, stripes=50):
    return StorageCluster.random(
        num_nodes, stripes, 5, 3, num_hot_standby=2, seed=seed
    )


class TestSingleFailedNode:
    def test_requires_failed_state(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="not failed"):
            plan_failed_node_repair(cluster, 0)

    def test_plan_is_pure_reconstruction(self):
        cluster = make_cluster()
        cluster.node(0).mark_failed()
        plan = plan_failed_node_repair(cluster, 0, seed=0)
        plan.validate(cluster)
        assert plan.migrated_chunks == 0
        assert plan.reconstructed_chunks == cluster.load_of(0)
        for action in plan.actions():
            assert 0 not in action.sources

    def test_simulatable_and_applicable(self):
        cluster = make_cluster(seed=2)
        cluster.node(3).mark_failed()
        plan = plan_failed_node_repair(cluster, 3, seed=0)
        result = evaluate_plan(cluster, plan)
        assert result.total_time > 0
        apply_plan(cluster, plan)
        assert cluster.load_of(3) == 0


class TestMultiFailure:
    def fail(self, cluster, nodes):
        for node in nodes:
            cluster.node(node).mark_failed()

    def test_plans_cover_all_lost_chunks(self):
        cluster = make_cluster(seed=3)
        failed = [0, 1]
        lost = {n: cluster.load_of(n) for n in failed}
        self.fail(cluster, failed)
        plans = MultiFailureRepairPlanner(seed=0).plan(cluster, failed)
        assert len(plans) == 2
        for plan in plans:
            plan.validate(cluster)
            assert plan.total_chunks == lost[plan.stf_node]
            for action in plan.actions():
                assert action.method is RepairMethod.RECONSTRUCTION
                assert not set(action.sources) & set(failed)

    def test_shared_stripe_destinations_disjoint(self):
        # Stripes that lost chunks on both failed nodes must get their
        # two repaired chunks on different nodes.
        cluster = StorageCluster(12)
        for _ in range(6):
            cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])
        self.fail(cluster, [0, 1])
        plans = MultiFailureRepairPlanner(seed=0).plan(cluster, [0, 1])
        per_stripe = {}
        for plan in plans:
            for action in plan.actions():
                per_stripe.setdefault(action.stripe_id, []).append(
                    action.destination
                )
        for stripe_id, dests in per_stripe.items():
            assert len(dests) == 2
            assert len(set(dests)) == 2, f"stripe {stripe_id} collided"

    def test_apply_both_plans_keeps_fault_tolerance(self):
        cluster = make_cluster(seed=4)
        failed = [2, 5]
        self.fail(cluster, failed)
        for plan in MultiFailureRepairPlanner(seed=0).plan(cluster, failed):
            apply_plan(cluster, plan)
        cluster.verify_fault_tolerance()
        for node in failed:
            assert cluster.load_of(node) == 0

    def test_unrecoverable_stripe_detected(self):
        cluster = StorageCluster(8)
        cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])
        self.fail(cluster, [0, 1, 2])  # 3 losses > n - k = 2
        with pytest.raises(UnrecoverableStripeError):
            MultiFailureRepairPlanner().plan(cluster, [0, 1, 2])

    def test_hot_standby_scenario(self):
        cluster = make_cluster(seed=5)
        failed = [0, 1]
        self.fail(cluster, failed)
        plans = MultiFailureRepairPlanner(
            scenario=RepairScenario.HOT_STANDBY, seed=0
        ).plan(cluster, failed)
        standbys = set(cluster.hot_standby_ids())
        for plan in plans:
            plan.validate(cluster)
            assert {a.destination for a in plan.actions()} <= standbys

    def test_rounds_respect_helper_exclusivity(self):
        cluster = make_cluster(seed=6)
        failed = [0, 4]
        self.fail(cluster, failed)
        for plan in MultiFailureRepairPlanner(seed=0).plan(cluster, failed):
            for round_ in plan.rounds:
                helpers = [h for a in round_.actions() for h in a.sources]
                assert len(helpers) == len(set(helpers))

    def test_unmarked_node_rejected(self):
        cluster = make_cluster(seed=7)
        cluster.node(0).mark_failed()
        with pytest.raises(ValueError, match="not marked failed"):
            MultiFailureRepairPlanner().plan(cluster, [0, 1])


class TestMidRepairFailure:
    def setup_plan(self, seed=20):
        from repro.core.planner import FastPRPlanner

        cluster = make_cluster(seed=seed, num_nodes=20, stripes=80)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        return cluster, stf, plan

    def apply_rounds(self, cluster, plan, upto):
        for round_ in plan.rounds[:upto]:
            for action in round_.actions():
                cluster.relocate_chunk(
                    action.stripe_id, action.chunk_index, action.destination
                )

    def test_replan_covers_exactly_remaining(self):
        from repro.core.reactive import replan_after_midrepair_failure

        cluster, stf, plan = self.setup_plan()
        assert plan.num_rounds >= 2, "need a multi-round plan"
        done = 1
        self.apply_rounds(cluster, plan, done)
        cluster.node(stf).mark_failed()
        replan = replan_after_midrepair_failure(cluster, plan, done, seed=0)
        remaining = {
            (a.stripe_id, a.chunk_index)
            for r in plan.rounds[done:]
            for a in r.actions()
        }
        covered = {(a.stripe_id, a.chunk_index) for a in replan.actions()}
        assert covered == remaining
        assert replan.migrated_chunks == 0
        for action in replan.actions():
            assert stf not in action.sources

    def test_replan_validates_and_applies(self):
        from repro.core.reactive import replan_after_midrepair_failure

        cluster, stf, plan = self.setup_plan(seed=21)
        done = 1
        self.apply_rounds(cluster, plan, done)
        cluster.node(stf).mark_failed()
        replan = replan_after_midrepair_failure(cluster, plan, done, seed=0)
        chunks = [
            c
            for c in cluster.chunks_on_node(stf)
        ]
        replan.validate(cluster, stf_chunks=chunks)
        apply_plan(cluster, replan)
        assert cluster.load_of(stf) == 0
        cluster.verify_fault_tolerance()

    def test_requires_failed_node(self):
        from repro.core.reactive import replan_after_midrepair_failure

        cluster, stf, plan = self.setup_plan(seed=22)
        with pytest.raises(ValueError, match="not marked failed"):
            replan_after_midrepair_failure(cluster, plan, 0)

    def test_bad_round_count(self):
        from repro.core.reactive import replan_after_midrepair_failure

        cluster, stf, plan = self.setup_plan(seed=23)
        cluster.node(stf).mark_failed()
        with pytest.raises(ValueError, match="outside"):
            replan_after_midrepair_failure(cluster, plan, plan.num_rounds + 1)

    def test_failure_before_any_round(self):
        from repro.core.reactive import replan_after_midrepair_failure

        cluster, stf, plan = self.setup_plan(seed=24)
        cluster.node(stf).mark_failed()
        replan = replan_after_midrepair_failure(cluster, plan, 0, seed=0)
        assert replan.total_chunks == plan.total_chunks


class TestRepairAfterFailures:
    def test_single_failure_shortcut(self):
        cluster = make_cluster(seed=8)
        plans = repair_after_failures(cluster, [3])
        assert len(plans) == 1
        assert cluster.node(3).is_failed
        plans[0].validate(cluster)

    def test_multiple_failures(self):
        cluster = make_cluster(seed=9)
        plans = repair_after_failures(cluster, [0, 1])
        assert len(plans) == 2
        for plan in plans:
            plan.validate(cluster)

    def test_deduplicates_nodes(self):
        cluster = make_cluster(seed=10)
        plans = repair_after_failures(cluster, [2, 2])
        assert len(plans) == 1
