"""Tests for per-node device resources."""

import pytest

from repro.cluster import StorageCluster
from repro.sim.events import Simulation
from repro.sim.resources import DeviceMap, NodeDevices


@pytest.fixture
def cluster():
    return StorageCluster(
        4, disk_bandwidth=100.0, network_bandwidth=50.0, chunk_size=200
    )


class TestNodeDevices:
    def test_times(self):
        devices = NodeDevices(0, disk_bandwidth=100.0, network_bandwidth=50.0)
        assert devices.read_time(200) == pytest.approx(2.0)
        assert devices.write_time(100) == pytest.approx(1.0)
        assert devices.transfer_time(100) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeDevices(0, disk_bandwidth=0, network_bandwidth=1)


class TestDeviceMap:
    def test_lazy_construction_and_caching(self, cluster):
        devices = DeviceMap(cluster)
        first = devices[1]
        assert devices[1] is first
        assert first.disk_bandwidth == 100.0

    def test_per_node_override(self, cluster):
        cluster.node(2).disk_bandwidth = 400.0
        devices = DeviceMap(cluster)
        assert devices[2].disk_bandwidth == 400.0

    def test_read_chunk_duration(self, cluster):
        devices = DeviceMap(cluster)
        sim = Simulation()
        sim.spawn(devices.read_chunk(0, 200))
        assert sim.run() == pytest.approx(2.0)
        assert devices.bytes_read == 200

    def test_write_chunk_duration(self, cluster):
        devices = DeviceMap(cluster)
        sim = Simulation()
        sim.spawn(devices.write_chunk(0, 100))
        assert sim.run() == pytest.approx(1.0)
        assert devices.bytes_written == 100

    def test_transfer_duration_slower_nic_governs(self, cluster):
        cluster.node(1).network_bandwidth = 25.0
        devices = DeviceMap(cluster)
        sim = Simulation()
        sim.spawn(devices.transfer_chunk(0, 1, 100))
        # min(50, 25) = 25 B/s -> 4 s.
        assert sim.run() == pytest.approx(4.0)
        assert devices.bytes_transferred == 100

    def test_reads_on_same_disk_serialize(self, cluster):
        devices = DeviceMap(cluster)
        sim = Simulation()
        sim.spawn(devices.read_chunk(0, 200))
        sim.spawn(devices.read_chunk(0, 200))
        assert sim.run() == pytest.approx(4.0)

    def test_reads_on_distinct_disks_parallel(self, cluster):
        devices = DeviceMap(cluster)
        sim = Simulation()
        sim.spawn(devices.read_chunk(0, 200))
        sim.spawn(devices.read_chunk(1, 200))
        assert sim.run() == pytest.approx(2.0)

    def test_fanin_transfers_serialize_at_receiver(self, cluster):
        devices = DeviceMap(cluster)
        sim = Simulation()
        for src in (1, 2, 3):
            sim.spawn(devices.transfer_chunk(src, 0, 100))
        # Receiver ingress is the shared resource: 3 x 2 s.
        assert sim.run() == pytest.approx(6.0)

    def test_packetized_transfers_interleave_fairly(self, cluster):
        # Two flows into one receiver: with packetization, both finish
        # around the aggregate time rather than strictly one after the
        # other.
        devices = DeviceMap(cluster)
        sim = Simulation()
        finished = []
        sim.spawn(devices.transfer_chunk(1, 0, 100), on_done=finished.append)
        sim.spawn(devices.transfer_chunk(2, 0, 100), on_done=finished.append)
        sim.run()
        # Strict FCFS would finish at 2.0 and 4.0; interleaving pushes
        # the first completion toward the end.
        assert finished[0] > 2.5
        assert finished[1] == pytest.approx(4.0)
