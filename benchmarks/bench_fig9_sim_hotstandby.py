"""Figure 9 / Experiment A.2: simulated hot-standby repair.

Paper claims reproduced here:

* repair time varies little with M (the standbys are the bottleneck);
* with h=3, FastPR substantially cuts both baselines (paper: 57.7% vs
  migration-only, 41.0% vs reconstruction-only);
* FastPR stays close to the optimum (paper: +5.4% on average).
"""

from conftest import run_once

from repro.bench.experiments import fig9_sim_hotstandby
from repro.bench.harness import reduction

RUNS = 2


def test_fig9_sim_hotstandby(benchmark, save_result):
    exp = run_once(benchmark, fig9_sim_hotstandby, runs=RUNS)
    save_result(exp)

    panel_a = exp.panel("Fig 9(a) — varying M")
    fastpr = panel_a.values_of("fastpr")
    assert max(fastpr) / min(fastpr) < 1.6, "roughly flat in M"
    for i in range(len(fastpr)):
        assert fastpr[i] <= panel_a.values_of("reconstruction")[i] * 1.05
        assert fastpr[i] <= panel_a.values_of("migration")[i] * 1.05

    panel_b = exp.panel("Fig 9(b) — varying h")
    idx = panel_b.xticks.index("3")
    vs_migration = reduction(
        panel_b.values_of("migration")[idx], panel_b.values_of("fastpr")[idx]
    )
    vs_recon = reduction(
        panel_b.values_of("reconstruction")[idx],
        panel_b.values_of("fastpr")[idx],
    )
    assert vs_migration > 0.30, f"got {vs_migration:.2%} (paper: 57.7%)"
    assert vs_recon > 0.15, f"got {vs_recon:.2%} (paper: 41.0%)"
