"""The acceptance bar of DESIGN.md §10: real processes, real sockets.

A full RS(9,6) predictive repair with the coordinator and every agent
as separate OS processes talking the binary wire protocol over TCP —
repaired chunks byte-identical, journal written, metrics and trace
artifacts produced.  This is the same topology as the README's
multi-process walkthrough, driven through the actual CLI entry points
(``fastpr agent`` / ``fastpr repair --transport tcp``).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.net import allocate_ports, format_peer_spec, sharded_peer_spec
from repro.runtime import COORDINATOR_ID, FaultPlan, LinkFault, RuntimeConfig
from repro.runtime.faults import DomainCrashFault

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

NODES = 12
STRIPES = 4
SEED = 7
STF = 3


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _save_journal_artifact(tmp_path, name):
    """Preserve a failing run's journal(s) for CI upload (see ci.yml)."""
    import shutil

    artifact_dir = os.environ.get("FASTPR_JOURNAL_DIR")
    if not artifact_dir:
        return
    journal = tmp_path / "repair.journal"
    if journal.exists():
        os.makedirs(artifact_dir, exist_ok=True)
        shutil.copy(journal, os.path.join(artifact_dir, f"{name}.journal"))
    shards = tmp_path / "shards"
    if shards.is_dir():
        os.makedirs(artifact_dir, exist_ok=True)
        for shard_journal in sorted(shards.glob("shard-*.journal")):
            shutil.copy(
                shard_journal,
                os.path.join(
                    artifact_dir, f"{name}.{shard_journal.name}"
                ),
            )


def _cli(*args):
    return [sys.executable, "-m", "repro.cli", *args]


@pytest.fixture
def peer_map():
    ports = allocate_ports(NODES + 1)
    peers = {COORDINATOR_ID: ("127.0.0.1", ports[0])}
    for i in range(NODES):
        peers[i] = ("127.0.0.1", ports[i + 1])
    return peers


def _launch(tmp_path, peer_map, extra_agent_args=(), extra_repair_args=()):
    """Spawn every agent process and run the TCP repair against them."""
    snap = tmp_path / "cluster.json"
    work = tmp_path / "work"
    work.mkdir()
    subprocess.run(
        _cli(
            "snapshot", "--nodes", str(NODES), "--stripes", str(STRIPES),
            "--code", "rs(9,6)", "--hot-standby", "0",
            "--chunk-size", str(1 << 16), "--seed", str(SEED),
            "-o", str(snap),
        ),
        env=_env(), check=True, capture_output=True, timeout=60,
    )
    spec = format_peer_spec(peer_map)
    agents = [
        subprocess.Popen(
            _cli(
                "agent", "--snapshot", str(snap), "--node", str(node_id),
                "--listen", f"{host}:{port}", "--peers", spec,
                "--workdir", str(work), "--seed", str(SEED),
                *extra_agent_args,
            ),
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        for node_id, (host, port) in peer_map.items()
        if node_id != COORDINATOR_ID
    ]
    repair = subprocess.run(
        _cli(
            "repair", "--snapshot", str(snap), "--stf", str(STF),
            "--seed", str(SEED), "--transport", "tcp", "--peers", spec,
            "--workdir", str(work),
            "--journal", str(tmp_path / "repair.journal"),
            "--metrics-out", str(tmp_path / "metrics.json"),
            "--trace-out", str(tmp_path / "trace.json"),
            "-o", str(tmp_path / "summary.json"),
            *extra_repair_args,
        ),
        env=_env(), capture_output=True, text=True, timeout=240,
    )
    return agents, repair


def test_multiprocess_rs96_repair(tmp_path, peer_map):
    agents, repair = _launch(tmp_path, peer_map)
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout

        # The coordinator's Shutdown broadcast must end every agent.
        deadline = time.monotonic() + 30
        for proc in agents:
            remaining = max(0.5, deadline - time.monotonic())
            out, _ = proc.communicate(timeout=remaining)
            assert proc.returncode == 0, out.decode()

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["transport"] == "tcp"
        assert summary["chunks_repaired"] >= 1
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        assert summary["nacks"] == 0

        # Artifacts reconcile: journal exists, trace has spans, metrics
        # saw socket traffic.
        assert (tmp_path / "repair.journal").stat().st_size > 0
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["spans"]
        metrics = json.dumps(
            json.loads((tmp_path / "metrics.json").read_text())
        )
        assert "net_frames_sent_total" in metrics
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_rs96")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


def test_multiprocess_repair_under_packet_corruption(tmp_path, peer_map):
    """CI's net-integration scenario: corrupt frames, retried to clean.

    Every process (agents and coordinator) runs the same fault plan;
    corruption is injected on the sending side, caught by the per-packet
    checksum at the receiver, and healed by coordinator retries — the
    chunks still come out byte-identical.
    """
    plan_file = tmp_path / "faults.json"
    plan_file.write_text(json.dumps(
        FaultPlan(links=[LinkFault(corrupt=0.05)], seed=3).to_dict()
    ))
    config_file = tmp_path / "config.json"
    config_file.write_text(json.dumps(RuntimeConfig(
        ack_timeout=3.0,
        min_deadline=1.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        probe_timeout=0.5,
        heartbeat_interval=0.2,
        poll_interval=0.05,
        journal_fsync="never",
        inventory_timeout=2.0,
    ).to_dict()))
    shared = (
        "--fault-plan", str(plan_file), "--config", str(config_file),
    )
    agents, repair = _launch(
        tmp_path, peer_map,
        extra_agent_args=("--config", str(config_file)),
        extra_repair_args=shared,
    )
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        deadline = time.monotonic() + 30
        for proc in agents:
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, out.decode()
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_corruption")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


def test_multiprocess_chained_sliced_repair(tmp_path, peer_map):
    """CI's pipelining scenario: sliced chained repair over real sockets.

    Same topology as the star run, but every reconstruction streams
    coefficient-scaled slices through an ordered helper chain
    (``--pipelining chain --slices 4``).  The repaired bytes must still
    verify byte-identical, and the summary must account for every slice
    the destinations assembled.
    """
    agents, repair = _launch(
        tmp_path, peer_map,
        extra_repair_args=("--pipelining", "chain", "--slices", "4"),
    )
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        assert "pipelining=chain slices=4" in repair.stdout

        deadline = time.monotonic() + 30
        for proc in agents:
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, out.decode()

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["pipelining"] == "chain"
        assert summary["slices"] == 4
        assert summary["chunks_repaired"] >= 1
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        # Every chained reconstruction reports all 4 slices; migrations
        # contribute none, so the count is a positive multiple of 4.
        assert summary["slices_completed"] > 0
        assert summary["slices_completed"] % 4 == 0
        assert summary["nacks"] == 0
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_chained")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


# ----------------------------------------------------------------------
# sharded multi-coordinator runs (DESIGN.md §11)
# ----------------------------------------------------------------------

SHARD_STORAGE = 10
SHARD_STANDBY = 2
SHARD_NODES = SHARD_STORAGE + SHARD_STANDBY
SHARD_STRIPES = 6
SHARD_RACKS = 5
SHARD_STF = 0
#: rack 1 of 12 nodes dealt round-robin over 5 racks
RACK_ONE = {1, 6, 11}


def _rack_snapshot(path):
    """A rack-safe snapshot: RS(5,3), one chunk per rack per stripe.

    ``fastpr snapshot`` places randomly, which a rack-level kill can
    push past ``n - k`` losses; the acceptance scenario needs the
    rack-aware placement the paper's deployment section assumes, so
    build it programmatically and save through the same snapshot
    format the CLI loads.
    """
    from repro.cluster import StorageCluster
    from repro.cluster import snapshot as snapshot_mod
    from repro.cluster.topology import RackAwarePlacement, RackTopology

    cluster = StorageCluster(
        num_nodes=SHARD_STORAGE,
        num_hot_standby=SHARD_STANDBY,
        chunk_size=1 << 16,
    )
    topology = RackTopology.uniform(sorted(cluster.nodes), SHARD_RACKS)
    placer = RackAwarePlacement(topology, max_per_rack=1, seed=SEED)
    for _ in range(SHARD_STRIPES):
        cluster.add_stripe(5, 3, placer.choose(cluster, 5))
    snapshot_mod.save(cluster, str(path))


def _launch_sharded(tmp_path, rack_fault=False):
    """Spawn 12 agents and run a 2-coordinator TCP repair against them.

    With ``rack_fault`` the driver runs a :class:`DomainCrashFault`
    killing rack 1 — three agents black-holed at the driver's network
    plus the co-located shard-1 coordinator — at ``t=0`` so the
    takeover is deterministic.
    """
    ports = allocate_ports(SHARD_NODES + 1)
    peers = {COORDINATOR_ID: ("127.0.0.1", ports[0])}
    for i in range(SHARD_NODES):
        peers[i] = ("127.0.0.1", ports[i + 1])
    spec = format_peer_spec(sharded_peer_spec(peers, 2))
    snap = tmp_path / "cluster.json"
    _rack_snapshot(snap)
    work = tmp_path / "work"
    work.mkdir()
    config_file = tmp_path / "config.json"
    config_file.write_text(json.dumps(RuntimeConfig(
        ack_timeout=3.0,
        min_deadline=1.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        probe_timeout=0.5,
        heartbeat_interval=0.2,
        poll_interval=0.05,
        journal_fsync="never",
        inventory_timeout=2.0,
        lease_timeout=5.0,
    ).to_dict()))
    repair_args = [
        "--coordinators", "2",
        "--journal", str(tmp_path / "shards"),
        "--config", str(config_file),
    ]
    if rack_fault:
        plan_file = tmp_path / "faults.json"
        plan_file.write_text(json.dumps(FaultPlan(
            domain_crashes=[DomainCrashFault(
                kind="rack", index=1, at_time=0.0, coordinators=(1,)
            )],
        ).to_dict()))
        repair_args += [
            "--fault-plan", str(plan_file),
            "--racks", str(SHARD_RACKS),
        ]
    agents = [
        subprocess.Popen(
            _cli(
                "agent", "--snapshot", str(snap), "--node", str(node_id),
                "--listen", f"{host}:{port}", "--peers", spec,
                "--workdir", str(work), "--seed", str(SEED),
                "--config", str(config_file),
            ),
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        for node_id, (host, port) in peers.items()
        if node_id != COORDINATOR_ID
    ]
    repair = subprocess.run(
        _cli(
            "repair", "--snapshot", str(snap), "--stf", str(SHARD_STF),
            "--seed", str(SEED), "--transport", "tcp", "--peers", spec,
            "--workdir", str(work),
            "--metrics-out", str(tmp_path / "metrics.json"),
            "-o", str(tmp_path / "summary.json"),
            *repair_args,
        ),
        env=_env(), capture_output=True, text=True, timeout=240,
    )
    return agents, repair


def test_multiprocess_sharded_repair(tmp_path):
    """Two shard coordinators in one driver process, fault-free."""
    agents, repair = _launch_sharded(tmp_path)
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        assert "(2 coordinators, 0 takeovers)" in repair.stdout

        deadline = time.monotonic() + 30
        for proc in agents:
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, out.decode()

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["coordinators"] == 2
        assert summary["restarts"] == 0
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        for shard in (0, 1):
            journal = tmp_path / "shards" / f"shard-{shard}.journal"
            assert journal.stat().st_size > 0
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_sharded")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


def test_multiprocess_rack_fault_takeover(tmp_path):
    """The acceptance scenario over real sockets: a rack-level fault
    kills one shard coordinator and three agents; the survivor takes
    over the orphaned shard and every chunk still verifies
    byte-identical through the shared filesystem.

    The dead rack's agent processes stay alive but black-holed (crash
    timing over TCP is inherently racy; the in-memory variant in
    tests/runtime/test_multicoord.py pins the tight mid-repair
    semantics), so they never see the final Shutdown broadcast and are
    reaped here instead of joined.
    """
    from repro.runtime.journal import RepairJournal, ShardTakeover

    agents, repair = _launch_sharded(tmp_path, rack_fault=True)
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        assert "taken over by shard" in repair.stdout

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["coordinators"] == 2
        assert summary["restarts"] >= 1
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )

        # The orphaned shard's journal shows the handoff...
        records = RepairJournal.replay(
            tmp_path / "shards" / "shard-1.journal", truncate=False
        )
        assert any(isinstance(r, ShardTakeover) for r in records)
        # ...and so do the metrics.
        metrics = (tmp_path / "metrics.json").read_text()
        assert "coord_takeovers_total" in metrics

        # Survivors outside the dead rack shut down cleanly.
        deadline = time.monotonic() + 30
        for node_id, proc in enumerate(agents):
            if node_id in RACK_ONE:
                continue
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, (node_id, out.decode())
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_rack_fault")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
