"""Tests for GF(2^8) matrix algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.galois import gf_mul
from repro.ec.matrix import (
    SingularMatrixError,
    cauchy,
    identity,
    invert,
    is_mds,
    matmul,
    rank,
    systematize,
    vandermonde,
)


class TestConstruction:
    def test_identity(self):
        eye = identity(4)
        assert eye.shape == (4, 4)
        assert eye.dtype == np.uint8
        assert rank(eye) == 4

    def test_vandermonde_shape_and_first_column(self):
        v = vandermonde(5, 3)
        assert v.shape == (5, 3)
        assert all(v[i, 0] == 1 for i in range(5))

    def test_vandermonde_row_zero(self):
        v = vandermonde(4, 3)
        # Row for x=0: [1, 0, 0].
        assert list(v[0]) == [1, 0, 0]

    def test_vandermonde_powers(self):
        v = vandermonde(6, 4)
        for i in range(1, 6):
            for j in range(4):
                expected = 1
                for _ in range(j):
                    expected = gf_mul(expected, i)
                assert v[i, j] == expected

    def test_vandermonde_too_many_rows(self):
        with pytest.raises(ValueError):
            vandermonde(257, 2)

    def test_cauchy_full_rank(self):
        c = cauchy(4, 6)
        assert c.shape == (4, 6)
        assert rank(c) == 4

    def test_cauchy_every_square_submatrix_invertible(self):
        # The defining property of Cauchy matrices.
        c = cauchy(3, 5)
        from itertools import combinations

        for rows in combinations(range(3), 2):
            for cols in combinations(range(5), 2):
                sub = c[np.ix_(rows, cols)]
                assert rank(sub) == 2

    def test_cauchy_point_overflow(self):
        with pytest.raises(ValueError):
            cauchy(200, 100)


class TestInvert:
    def test_identity_inverse(self):
        eye = identity(5)
        assert np.array_equal(invert(eye), eye)

    def test_inverse_roundtrip_cauchy(self):
        c = cauchy(4, 4)
        inv = invert(c)
        assert np.array_equal(matmul(c, inv), identity(4))
        assert np.array_equal(matmul(inv, c), identity(4))

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            invert(singular)

    def test_zero_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            invert(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            invert(np.zeros((2, 3), dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_invertible_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
        if rank(mat) < 4:
            return  # skip singular draws
        inv = invert(mat)
        assert np.array_equal(matmul(mat, inv), identity(4))


class TestRank:
    def test_rank_of_identity(self):
        assert rank(identity(6)) == 6

    def test_rank_deficient(self):
        mat = np.array([[1, 2, 3], [2, 4, 6]], dtype=np.uint8)
        # Row 2 = 2 * row 1 over GF(256): 2*1=2, 2*2=4, 2*3=6.
        assert rank(mat) == 1

    def test_rank_zero(self):
        assert rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_rank_wide_matrix(self):
        assert rank(cauchy(2, 7)) == 2


class TestSystematize:
    def test_vandermonde_systematized(self):
        gen = systematize(vandermonde(6, 4), 4)
        assert np.array_equal(gen[:4], identity(4))

    def test_systematic_code_is_mds_small(self):
        gen = systematize(vandermonde(5, 3), 3)
        assert is_mds(gen, 3)

    def test_wrong_columns_raises(self):
        with pytest.raises(ValueError):
            systematize(vandermonde(5, 3), 4)

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError):
            systematize(vandermonde(2, 3), 3)


class TestMatmul:
    def test_shapes(self):
        out = matmul(cauchy(2, 3), cauchy(3, 4))
        assert out.shape == (2, 4)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            matmul(cauchy(2, 3), cauchy(2, 3))

    def test_identity_neutral(self):
        c = cauchy(3, 3)
        assert np.array_equal(matmul(identity(3), c), c)
        assert np.array_equal(matmul(c, identity(3)), c)


class TestMds:
    def test_cauchy_systematic_is_mds(self):
        gen = np.concatenate([identity(3), cauchy(2, 3)], axis=0)
        assert is_mds(gen, 3)

    def test_repeated_rows_not_mds(self):
        gen = np.concatenate([identity(3), identity(3)[:1]], axis=0)
        # Duplicated row 0 means a k-subset with rank < k exists only if
        # we pick both copies plus one more: rank 2 < 3.
        assert not is_mds(gen, 3)
