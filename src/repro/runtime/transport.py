"""In-process network transport with NIC bandwidth emulation.

Stands in for the EC2 instances' network in the paper's testbed.
Every node gets an inbox queue and a pair of NIC rate limiters
(ingress/egress); delivering a :class:`DataPacket` reserves both the
sender's egress and the receiver's ingress for the packet duration,
so cross-traffic at a node serializes exactly as on a real NIC.
Control messages (commands, ACKs) are delivered unthrottled.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional

from ..cluster.chunk import NodeId
from .messages import DataPacket
from .throttle import RateLimiter, reserve_transfer, sleep_until


class Endpoint:
    """One node's attachment to the network."""

    def __init__(self, node_id: NodeId, bandwidth: Optional[float]):
        self.node_id = node_id
        self.inbox: "queue.Queue" = queue.Queue()
        self.nic_in = RateLimiter(bandwidth, name=f"nic_in[{node_id}]")
        self.nic_out = RateLimiter(bandwidth, name=f"nic_out[{node_id}]")


class Network:
    """Registry of endpoints plus the send primitive."""

    def __init__(self):
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._lock = threading.Lock()
        #: total throttled payload bytes moved (telemetry)
        self.bytes_transferred = 0

    def attach(self, node_id: NodeId, bandwidth: Optional[float]) -> Endpoint:
        """Register a node; returns its endpoint."""
        with self._lock:
            if node_id in self._endpoints:
                raise ValueError(f"node {node_id} already attached")
            endpoint = Endpoint(node_id, bandwidth)
            self._endpoints[node_id] = endpoint
            return endpoint

    def endpoint(self, node_id: NodeId) -> Endpoint:
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} not attached") from None

    def send(self, src: NodeId, dst: NodeId, message) -> None:
        """Deliver a message; DataPackets pay for bandwidth.

        The sender thread blocks for the emulated transfer duration
        (back-pressure), then the packet appears in the receiver inbox.
        """
        sender = self.endpoint(src)
        receiver = self.endpoint(dst)
        if isinstance(message, DataPacket):
            if src == dst:
                raise ValueError("loopback data transfer is not modeled")
            nbytes = len(message.payload)
            deadline = reserve_transfer(sender.nic_out, receiver.nic_in, nbytes)
            sleep_until(deadline)
            with self._lock:
                self.bytes_transferred += nbytes
        receiver.inbox.put(message)
