"""Tests for LRC-aware predictive repair planning."""

import pytest

from repro.core.lrc_support import (
    LrcFastPRPlanner,
    LrcReconstructionOnlyPlanner,
    build_lrc_cluster,
    lrc_helper_candidates,
    split_by_repair_locality,
)
from repro.core.plan import RepairMethod, RepairScenario
from repro.core.planner import ReconstructionOnlyPlanner
from repro.ec import make_codec
from repro.sim.cost_model import evaluate_plan


@pytest.fixture
def codec():
    return make_codec("lrc(6,2,2)")  # n=10, k=6, k'=3


@pytest.fixture
def lrc_cluster(codec):
    cluster = build_lrc_cluster(
        codec, num_nodes=20, num_stripes=60, num_hot_standby=2, seed=13
    )
    stf = max(cluster.storage_node_ids(), key=cluster.load_of)
    cluster.node(stf).mark_soon_to_fail()
    return cluster, stf


class TestHelperCandidates:
    def test_local_group_members_only(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        candidates = lrc_helper_candidates(cluster, codec, stf)
        for chunk in cluster.chunks_on_node(stf):
            if chunk.chunk_index >= codec.k + codec.l:
                continue
            helpers = candidates(chunk)
            stripe = cluster.stripe(chunk.stripe_id)
            group = codec.group_of(chunk.chunk_index)
            member_nodes = {
                stripe.node_of(m)
                for m in codec.local_group_members(group)
                if m != chunk.chunk_index
            }
            assert set(helpers) <= member_nodes
            assert len(helpers) <= codec.group_size

    def test_global_parity_rejected(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        candidates = lrc_helper_candidates(cluster, codec, stf)
        globals_ = [
            c
            for c in cluster.chunks_on_node(stf)
            if c.chunk_index >= codec.k + codec.l
        ]
        if not globals_:
            pytest.skip("seed produced no global-parity chunk on STF node")
        with pytest.raises(ValueError, match="global parity"):
            candidates(globals_[0])


class TestSplit:
    def test_partition(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        chunks = cluster.chunks_on_node(stf)
        local, global_ = split_by_repair_locality(codec, chunks)
        assert len(local) + len(global_) == len(chunks)
        assert all(c.chunk_index < 8 for c in local)
        assert all(c.chunk_index >= 8 for c in global_)


class TestLrcFastPR:
    def test_valid_plan(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcFastPRPlanner(codec, seed=0).plan(cluster, stf)
        plan.validate(cluster)
        assert plan.total_chunks == cluster.load_of(stf)

    def test_local_reconstructions_use_group_fanin(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcFastPRPlanner(codec, seed=0).plan(cluster, stf)
        for action in plan.actions():
            if action.method is RepairMethod.RECONSTRUCTION:
                assert len(action.sources) == codec.group_size
                # Sources are exactly the chunk's local group members.
                stripe = cluster.stripe(action.stripe_id)
                group = codec.group_of(action.chunk_index)
                member_nodes = {
                    stripe.node_of(m)
                    for m in codec.local_group_members(group)
                    if m != action.chunk_index
                }
                assert set(action.sources) == member_nodes

    def test_global_parities_migrate(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcFastPRPlanner(codec, seed=0).plan(cluster, stf)
        for action in plan.actions():
            if action.chunk_index >= codec.k + codec.l:
                assert action.method is RepairMethod.MIGRATION

    def test_beats_rs_style_reconstruction(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        lrc_plan = LrcFastPRPlanner(codec, seed=0).plan(cluster, stf)
        rs_plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        lrc_time = evaluate_plan(
            cluster, lrc_plan, k_prime=codec.group_size
        ).total_time
        rs_time = evaluate_plan(cluster, rs_plan).total_time
        assert lrc_time < rs_time

    def test_hot_standby(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcFastPRPlanner(
            codec, scenario=RepairScenario.HOT_STANDBY, seed=0
        ).plan(cluster, stf)
        plan.validate(cluster)

    def test_codec_mismatch_rejected(self, codec):
        cluster = build_lrc_cluster(
            make_codec("lrc(4,2,2)"), num_nodes=16, num_stripes=10, seed=1
        )
        cluster.node(0).mark_soon_to_fail()
        with pytest.raises(ValueError, match="codec"):
            LrcFastPRPlanner(codec).plan(cluster, 0)


class TestLrcReconstructionOnly:
    def test_valid_plan_no_migration_of_local_chunks(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcReconstructionOnlyPlanner(codec, seed=0).plan(cluster, stf)
        plan.validate(cluster)
        assert plan.migrated_chunks == 0

    def test_global_rounds_use_full_k(self, codec, lrc_cluster):
        cluster, stf = lrc_cluster
        plan = LrcReconstructionOnlyPlanner(codec, seed=0).plan(cluster, stf)
        for action in plan.actions():
            if action.chunk_index >= codec.k + codec.l:
                assert len(action.sources) == codec.k
            else:
                assert len(action.sources) == codec.group_size

    def test_more_parallelism_than_rs(self, codec, lrc_cluster):
        # k' = 3 < k = 6 allows more parallel groups, so fewer or equal
        # rounds for the locally repairable chunks.
        cluster, stf = lrc_cluster
        lrc_plan = LrcReconstructionOnlyPlanner(codec, seed=0).plan(cluster, stf)
        rs_plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        assert lrc_plan.num_rounds <= rs_plan.num_rounds + 2
