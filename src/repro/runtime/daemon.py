"""Always-on repair daemon: monitor -> queue -> coordinator, supervised.

The paper's evaluation runs FastPR as one-shot repairs; a deployed
cluster instead runs a *daemon* that never stops: it watches SMART
telemetry day by day (:class:`~repro.failure.monitor.ClusterFailureMonitor`),
enqueues a predictive repair when a node degrades and a reactive
repair when one dies unannounced, and drains the queue through the
existing coordinator runtime with bounded retry + exponential backoff.

Degradation policy (the paper's free-node assumption under pressure):
reactive repairs — actual data below full redundancy — always admit
first; predictive repairs defer while reactive work is queued, and,
when a per-day helper budget is configured, stop admitting once the
day's budget is spent.

Crash safety: every queue transition is journaled write-ahead to a
CRC-framed log (:class:`DaemonJournal`, same on-disk framing as the
coordinator's :mod:`~repro.runtime.journal`).  A daemon that dies —
via the deterministic :class:`~repro.runtime.faults.DaemonCrashFault`,
or together with its coordinator
(:class:`~repro.runtime.journal.CoordinatorCrash`) — restarts by
rebuilding its queue from the journal and calling :meth:`RepairDaemon.resume`:
completed tasks are never re-executed, the interrupted one is finished
through coordinator journal recovery
(:meth:`~repro.runtime.testbed.EmulatedTestbed.restart_coordinator`),
and the remainder drains normally, ending in a cluster byte-identical
to a fault-free run.

Observability: queue depth, repairs in flight, per-kind task outcomes,
retries, deferrals, scrub findings and chunks restored are exported
through the testbed's :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..cluster.chunk import NodeId
from ..core.plan import RepairPlan, RepairScenario
from ..core.planner import FastPRPlanner, apply_plan
from ..core.reactive import plan_failed_node_repair
from ..failure.monitor import ClusterFailureMonitor, MissedFailure, MonitorReport, StfEvent
from .journal import CoordinatorCrash
from .scrub import Scrubber

_HEADER = struct.Struct("<II")  # [payload length][CRC32], as in journal.py


class DaemonCrash(RuntimeError):
    """Injected daemon death (:class:`DaemonCrashFault` tripped)."""

    def __init__(self, tasks_completed: int):
        self.tasks_completed = tasks_completed
        super().__init__(
            f"repair daemon crashed after task {tasks_completed}"
        )


@dataclass(frozen=True)
class RepairTask:
    """One queued whole-node repair.

    Attributes:
        task_id: monotonically increasing id (journal correlation key).
        node_id: the node to repair.
        kind: ``"predictive"`` (STF drain) or ``"reactive"``
            (post-failure reconstruction).
        day: monitor day the task was enqueued.
        disk_id: the alarming/failing disk behind the task (-1 when
            unknown).
        attempts: executions so far (for bounded retry).
    """

    task_id: int
    node_id: NodeId
    kind: str
    day: int
    disk_id: int = -1
    attempts: int = 0

    #: admission priority — reactive (real data loss) preempts predictive
    PRIORITY = {"reactive": 0, "predictive": 1}

    def __post_init__(self):
        if self.kind not in self.PRIORITY:
            raise ValueError(f"unknown task kind {self.kind!r}")

    @property
    def sort_key(self):
        return (self.PRIORITY[self.kind], self.task_id)


class DaemonJournal:
    """Append-only CRC-framed log of daemon queue transitions.

    Same frame format as the coordinator journal
    (``[u32 len][u32 crc32][UTF-8 JSON]``), but records are plain dicts
    with a ``"type"`` key — the daemon's vocabulary is small and flat:

    * ``task_enqueued`` — task_id, node_id, kind, day, disk_id
    * ``task_started`` — task_id, attempt
    * ``task_completed`` — task_id, chunks
    * ``task_failed`` — task_id, attempt, error (one bounded retry step)
    * ``task_abandoned`` — task_id (retries exhausted)
    * ``day_observed`` — day (monitor progress watermark)
    * ``scrub_completed`` — day, corrupt, repaired

    Opening a journal replays it first: complete frames become
    :attr:`recovered`; a torn tail (crash mid-write) is truncated so
    appends continue from the last durable record.
    """

    def __init__(self, path: Path, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self.recovered: List[dict] = self.replay(self.path)
        self._file = open(self.path, "ab")
        #: records appended by this incarnation
        self.records_written = 0

    @staticmethod
    def replay(path: Path, truncate: bool = True) -> List[dict]:
        """Read every complete record; truncate a torn tail."""
        path = Path(path)
        if not path.exists():
            return []
        records: List[dict] = []
        with open(path, "rb") as fh:
            data = fh.read()
        offset = 0
        while offset + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # torn frame
            payload = data[start:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break  # torn/corrupt tail
            records.append(json.loads(payload.decode("utf-8")))
            offset = end
        if truncate and offset < len(data):
            with open(path, "r+b") as fh:
                fh.truncate(offset)
        return records

    def append(self, type: str, **fields) -> dict:
        record = {"type": type, **fields}
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        self._file.write(frame + payload)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.records_written += 1
        return record

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def _queue_state(records: List[dict]):
    """Derive (pending tasks, interrupted task ids, last day) from a log."""
    tasks: Dict[int, RepairTask] = {}
    started: Dict[int, int] = {}
    finished: set = set()
    last_day = -1
    for record in records:
        kind = record["type"]
        if kind == "task_enqueued":
            tasks[record["task_id"]] = RepairTask(
                task_id=record["task_id"],
                node_id=record["node_id"],
                kind=record["kind"],
                day=record["day"],
                disk_id=record.get("disk_id", -1),
            )
        elif kind == "task_started":
            started[record["task_id"]] = record.get("attempt", 1)
        elif kind in ("task_completed", "task_abandoned"):
            finished.add(record["task_id"])
        elif kind == "task_failed":
            # the attempt ended cleanly (exception caught, backoff
            # scheduled): the task is queued again, not in flight
            started.pop(record["task_id"], None)
        elif kind == "day_observed":
            last_day = max(last_day, record["day"])
    pending = [
        replace(task, attempts=started.get(task_id, 0))
        for task_id, task in sorted(tasks.items())
        if task_id not in finished
    ]
    interrupted = [
        t.task_id for t in pending if t.task_id in started
    ]
    return pending, interrupted, last_day


class RepairDaemon:
    """Supervised loop: observe telemetry, queue repairs, execute them.

    Args:
        testbed: a started :class:`~repro.runtime.testbed.EmulatedTestbed`
            (data loaded); repairs execute through its coordinator.
        monitor: the failure monitor bound to the same cluster.  The
            daemon drives it incrementally via
            :meth:`~repro.failure.monitor.ClusterFailureMonitor.observe_day`
            and re-arms nodes with ``complete_repair`` when their
            repair lands.
        journal_path: the daemon queue journal; defaults to
            ``testbed.workdir / "daemon.journal"``.  Opening an
            existing journal recovers its queue — call :meth:`resume`
            before :meth:`run` after a crash.
        scenario: repair scenario for planned repairs.
        seed: planner seed (kept fixed so replanning after a crash is
            deterministic).
        helper_budget: max repairs admitted per observed day; ``None``
            = unbounded.  When the day's budget is spent, *reactive*
            repairs are still admitted (redundancy is already lost) and
            predictive repairs defer to the next day.
        max_attempts: bounded retry per task before it is abandoned.
        sleep: injectable backoff sleeper (tests pass a no-op).
    """

    def __init__(
        self,
        testbed,
        monitor: ClusterFailureMonitor,
        journal_path: Optional[Path] = None,
        scenario: RepairScenario = RepairScenario.SCATTERED,
        seed: int = 0,
        helper_budget: Optional[int] = None,
        scrub_interval_days: int = 0,
        max_attempts: int = 3,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if helper_budget is not None and helper_budget < 1:
            raise ValueError("helper_budget must be >= 1 (or None)")
        self.testbed = testbed
        self.monitor = monitor
        self.scenario = scenario
        self.seed = seed
        self.helper_budget = helper_budget
        self.scrub_interval_days = scrub_interval_days
        self.max_attempts = max_attempts
        self._sleep = sleep
        self.journal = DaemonJournal(
            Path(journal_path)
            if journal_path is not None
            else testbed.workdir / "daemon.journal"
        )
        pending, interrupted, last_day = _queue_state(self.journal.recovered)
        self.queue: List[RepairTask] = pending
        self._interrupted: List[int] = interrupted
        self._task_seq = max(
            [r.get("task_id", -1) for r in self.journal.recovered] or [-1]
        ) + 1
        self.next_day = last_day + 1
        self.report = MonitorReport()
        self._completed_tasks = 0
        self._repairs_today = 0
        # Shared with the injector (not copied): a fault fires once per
        # testbed, so a successor daemon does not re-trip the crash its
        # predecessor already consumed.
        self._crash_faults = (
            testbed.faults.daemon_crashes_pending
            if testbed.faults is not None
            else []
        )
        metrics = testbed.metrics
        self._queue_gauge = metrics.gauge(
            "daemon_queue_depth", "repair tasks waiting in the daemon queue"
        )
        self._inflight_gauge = metrics.gauge(
            "daemon_repairs_in_flight", "repairs currently executing"
        )
        self._day_gauge = metrics.gauge(
            "daemon_day", "last telemetry day observed"
        )
        self._tasks_total = metrics.counter(
            "daemon_tasks_total", "repair tasks by kind and outcome"
        )
        self._retries_total = metrics.counter(
            "daemon_retries_total", "repair attempts beyond the first"
        )
        self._deferred_total = metrics.counter(
            "daemon_deferred_total",
            "predictive repairs deferred by the helper budget",
        )
        self._chunks_total = metrics.counter(
            "daemon_chunks_repaired_total", "chunks restored by daemon repairs"
        )
        self._scrub_corrupt_total = metrics.counter(
            "daemon_scrub_corrupt_total", "latent corrupt chunks found by scrub"
        )
        self._scrub_repaired_total = metrics.counter(
            "daemon_scrub_repaired_total", "corrupt chunks restored by scrub"
        )
        self._queue_gauge.set(len(self.queue))

    # -- queue -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def completed_tasks(self) -> int:
        """Repairs completed by this incarnation."""
        return self._completed_tasks

    def enqueue(self, node_id: NodeId, kind: str, day: int, disk_id: int = -1) -> RepairTask:
        """Journal and queue one repair task."""
        task = RepairTask(
            task_id=self._task_seq, node_id=node_id, kind=kind, day=day,
            disk_id=disk_id,
        )
        self._task_seq += 1
        self.journal.append(
            "task_enqueued",
            task_id=task.task_id,
            node_id=task.node_id,
            kind=task.kind,
            day=task.day,
            disk_id=task.disk_id,
        )
        self.queue.append(task)
        self._queue_gauge.set(len(self.queue))
        return task

    def _next_task(self) -> Optional[RepairTask]:
        if not self.queue:
            return None
        task = min(self.queue, key=lambda t: t.sort_key)
        if (
            task.kind == "predictive"
            and self.helper_budget is not None
            and self._repairs_today >= self.helper_budget
        ):
            # Budget exhausted: predictive repairs can wait a day;
            # reactive ones (sorted first) would already have won.
            self._deferred_total.inc(len(self.queue))
            return None
        return task

    def pump(self) -> int:
        """Drain the queue as far as policy allows; returns repairs run."""
        executed = 0
        while True:
            task = self._next_task()
            if task is None:
                return executed
            self.queue.remove(task)
            self._queue_gauge.set(len(self.queue))
            self._execute(task)
            executed += 1
            self._repairs_today += 1

    # -- execution -------------------------------------------------------

    def _plan_for(self, task: RepairTask) -> RepairPlan:
        if task.kind == "reactive":
            return plan_failed_node_repair(
                self.testbed.cluster,
                task.node_id,
                scenario=self.scenario,
                seed=self.seed,
            )
        return FastPRPlanner(scenario=self.scenario, seed=self.seed).plan(
            self.testbed.cluster, task.node_id
        )

    def _execute(self, task: RepairTask) -> None:
        attempt = task.attempts
        last_error: Optional[Exception] = None
        while attempt < self.max_attempts:
            attempt += 1
            self.journal.append(
                "task_started", task_id=task.task_id, attempt=attempt
            )
            if attempt > 1:
                self._retries_total.inc(kind=task.kind)
                self._sleep(self.testbed.config.backoff(attempt - 1))
            self._inflight_gauge.set(1)
            try:
                plan = self._plan_for(task)
                result = self.testbed.execute(plan)
                self.testbed.verify_plan(plan, result)
            except (CoordinatorCrash, DaemonCrash):
                self._inflight_gauge.set(0)
                raise  # the daemon dies with its coordinator
            except Exception as exc:  # noqa: BLE001 - bounded retry
                self._inflight_gauge.set(0)
                last_error = exc
                self.journal.append(
                    "task_failed",
                    task_id=task.task_id,
                    attempt=attempt,
                    error=repr(exc),
                )
                continue
            self._inflight_gauge.set(0)
            self._finalize(task, plan)
            return
        self.journal.append("task_abandoned", task_id=task.task_id)
        self._tasks_total.inc(kind=task.kind, outcome="abandoned")
        if last_error is not None:
            raise last_error

    def _finalize(self, task: RepairTask, plan: RepairPlan) -> None:
        """Commit a verified repair: metadata, monitor re-arm, journal."""
        chunks = len(list(plan.actions()))
        apply_plan(self.testbed.cluster, plan)
        node = self.testbed.cluster.node(task.node_id)
        if node.is_stf:
            # Replacement-in-place: the drained disk is swapped for a
            # fresh one under the same node id, so the node rejoins as
            # a healthy (empty) destination/helper candidate.  A node
            # that actually *failed* stays failed — dead hardware does
            # not rejoin; its chunks now live elsewhere.
            node.mark_healthy()
        self.monitor.complete_repair(task.node_id)
        self.journal.append(
            "task_completed", task_id=task.task_id, chunks=chunks
        )
        self._tasks_total.inc(kind=task.kind, outcome="completed")
        self._chunks_total.inc(chunks)
        self._completed_tasks += 1
        if (
            self._crash_faults
            and self._completed_tasks >= self._crash_faults[0].after_tasks
        ):
            self._crash_faults.pop(0)
            raise DaemonCrash(self._completed_tasks)

    # -- crash recovery --------------------------------------------------

    def resume(self) -> List[RepairTask]:
        """Finish work a dead predecessor left behind; returns its queue.

        Tasks journaled complete are *not* re-executed.  A task that
        was started but neither completed nor failed was cut by a
        coordinator (or daemon) death mid-execute: it is finished
        through coordinator journal recovery
        (``testbed.restart_coordinator()`` + ``testbed.resume()``) when
        a repair journal exists, else re-executed from scratch.  The
        remaining pending tasks stay queued for :meth:`run` / :meth:`pump`.
        """
        recovered = list(self.queue)
        for task_id in list(self._interrupted):
            task = next(t for t in self.queue if t.task_id == task_id)
            self.queue.remove(task)
            self._queue_gauge.set(len(self.queue))
            self._interrupted.remove(task_id)
            journal_path = self.testbed.journal_path
            if journal_path is not None and Path(journal_path).exists():
                self.testbed.restart_coordinator()
                self.testbed.resume()
                # The executed plan is reproducible: planner seed and
                # cluster metadata are unchanged until _finalize.
                plan = self._plan_for(task)
                self.testbed.verify_plan(plan)
                self._finalize(task, plan)
            else:
                self._execute(task)
        return recovered

    # -- main loop -------------------------------------------------------

    def observe_day(self, day: int) -> None:
        """Feed one telemetry day through the monitor into the queue."""

        def on_stf(event: StfEvent) -> None:
            self.enqueue(event.node_id, "predictive", day, event.disk_id)

        def on_failure(missed: MissedFailure) -> None:
            self.enqueue(missed.node_id, "reactive", day, missed.disk_id)

        self.monitor.observe_day(
            day, self.report, on_stf=on_stf, on_failure=on_failure
        )
        self.journal.append("day_observed", day=day)
        self._day_gauge.set(day)

    def scrub(self, day: int) -> None:
        """One scrub cycle: find latent corruption, repair it in place.

        The cycle runs as a registered ``scrub`` flow when the testbed
        carries a :class:`repro.gateway.TrafficArbiter`, so scrub
        traffic is paced against the client bandwidth floor.
        """
        arbiter = getattr(self.testbed, "arbiter", None)
        flow = (
            arbiter.register("scrub")
            if arbiter is not None
            else nullcontext()
        )
        with flow:
            report = Scrubber(self.testbed).scrub()
        self._scrub_corrupt_total.inc(len(report.corrupt))
        self._scrub_repaired_total.inc(len(report.repaired))
        self.journal.append(
            "scrub_completed",
            day=day,
            corrupt=len(report.corrupt),
            repaired=len(report.repaired),
        )

    def run(self, max_days: Optional[int] = None) -> MonitorReport:
        """Observe telemetry days until the horizon, draining the queue.

        Continues from where the journal left off (``next_day``); a
        crashed daemon re-run therefore never re-observes a day it
        already journaled.  Raises
        :class:`~repro.runtime.journal.CoordinatorCrash` /
        :class:`DaemonCrash` when an injected death triggers — callers
        then build a successor on the same journal and :meth:`resume`.
        """
        horizon = self.monitor.horizon
        if max_days is not None:
            horizon = min(horizon, self.next_day + max_days)
        for day in range(self.next_day, horizon):
            self.next_day = day + 1
            self._repairs_today = 0
            self.observe_day(day)
            if (
                self.scrub_interval_days > 0
                and day > 0
                and day % self.scrub_interval_days == 0
            ):
                self.scrub(day)
            self.pump()
        return self.report

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "RepairDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
