"""Cross-module integration tests: the full FastPR story.

These tests wire the substrates together the way the paper's system
does: SMART telemetry -> failure predictor -> STF flag -> FastPR plan ->
simulated or emulated execution -> metadata update -> rebalance.
"""

import pytest

from repro import (
    EmulatedTestbed,
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairScenario,
    make_codec,
    simulate_repair,
)
from repro.cluster import Rebalancer, StorageCluster, placement_balance
from repro.core import apply_plan
from repro.failure import (
    ClusterFailureMonitor,
    LogisticPredictor,
    SmartTraceGenerator,
)
from repro.sim import evaluate_plan


class TestPredictiveMaintenancePipeline:
    """SMART traces drive repairs end to end (simulated execution)."""

    def test_full_loop(self):
        num_nodes = 16
        cluster = StorageCluster.random(
            num_nodes, 60, 5, 3, num_hot_standby=2, seed=50
        )
        train_fleet = SmartTraceGenerator(
            250, horizon_days=120, annual_failure_rate=0.25, seed=51
        ).generate()
        predictor = LogisticPredictor(seed=0).fit(train_fleet)
        live_traces = SmartTraceGenerator(
            num_nodes, horizon_days=120, annual_failure_rate=0.5, seed=52
        ).generate()
        repair_log = []

        def on_stf(event):
            planner = FastPRPlanner(seed=0)
            plan = planner.plan(cluster, event.node_id)
            plan.validate(cluster)
            result = evaluate_plan(cluster, plan)
            apply_plan(cluster, plan)
            repair_log.append((event, plan, result))
            return plan

        monitor = ClusterFailureMonitor(cluster, live_traces, predictor)
        report = monitor.run(on_stf=on_stf)

        assert report.stf_events, "seed should produce at least one alarm"
        # Every predicted failure was repaired before the disk died.
        for event, plan, result in repair_log:
            assert cluster.load_of(event.node_id) == 0
            if not event.is_false_alarm:
                assert event.day < event.actual_failure_day
            assert result.total_time > 0
        cluster.verify_fault_tolerance()

    def test_repair_faster_than_reactive(self):
        cluster = StorageCluster.random(40, 200, 9, 6, seed=60)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        fast = evaluate_plan(cluster, FastPRPlanner(seed=0).plan(cluster, stf))
        reactive = evaluate_plan(
            cluster, ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        )
        migration = evaluate_plan(
            cluster, MigrationOnlyPlanner().plan(cluster, stf)
        )
        assert fast.total_time <= reactive.total_time
        assert fast.total_time < migration.total_time


class TestRepairThenRebalance:
    def test_post_repair_rebalance(self):
        cluster = StorageCluster.random(12, 60, 5, 3, seed=70)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        apply_plan(cluster, plan)
        cluster.decommission(stf)
        # Repair skews the distribution; the paper assumes periodic
        # rebalancing restores it.
        Rebalancer(seed=0).run(cluster)
        cluster.verify_fault_tolerance()
        healthy = cluster.healthy_storage_nodes()
        loads = [cluster.load_of(n) for n in healthy]
        assert max(loads) - min(loads) <= 2


class TestRuntimeAgainstSimulator:
    """The emulated testbed's bytes match plans the simulator times."""

    def test_same_plan_runs_on_both_substrates(self, tmp_path):
        cluster = StorageCluster.random(
            10,
            15,
            5,
            3,
            num_hot_standby=2,
            seed=80,
            disk_bandwidth=100e6,
            network_bandwidth=440e6,
            chunk_size=128 * 1024,
        )
        cluster.node(0).mark_soon_to_fail()
        if cluster.load_of(0) == 0:
            pytest.skip("seed gave the STF node no chunks")
        plan = FastPRPlanner(seed=0).plan(cluster, 0)
        sim_result = simulate_repair(cluster, plan)
        with EmulatedTestbed(
            cluster, make_codec("rs(5,3)"), workdir=tmp_path
        ) as testbed:
            testbed.load_random_data(seed=81)
            run_result = testbed.execute(plan)
            testbed.verify_plan(plan)
        assert run_result.chunks_repaired == sim_result.chunks_repaired
        assert run_result.bytes_transferred == sim_result.bytes_transferred

    def test_lrc_repair_on_testbed(self, tmp_path):
        """LRC local repair end-to-end: XOR streaming decode, verified."""
        from repro.core.lrc_support import LrcFastPRPlanner, build_lrc_cluster

        codec = make_codec("lrc(6,2,2)")
        cluster = build_lrc_cluster(
            codec,
            num_nodes=14,
            num_stripes=12,
            num_hot_standby=2,
            seed=100,
            disk_bandwidth=200e6,
            network_bandwidth=880e6,
            chunk_size=64 * 1024,
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        plan = LrcFastPRPlanner(codec, seed=0).plan(cluster, stf)
        plan.validate(cluster)
        with EmulatedTestbed(cluster, codec, workdir=tmp_path) as testbed:
            testbed.load_random_data(seed=101)
            testbed.execute(plan)
            testbed.verify_plan(plan)

    def test_hot_standby_promotion_story(self, tmp_path):
        cluster = StorageCluster.random(
            8,
            10,
            4,
            2,
            num_hot_standby=2,
            seed=90,
            disk_bandwidth=200e6,
            network_bandwidth=880e6,
            chunk_size=64 * 1024,
        )
        cluster.node(1).mark_soon_to_fail()
        plan = FastPRPlanner(
            scenario=RepairScenario.HOT_STANDBY, seed=0
        ).plan(cluster, 1)
        with EmulatedTestbed(
            cluster, make_codec("rs(4,2)"), workdir=tmp_path
        ) as testbed:
            testbed.load_random_data(seed=91)
            testbed.execute(plan)
            testbed.verify_plan(plan)
        apply_plan(cluster, plan)
        cluster.decommission(1)
        for standby in cluster.hot_standby_ids():
            cluster.promote_standby(standby)
        cluster.verify_fault_tolerance()
