"""Tests for node state transitions."""

import pytest

from repro.cluster.node import Node, NodeRole, NodeState


class TestNode:
    def test_defaults(self):
        node = Node(5)
        assert node.is_healthy
        assert not node.is_stf
        assert not node.is_failed
        assert not node.is_standby
        assert node.role is NodeRole.STORAGE

    def test_mark_soon_to_fail(self):
        node = Node(0)
        node.mark_soon_to_fail()
        assert node.is_stf
        assert node.state is NodeState.SOON_TO_FAIL
        # Idempotent.
        node.mark_soon_to_fail()
        assert node.is_stf

    def test_mark_failed(self):
        node = Node(0)
        node.mark_failed()
        assert node.is_failed

    def test_stf_after_failure_rejected(self):
        node = Node(0)
        node.mark_failed()
        with pytest.raises(ValueError):
            node.mark_soon_to_fail()

    def test_false_alarm_cleared(self):
        node = Node(0)
        node.mark_soon_to_fail()
        node.mark_healthy()
        assert node.is_healthy

    def test_heal_after_failure_rejected(self):
        node = Node(0)
        node.mark_failed()
        with pytest.raises(ValueError):
            node.mark_healthy()

    def test_hot_standby_role(self):
        node = Node(9, role=NodeRole.HOT_STANDBY)
        assert node.is_standby
