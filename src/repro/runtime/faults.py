"""Deterministic fault injection for the emulated testbed.

FastPR's whole premise is a *soon-to-fail* node, so the runtime must
survive the STF node (or any helper) actually dying mid-repair, plus
the usual network pathologies.  This module defines a declarative
:class:`FaultPlan` — node crashes, packet drop/delay/duplication,
payload corruption, slow-NIC degradation — and a :class:`FaultInjector`
that the :class:`~repro.runtime.transport.Network` consults on every
send.  All probabilistic decisions come from per-link RNG streams
seeded from ``(seed, src, dst)``, so a plan replays identically
regardless of thread interleaving.

Crash semantics: a crashed node is a black hole.  Messages from or to
it are silently dropped (like a dead TCP peer), its agent is told to
stand down via the injector's ``on_crash`` callback, and the
coordinator discovers the death through missed ACK deadlines plus an
explicit ping probe.  Nothing in the repair protocol is told about the
crash out of band.

The same crash specs drive the discrete-event simulator
(:meth:`repro.sim.simulator.RepairSimulator.run` accepts a
``FaultPlan``), so simulated and emulated degraded repairs agree on
the failure model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cluster.chunk import NodeId
from ..core.serde import Schema

#: shared serde protocol (versioned, unknown keys raise TypeError —
#: the contract ``FaultPlan.from_dict`` has always had for typos)
FAULT_PLAN_SCHEMA = Schema(
    kind="FaultPlan",
    version=1,
    fields=(
        "crashes",
        "links",
        "slow_nics",
        "coordinator_crashes",
        "domain_crashes",
        "daemon_crashes",
        "seed",
    ),
    error=TypeError,
    implicit_version=1,  # hand-written fault-plan JSON predates versions
)


@dataclass(frozen=True)
class CrashFault:
    """One node dies permanently.

    Exactly one trigger should be set:

    Attributes:
        node: the node that dies.
        at_time: seconds after :meth:`FaultInjector.start` at which the
            endpoint goes dark.
        after_sent_bytes: the node dies once it has sent at least this
            many data-payload bytes (use to kill the STF node at a
            given migration progress, deterministically).
        after_recv_bytes: the node dies once it has received at least
            this many data-payload bytes.
    """

    node: NodeId
    at_time: Optional[float] = None
    after_sent_bytes: Optional[int] = None
    after_recv_bytes: Optional[int] = None

    def __post_init__(self):
        triggers = [
            t
            for t in (self.at_time, self.after_sent_bytes, self.after_recv_bytes)
            if t is not None
        ]
        if len(triggers) != 1:
            raise ValueError("CrashFault needs exactly one trigger")
        if triggers[0] < 0:
            raise ValueError("crash trigger must be non-negative")


@dataclass(frozen=True)
class LinkFault:
    """Packet-level impairments on a link (data packets only).

    Control messages (commands, ACKs, pings) are never impaired by a
    LinkFault — the runtime treats them as reliably delivered unless a
    node has crashed; transient loss is modeled where it hurts, on the
    throttled data path.

    Attributes:
        drop: probability a data packet is dropped.
        duplicate: probability a data packet is delivered twice.
        corrupt: probability one byte of the payload is flipped (the
            per-packet checksum catches it at the receiver).
        delay: fixed extra latency (seconds) added to every packet.
        src / dst: restrict the fault to one link end; ``None`` = any.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    src: Optional[NodeId] = None
    dst: Optional[NodeId] = None

    def __post_init__(self):
        for p in (self.drop, self.duplicate, self.corrupt):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def applies(self, src: NodeId, dst: NodeId) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class SlowNicFault:
    """Degrade a node's NIC bandwidth by ``factor`` at ``at_time``.

    Models the paper's motivating scenario of a soon-to-fail machine
    limping along: the node stays alive but its links slow down.
    """

    node: NodeId
    factor: float
    at_time: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if self.at_time < 0:
            raise ValueError("at_time must be non-negative")


@dataclass(frozen=True)
class CoordinatorCrashFault:
    """The coordinator process dies at a deterministic point.

    Unlike node crashes, a coordinator crash kills the control plane
    only: agents keep running, in-flight transfers finish, and recovery
    (:meth:`repro.runtime.coordinator.Coordinator.recover`) must resume
    the repair from the write-ahead journal.  Exactly one trigger:

    Attributes:
        after_records: die immediately after the Nth journal record of
            the run hits disk (the crash-point sweep iterates this).
        after_round: die right after the given round's ``RoundCompleted``
            record is journaled (the simulator mirrors this trigger).
    """

    after_records: Optional[int] = None
    after_round: Optional[int] = None

    def __post_init__(self):
        triggers = [
            t for t in (self.after_records, self.after_round) if t is not None
        ]
        if len(triggers) != 1:
            raise ValueError("CoordinatorCrashFault needs exactly one trigger")
        if self.after_records is not None and self.after_records < 1:
            raise ValueError("after_records must be >= 1")
        if self.after_round is not None and self.after_round < 0:
            raise ValueError("after_round must be non-negative")


@dataclass(frozen=True)
class DaemonCrashFault:
    """The repair daemon's own process dies at a deterministic point.

    A daemon death is one layer above a coordinator crash: the daemon's
    queue journal survives, any in-flight coordinator repair is cut at
    whatever its own journal holds, and a restarted daemon must resume
    from both journals without double-executing finished repairs
    (see :class:`repro.runtime.daemon.RepairDaemon.resume`).

    Attributes:
        after_tasks: die immediately after the Nth repair task of the
            run is journaled complete (the completion record is on
            disk; the daemon dies before dequeuing the next task).
    """

    after_tasks: int

    def __post_init__(self):
        if self.after_tasks < 1:
            raise ValueError("after_tasks must be >= 1")


@dataclass(frozen=True)
class DomainCrashFault:
    """A whole failure domain (rack or machine) dies at once.

    Correlated failures are the reason multi-coordinator repair exists:
    one rack losing power takes out every agent in it *and* any
    coordinator co-located there, in the same instant.  A domain crash
    is declared against the topology's domain index and expanded into
    per-node :class:`CrashFault`\\ s by :meth:`FaultPlan.resolve_domains`
    (the testbed does this automatically when given a topology).

    Attributes:
        kind: ``"rack"`` or ``"machine"`` (see
            :data:`repro.cluster.topology.DOMAIN_KINDS`).
        index: the domain's index within the topology.
        at_time: seconds after :meth:`FaultInjector.start` at which the
            whole domain goes dark.
        coordinators: shard indices whose coordinator is co-located in
            the dying domain; the injector kills each through its
            ``on_kill_coordinator`` callback at the same instant the
            domain's nodes crash.
    """

    kind: str
    index: int
    at_time: float = 0.0
    coordinators: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind not in ("rack", "machine"):
            raise ValueError(
                f"unknown failure domain kind {self.kind!r}; "
                "expected 'rack' or 'machine'"
            )
        if self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        object.__setattr__(self, "coordinators", tuple(self.coordinators))
        if any(s < 0 for s in self.coordinators):
            raise ValueError("coordinator shard indices must be >= 0")


@dataclass
class FaultPlan:
    """A declarative, seeded set of faults for one repair run."""

    crashes: List[CrashFault] = field(default_factory=list)
    links: List[LinkFault] = field(default_factory=list)
    slow_nics: List[SlowNicFault] = field(default_factory=list)
    coordinator_crashes: List[CoordinatorCrashFault] = field(
        default_factory=list
    )
    domain_crashes: List[DomainCrashFault] = field(default_factory=list)
    daemon_crashes: List[DaemonCrashFault] = field(default_factory=list)
    seed: int = 0

    def crash_times(self) -> List[CrashFault]:
        """Time-triggered crashes, sorted (for the simulator mirror)."""
        timed = [c for c in self.crashes if c.at_time is not None]
        return sorted(timed, key=lambda c: c.at_time)

    def link_bandwidths(
        self, at_time: Optional[float] = None
    ) -> Dict[NodeId, float]:
        """Effective per-node NIC bandwidth scales under this plan.

        The injector applies :class:`SlowNicFault` factors to the NIC
        limiters as their triggers come due, but nothing upstream could
        see those numbers: chain ordering and the cost model priced
        repairs as if every link still ran at full speed.  This
        accessor is the shared source of truth — node -> scale in
        (0, 1], folding every slow-NIC fault due by ``at_time`` (all of
        them when ``at_time`` is None: the steady state a whole repair
        run converges to).  Repeated faults on one node compose
        multiplicatively, exactly how the injector applies them
        (``network.scale_bandwidth`` multiplies the limiter rate).
        Nodes without a due fault are omitted (scale 1.0).
        """
        scales: Dict[NodeId, float] = {}
        for slow in self.slow_nics:
            if at_time is not None and slow.at_time > at_time:
                continue
            scales[slow.node] = scales.get(slow.node, 1.0) * slow.factor
        return scales

    def resolve_domains(self, topology) -> "FaultPlan":
        """Expand domain crashes into per-node crash faults.

        Returns a new plan whose ``crashes`` list additionally contains
        one time-triggered :class:`CrashFault` per node of each dying
        domain (nodes that already have a crash fault are skipped — the
        earliest trigger wins at the injector).  The ``domain_crashes``
        are kept: the injector still needs them to fire co-located
        coordinator kills.

        Args:
            topology: a :class:`~repro.cluster.topology.RackTopology`
                covering the nodes; a machine-kind crash requires its
                machine map.
        """
        if not self.domain_crashes:
            return self
        already = {c.node for c in self.crashes}
        expanded: List[CrashFault] = []
        for domain in self.domain_crashes:
            for node in topology.nodes_in_domain(domain.kind, domain.index):
                if node in already:
                    continue
                already.add(node)
                expanded.append(
                    CrashFault(node=node, at_time=domain.at_time)
                )
        return replace(self, crashes=self.crashes + expanded)

    def to_dict(self) -> dict:
        """JSON-compatible form (``fastpr repair --fault-plan``)."""
        return FAULT_PLAN_SCHEMA.dump(
            {
                "seed": self.seed,
                "crashes": [asdict(c) for c in self.crashes],
                "links": [asdict(f) for f in self.links],
                "slow_nics": [asdict(s) for s in self.slow_nics],
                "coordinator_crashes": [
                    asdict(c) for c in self.coordinator_crashes
                ],
                "domain_crashes": [
                    {**asdict(d), "coordinators": list(d.coordinators)}
                    for d in self.domain_crashes
                ],
                "daemon_crashes": [asdict(c) for c in self.daemon_crashes],
            }
        )

    @classmethod
    def from_dict(
        cls, document: dict, node_ids: Optional[Set[NodeId]] = None
    ) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written
        JSON); unknown keys raise ``TypeError`` so typos surface.

        Args:
            node_ids: when given (e.g. the node set of the cluster
                snapshot the plan will run against), crash events
                targeting any node outside it raise ``ValueError`` at
                load time — instead of silently never firing at run
                time.
        """
        body = FAULT_PLAN_SCHEMA.load(document)
        plan = cls(
            crashes=[CrashFault(**c) for c in body.get("crashes", [])],
            links=[LinkFault(**f) for f in body.get("links", [])],
            slow_nics=[SlowNicFault(**s) for s in body.get("slow_nics", [])],
            coordinator_crashes=[
                CoordinatorCrashFault(**c)
                for c in body.get("coordinator_crashes", [])
            ],
            domain_crashes=[
                DomainCrashFault(
                    kind=d["kind"],
                    index=d["index"],
                    at_time=d.get("at_time", 0.0),
                    coordinators=tuple(d.get("coordinators", ())),
                )
                for d in body.get("domain_crashes", [])
            ],
            daemon_crashes=[
                DaemonCrashFault(**c) for c in body.get("daemon_crashes", [])
            ],
            seed=body.get("seed", 0),
        )
        if node_ids is not None:
            plan.validate_nodes(node_ids)
        return plan

    def validate_nodes(self, node_ids: Set[NodeId]) -> None:
        """Reject crash events that target nodes outside ``node_ids``.

        Raises:
            ValueError: naming every unknown crash target.
        """
        known = set(node_ids)
        unknown = sorted(
            {c.node for c in self.crashes if c.node not in known}
        )
        if unknown:
            raise ValueError(
                f"fault plan crashes unknown node(s) {unknown}; "
                f"snapshot has {len(known)} nodes"
            )


@dataclass(frozen=True)
class PacketFate:
    """The injector's verdict on one data packet."""

    deliver: bool = True
    copies: int = 1
    extra_delay: float = 0.0
    payload: Optional[bytes] = None  # replacement payload if corrupted


_DELIVER = PacketFate()
_DROP = PacketFate(deliver=False)


class FaultInjector:
    """Runtime realization of a :class:`FaultPlan`.

    Thread-safe; consulted by :meth:`Network.send` on every message.

    Args:
        plan: the faults to inject.  Domain crashes must already be
            resolved against a topology (:meth:`FaultPlan.resolve_domains`)
            for their *node* deaths to fire; their co-located
            coordinator kills fire regardless, via
            ``on_kill_coordinator``.
        on_crash: callback invoked exactly once per node death (the
            testbed uses it to stand the node's agent down).  Called
            from whichever thread happened to trip the trigger — keep
            it non-blocking.
        on_kill_coordinator: callback invoked exactly once per shard
            index listed in a due domain crash's ``coordinators`` (the
            multi-coordinator testbed arms the shard journal's
            ``kill_on_next_append``).  Same threading caveat.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        on_crash: Optional[Callable[[NodeId], None]] = None,
        on_kill_coordinator: Optional[Callable[[int], None]] = None,
    ):
        self.plan = plan or FaultPlan()
        self.on_crash = on_crash
        self.on_kill_coordinator = on_kill_coordinator
        self._lock = threading.Lock()
        self._crashed: Set[NodeId] = set()
        self._killed_shards: Set[int] = set()
        self._epoch: Optional[float] = None
        self._sent_bytes: Dict[NodeId, int] = {}
        self._recv_bytes: Dict[NodeId, int] = {}
        self._rngs: Dict[Tuple[NodeId, NodeId], "_LinkRng"] = {}
        self._pending_slowdowns = sorted(
            self.plan.slow_nics, key=lambda s: s.at_time
        )
        #: daemon deaths not yet fired — shared across daemon
        #: incarnations so a restarted daemon does not re-trip a fault
        #: its predecessor already consumed
        self.daemon_crashes_pending: List[DaemonCrashFault] = list(
            self.plan.daemon_crashes
        )
        #: telemetry: packets dropped / duplicated / corrupted / delayed
        self.stats = {"dropped": 0, "duplicated": 0, "corrupted": 0, "delayed": 0}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """(Re)start the fault clock; call at the start of a repair."""
        with self._lock:
            self._epoch = time.monotonic()

    def _now(self) -> float:
        if self._epoch is None:
            self.start()
        return time.monotonic() - self._epoch

    # -- crash handling --------------------------------------------------

    def is_crashed(self, node: NodeId) -> bool:
        with self._lock:
            return node in self._crashed

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        with self._lock:
            return set(self._crashed)

    def kill(self, node: NodeId) -> None:
        """Crash a node immediately (manual trigger)."""
        self._mark_crashed(node)

    def _mark_crashed(self, node: NodeId) -> None:
        with self._lock:
            if node in self._crashed:
                return
            self._crashed.add(node)
        if self.on_crash is not None:
            self.on_crash(node)

    def _fire_due_crashes(self) -> None:
        now = self._now()
        due = []
        due_shards = []
        with self._lock:
            for crash in self.plan.crashes:
                if crash.node in self._crashed:
                    continue
                if crash.at_time is not None and now >= crash.at_time:
                    due.append(crash.node)
            for domain in self.plan.domain_crashes:
                if now < domain.at_time:
                    continue
                for shard in domain.coordinators:
                    if shard not in self._killed_shards:
                        self._killed_shards.add(shard)
                        due_shards.append(shard)
        for node in due:
            self._mark_crashed(node)
        if self.on_kill_coordinator is not None:
            for shard in due_shards:
                self.on_kill_coordinator(shard)

    def _count_bytes(self, src: NodeId, dst: NodeId, nbytes: int) -> None:
        due = []
        with self._lock:
            sent = self._sent_bytes[src] = self._sent_bytes.get(src, 0) + nbytes
            recv = self._recv_bytes[dst] = self._recv_bytes.get(dst, 0) + nbytes
            for crash in self.plan.crashes:
                if crash.node in self._crashed:
                    continue
                if (
                    crash.after_sent_bytes is not None
                    and crash.node == src
                    and sent >= crash.after_sent_bytes
                ):
                    due.append(crash.node)
                if (
                    crash.after_recv_bytes is not None
                    and crash.node == dst
                    and recv >= crash.after_recv_bytes
                ):
                    due.append(crash.node)
        for node in due:
            self._mark_crashed(node)

    # -- network hooks ---------------------------------------------------

    def tick(self, network) -> None:
        """Apply time-based faults that are due (crashes, slow NICs)."""
        self._fire_due_crashes()
        now = self._now()
        with self._lock:
            due = [s for s in self._pending_slowdowns if s.at_time <= now]
            if not due:
                return
            self._pending_slowdowns = [
                s for s in self._pending_slowdowns if s.at_time > now
            ]
        for slow in due:
            network.scale_bandwidth(slow.node, slow.factor)

    def filter_message(self, src: NodeId, dst: NodeId) -> bool:
        """True if a control/data message may pass at all."""
        with self._lock:
            return src not in self._crashed and dst not in self._crashed

    def on_data_packet(self, src: NodeId, dst: NodeId, packet) -> PacketFate:
        """Decide the fate of one data packet; counts crash-trigger bytes.

        The byte counters charge the *attempted* send (the bytes left
        the NIC even if the packet is then lost), so byte-triggered
        crashes fire at a deterministic point in the stream.
        """
        nbytes = len(packet.payload)
        self._count_bytes(src, dst, nbytes)
        with self._lock:
            if src in self._crashed or dst in self._crashed:
                return _DROP
        faults = [f for f in self.plan.links if f.applies(src, dst)]
        if not faults:
            return _DELIVER
        rng = self._link_rng(src, dst)
        deliver = True
        copies = 1
        extra_delay = 0.0
        payload: Optional[bytes] = None
        for fault in faults:
            if fault.drop and rng.chance(fault.drop):
                deliver = False
            if fault.duplicate and rng.chance(fault.duplicate):
                copies = 2
            if fault.corrupt and rng.chance(fault.corrupt):
                data = bytearray(payload if payload is not None else packet.payload)
                if data:
                    data[rng.randrange(len(data))] ^= 0xFF
                payload = bytes(data)
            if fault.delay:
                extra_delay += fault.delay
        if not deliver:
            with self._lock:
                self.stats["dropped"] += 1
            return _DROP
        with self._lock:
            if copies > 1:
                self.stats["duplicated"] += 1
            if payload is not None:
                self.stats["corrupted"] += 1
            if extra_delay:
                self.stats["delayed"] += 1
        return PacketFate(
            deliver=True, copies=copies, extra_delay=extra_delay, payload=payload
        )

    def _link_rng(self, src: NodeId, dst: NodeId) -> "_LinkRng":
        with self._lock:
            rng = self._rngs.get((src, dst))
            if rng is None:
                rng = _LinkRng(self.plan.seed, src, dst)
                self._rngs[(src, dst)] = rng
            return rng


class _LinkRng:
    """Deterministic per-link random stream (seeded by seed/src/dst).

    Each link gets its own stream so the decision sequence on a link
    depends only on the packet order *on that link* — which per-chunk
    streaming makes deterministic — not on global thread interleaving.
    """

    def __init__(self, seed: int, src: NodeId, dst: NodeId):
        import random
        import zlib

        # str/tuple __hash__ is salted per process; crc32 is stable, so
        # a FaultPlan replays identically across runs.
        self._rng = random.Random(zlib.crc32(f"{seed}:{src}:{dst}".encode()))
        self._lock = threading.Lock()

    def chance(self, p: float) -> bool:
        with self._lock:
            return self._rng.random() < p

    def randrange(self, n: int) -> int:
        with self._lock:
            return self._rng.randrange(n)


def corrupted(packet, payload: bytes):
    """Return a copy of ``packet`` with its payload replaced."""
    return replace(packet, payload=payload)
