"""Shared-memory transport: same-host process-per-core repair.

:class:`ShmNetwork` is the third ``Transport`` backend: it moves the
same wire frames as :class:`~repro.net.tcp.TcpNetwork`, but through a
``multiprocessing.shared_memory`` ring buffer instead of a socket —
one inbound MPSC ring per process, written by every peer and drained
by a single reader thread.  Same-host repair layouts (one process per
core) skip the kernel socket path entirely: a send is one memcpy into
the ring, a receive is one memcpy out.

Topology model mirrors TCP: each process attaches its *local* node(s)
and registers every remote node as a peer (``node id -> ring name``).
:meth:`listen` creates this process's inbound ring and returns its
name; :meth:`add_peer` points a node id at the ring of the process
hosting it.  Peers attach lazily with backoff, so processes may start
in any order.  A node may be both local and a peer naming this
process's own ring ("loopback wiring") — the peer route wins and every
frame crosses shared memory, which is how the conformance suite
exercises the ring inside one process.

Ring layout (all little-endian)::

    [ head u64 | tail u64 | capacity u64 | frames... ]

``head``/``tail`` are monotonic byte cursors (write/read totals); each
frame is ``[length u32][frame bytes]`` with byte-granular wraparound.
Multiple writer *processes* serialize through an ``fcntl.flock`` on a
sidecar lockfile (plus a thread lock in-process, since flock is
per-open-file); the single reader needs no lock — ``head`` is
published after the frame bytes land, ``tail`` after they are copied
out.  A full ring blocks the sender (backpressure, like a full kernel
socket buffer) and drops the frame after ``connect_timeout`` seconds,
mirroring TCP's give-up-on-unreachable-peer behavior.

Frame validation matches the socket path: a frame failing header
checks counts ``net_frames_rejected_total`` and is skipped (ring
framing is length-prefixed, so the stream stays aligned); a
``DataPacket`` whose frame CRC validated is delivered with
``checksum=None`` so the runtime skips its redundant per-payload
crc32.  Bandwidth emulation and fault injection bind exactly as on
TCP: egress NIC on the sending side, ingress NIC at delivery, packet
drop/dup/corrupt/delay on the sender, crash black-holes on both.
"""

from __future__ import annotations

import os
import queue
import struct
import tempfile
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - stripped-down python
    shared_memory = None
    resource_tracker = None

from ..cluster.chunk import NodeId
from ..runtime.faults import FaultInjector
from ..runtime.messages import DataPacket
from ..runtime.throttle import sleep_until
from ..runtime.transport import Endpoint, Network
from dataclasses import replace

from .wire import HEADER, WireError, decode_body, encode_frame_parts, parse_header

#: ring header: head cursor, tail cursor, capacity (bytes each: u64)
_RING_HEADER = struct.Struct("<QQQ")
_LEN = struct.Struct("<I")

#: sender poll period while the ring is full (backpressure spin)
_FULL_POLL = 0.0002

#: reader poll period while the ring is empty
_EMPTY_POLL = 0.0005


def shm_available() -> bool:
    """True when this platform supports the shared-memory transport."""
    return shared_memory is not None and fcntl is not None


#: segment names created by *this* process; their tracker entries
#: belong to the creator's ``unlink`` and must not be untracked on a
#: same-process attach (loopback wiring), or the tracker complains
#: about a double unregister
_CREATED_HERE: Set[str] = set()


def _untrack(name: str) -> None:
    """Stop the resource tracker from reaping a segment we only attached.

    Python's ``SharedMemory`` registers every attach with the resource
    tracker (not just creates), so a peer process exiting would unlink
    rings it never owned.  Only the creator may unlink.
    """
    if resource_tracker is None:  # pragma: no cover
        return
    if name in _CREATED_HERE:
        return  # our own ring: the entry belongs to the creator handle
    try:
        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class ShmRing:
    """One MPSC frame ring in a named shared-memory segment.

    Args:
        name: segment name (``listen`` derives it; peers attach by it).
        capacity: data-region bytes when creating; ignored on attach
            (the segment header is authoritative).
        create: create the segment (reader side) or attach (writers).
    """

    def __init__(self, name: str, capacity: int = 8 << 20, create: bool = False):
        if not shm_available():  # pragma: no cover - non-POSIX platform
            raise RuntimeError("shared-memory transport needs POSIX shm+flock")
        self.name = name
        self.created = create
        if create:
            self.shm = shared_memory.SharedMemory(
                name=name, create=True, size=_RING_HEADER.size + capacity
            )
            _CREATED_HERE.add(name)
            _RING_HEADER.pack_into(self.shm.buf, 0, 0, 0, capacity)
            self.capacity = capacity
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            _untrack(name)
            _, _, self.capacity = _RING_HEADER.unpack_from(self.shm.buf, 0)
        self._lockpath = os.path.join(
            tempfile.gettempdir(), f"fpr-shm-{name.lstrip('/')}.lock"
        )
        self._lockfd = os.open(self._lockpath, os.O_CREAT | os.O_RDWR, 0o600)
        self._lock = threading.Lock()

    # -- cursors -------------------------------------------------------

    def _head(self) -> int:
        return struct.unpack_from("<Q", self.shm.buf, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self.shm.buf, 8)[0]

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self.shm.buf, 0, value)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self.shm.buf, 8, value)

    # -- byte copies with wraparound -----------------------------------

    def _put(self, cursor: int, data) -> int:
        view = memoryview(data)
        nbytes = len(view)
        base = _RING_HEADER.size
        pos = cursor % self.capacity
        first = min(nbytes, self.capacity - pos)
        self.shm.buf[base + pos : base + pos + first] = view[:first]
        if first < nbytes:
            self.shm.buf[base : base + nbytes - first] = view[first:]
        return cursor + nbytes

    def _get(self, cursor: int, nbytes: int) -> bytes:
        base = _RING_HEADER.size
        pos = cursor % self.capacity
        first = min(nbytes, self.capacity - pos)
        if first == nbytes:
            return bytes(self.shm.buf[base + pos : base + pos + nbytes])
        return bytes(self.shm.buf[base + pos : base + pos + first]) + bytes(
            self.shm.buf[base : base + nbytes - first]
        )

    # -- frame API -----------------------------------------------------

    def write(self, parts, timeout: float) -> bool:
        """Append one frame (an iovec of buffers); False on timeout.

        Blocks while the ring lacks space (receiver backpressure).
        Raises ``ValueError`` for a frame that can never fit.
        """
        total = sum(len(p) for p in parts)
        needed = _LEN.size + total
        if needed > self.capacity:
            raise ValueError(
                f"frame of {total} bytes exceeds ring capacity "
                f"{self.capacity}; raise ring_capacity"
            )
        deadline = time.monotonic() + timeout
        with self._lock:
            fcntl.flock(self._lockfd, fcntl.LOCK_EX)
            try:
                while self.capacity - (self._head() - self._tail()) < needed:
                    if time.monotonic() >= deadline:
                        return False
                    time.sleep(_FULL_POLL)
                cursor = self._put(self._head(), _LEN.pack(total))
                for part in parts:
                    cursor = self._put(cursor, part)
                # Publish after the bytes land: the reader never sees a
                # torn frame.
                self._set_head(cursor)
                return True
            finally:
                fcntl.flock(self._lockfd, fcntl.LOCK_UN)

    def read_frames(self, max_frames: int = 64) -> List[bytes]:
        """Pop up to ``max_frames`` complete frames (single consumer).

        ``tail`` is republished after each frame so blocked writers see
        space as soon as it exists.
        """
        frames: List[bytes] = []
        tail = self._tail()
        while len(frames) < max_frames and tail < self._head():
            (length,) = _LEN.unpack(self._get(tail, _LEN.size))
            frames.append(self._get(tail + _LEN.size, length))
            tail += _LEN.size + length
            self._set_tail(tail)
        return frames

    def close(self) -> None:
        try:
            os.close(self._lockfd)
        except OSError:  # pragma: no cover
            pass
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        if self.created:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            _CREATED_HERE.discard(self.name)
            try:
                os.unlink(self._lockpath)
            except OSError:  # pragma: no cover
                pass


class _ShmPeer:
    """One remote node: the name of its host process's inbound ring."""

    def __init__(self, node_id: NodeId, ring_name: str):
        self.node_id = node_id
        self.ring_name = ring_name
        self.ring: Optional[ShmRing] = None
        self.lock = threading.Lock()


class ShmNetwork:
    """Shared-memory transport with the in-memory ``Network`` interface.

    Args:
        faults: optional fault injector, consulted on every send (and,
            for crash black-holing, on every delivery).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; emits the
            shared ``net_*`` family.
        inbox_capacity: bound on local endpoints' inboxes (0 =
            unbounded); a full inbox stalls the reader thread, which
            fills the ring and blocks senders.
        ring_capacity: data bytes of this process's inbound ring.
        connect_timeout: seconds a send retries attaching a peer's ring
            (the peer process may not have created it yet) and waits
            out a full ring before the frame is dropped
            (``net_frames_dropped_total``).
    """

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        metrics=None,
        inbox_capacity: int = 0,
        ring_capacity: int = 8 << 20,
        connect_timeout: float = 30.0,
    ):
        self._inner = Network(
            faults=faults, metrics=metrics, inbox_capacity=inbox_capacity
        )
        self.metrics = metrics
        self.net = self._inner.net
        self.ring_capacity = ring_capacity
        self.connect_timeout = connect_timeout
        self._peers: Dict[NodeId, _ShmPeer] = {}
        self._detached_peers: Set[NodeId] = set()
        self._lock = threading.Lock()
        self._shm_bytes = 0
        self._ring: Optional[ShmRing] = None
        self._reader: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # -- Transport interface (delegated local topology) ----------------

    @property
    def arbiter(self):
        """QoS policy shared with the local fabric (see :class:`Network`)."""
        return self._inner.arbiter

    @arbiter.setter
    def arbiter(self, arbiter) -> None:
        self._inner.arbiter = arbiter

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self._inner.faults

    @faults.setter
    def faults(self, injector: Optional[FaultInjector]) -> None:
        self._inner.faults = injector

    @property
    def bytes_transferred(self) -> int:
        """Throttled payload bytes moved (local + through rings)."""
        with self._lock:
            return self._inner.bytes_transferred + self._shm_bytes

    def attach(
        self,
        node_id: NodeId,
        bandwidth: Optional[float],
        stop: Optional[threading.Event] = None,
    ) -> Endpoint:
        """Register a node hosted by *this* process."""
        return self._inner.attach(node_id, bandwidth, stop=stop)

    def detach(self, node_id: NodeId) -> Optional[Endpoint]:
        """Remove a node from the topology (local endpoint, peer or both)."""
        endpoint: Optional[Endpoint] = None
        known = False
        if node_id in self._inner._endpoints:
            endpoint = self._inner.detach(node_id)
            known = True
        peer = self._peers.pop(node_id, None)
        if peer is not None:
            known = True
            self._detached_peers.add(node_id)
            if peer.ring is not None:
                peer.ring.close()
        if not known:
            raise KeyError(f"node {node_id} not attached")
        return endpoint

    def endpoint(self, node_id: NodeId) -> Endpoint:
        """The *local* endpoint of a node hosted by this process."""
        return self._inner.endpoint(node_id)

    def node_ids(self) -> List[NodeId]:
        """Every node this process can reach: local endpoints + peers."""
        return sorted(set(self._inner.node_ids()) | set(self._peers))

    def scale_bandwidth(self, node_id: NodeId, factor: float) -> None:
        """Degrade a *local* node's NIC rates (slow-NIC fault)."""
        if node_id not in self._inner._endpoints:
            return
        self._inner.scale_bandwidth(node_id, factor)

    # -- peer wiring ---------------------------------------------------

    def listen(self, name: Optional[str] = None) -> str:
        """Create this process's inbound ring; returns its name.

        The returned name is what remote processes pass to
        :meth:`add_peer` for every node hosted here.
        """
        if self._ring is not None:
            raise RuntimeError("already listening")
        if self._closed:
            raise RuntimeError("ShmNetwork is closed")
        if name is None:
            name = f"fpr-{os.getpid()}-{id(self) & 0xFFFFFF:06x}"
        self._ring = ShmRing(name, capacity=self.ring_capacity, create=True)
        self._reader = threading.Thread(
            target=self._reader_loop, name="shm-network-reader", daemon=True
        )
        self._reader.start()
        return name

    def add_peer(self, node_id: NodeId, ring_name: str) -> None:
        """Register a remote node reachable via ``ring_name``.

        Attachment is lazy: the ring is opened on the first frame and
        retried with backoff, so peers may be registered before the
        remote process has created its ring.
        """
        if node_id in self._peers:
            raise ValueError(f"peer {node_id} already registered")
        self._peers[node_id] = _ShmPeer(node_id, ring_name)
        self._detached_peers.discard(node_id)

    def peers(self) -> Dict[NodeId, str]:
        """Registered remote nodes and their ring names."""
        return {p.node_id: p.ring_name for p in self._peers.values()}

    def refresh_peer(self, node_id: NodeId) -> None:
        """Drop a cached ring attachment; the next send re-opens by name.

        Transient peer processes (one-shot gateway clients) unlink and
        re-create their inbound ring on every run.  A mapping cached
        from the previous incarnation still accepts writes — into dead
        memory — so frames vanish without an error.  Unknown peers are
        ignored.
        """
        peer = self._peers.get(node_id)
        if peer is None:
            return
        with peer.lock:
            if peer.ring is not None:
                peer.ring.close()
                peer.ring = None

    # -- send ----------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message) -> None:
        """Deliver a message; peers through rings, local nodes in memory.

        Same contract as :meth:`Network.send`: DataPackets pay for the
        sender's emulated NIC and exert backpressure; crashed, closed
        or detached destinations swallow traffic silently; unknown
        destinations raise ``KeyError``.
        """
        peer = self._peers.get(dst)
        if peer is None:
            if dst in self._detached_peers and dst not in self._inner._endpoints:
                return  # dead remote peer: drop silently
            self._inner.send(src, dst, message)
            return
        faults = self.faults
        if faults is not None:
            faults.tick(self)
        sender = self._inner.endpoint(src)
        if sender.closed:
            return
        if isinstance(message, DataPacket):
            if src == dst:
                raise ValueError("loopback data transfer is not modeled")
            copies = 1
            extra_delay = 0.0
            corrupt_payload = None
            if faults is not None:
                fate = faults.on_data_packet(src, dst, message)
                if not fate.deliver:
                    return
                copies = fate.copies
                extra_delay = fate.extra_delay
                corrupt_payload = fate.payload
            nbytes = len(message.payload)
            head, payload = encode_frame_parts(src, dst, message)
            if corrupt_payload is not None:
                # In-flight corruption: frame keeps the original CRC,
                # so the receiver's frame CRC rejects it (same model
                # as the TCP path).
                payload = corrupt_payload
            arbiter = self.arbiter
            for _ in range(copies):
                if arbiter is not None:
                    arbiter.admit(message, nbytes, stop=sender.nic_out.stop)
                deadline = sender.nic_out.reserve(nbytes)
                sleep_until(deadline + extra_delay, stop=sender.nic_out.stop)
                with self._lock:
                    self._shm_bytes += nbytes
                self.net.bytes_sent.inc(nbytes, node=src)
                self._enqueue(peer, src, (head, payload))
            return
        if faults is not None and not faults.filter_message(src, dst):
            return  # a crashed node neither sends nor receives
        self._enqueue(peer, src, encode_frame_parts(src, dst, message))

    def _enqueue(
        self, peer: _ShmPeer, src: NodeId, parts: Tuple[bytes, bytes]
    ) -> None:
        """Write one frame into a peer's ring; blocks while it is full."""
        if self._closed:
            self.net.frames_dropped.inc(node=peer.node_id)
            return
        ring = self._peer_ring(peer)
        if ring is None:
            self.net.frames_dropped.inc(node=peer.node_id)
            return
        try:
            delivered = ring.write(parts, timeout=self.connect_timeout)
        except ValueError:
            raise
        except OSError:
            delivered = False  # ring torn down underneath us
        if delivered:
            self.net.frames_sent.inc(node=src)
        else:
            self.net.frames_dropped.inc(node=peer.node_id)

    def _peer_ring(self, peer: _ShmPeer) -> Optional[ShmRing]:
        """Attach a peer's ring lazily, with backoff (like a TCP dial)."""
        ring = peer.ring
        if ring is not None:
            return ring
        with peer.lock:
            if peer.ring is not None:
                return peer.ring
            deadline = time.monotonic() + self.connect_timeout
            delay = 0.005
            while True:
                try:
                    peer.ring = ShmRing(peer.ring_name)
                    self.net.connections.inc(direction="out")
                    return peer.ring
                except FileNotFoundError:
                    if self._closed or time.monotonic() + delay >= deadline:
                        return None
                    time.sleep(delay)
                    delay = min(delay * 2, 0.2)

    # -- receive -------------------------------------------------------

    def _reader_loop(self) -> None:
        ring = self._ring
        while not self._stop.is_set():
            frames = ring.read_frames()
            if not frames:
                self._stop.wait(_EMPTY_POLL)
                continue
            for frame in frames:
                self._handle_frame(frame)

    def _handle_frame(self, frame: bytes) -> None:
        if len(frame) < HEADER.size:
            self.net.frames_rejected.inc(reason="header")
            return
        try:
            code, _epoch, meta_len, payload_len, crc = parse_header(
                frame[: HEADER.size]
            )
        except WireError:
            # Ring framing is length-prefixed, so unlike a TCP byte
            # stream a bad frame cannot desynchronize the rest: skip it.
            self.net.frames_rejected.inc(reason="header")
            return
        if len(frame) != HEADER.size + meta_len + payload_len:
            self.net.frames_rejected.inc(reason="truncated")
            return
        view = memoryview(frame)
        try:
            src, dst, message = decode_body(
                code,
                crc,
                view[HEADER.size : HEADER.size + meta_len],
                view[HEADER.size + meta_len :],
            )
        except WireError:
            self.net.frames_rejected.inc(reason="body")
            return
        if isinstance(message, DataPacket) and message.checksum is not None:
            # Frame CRC just validated the payload bytes: skip the
            # runtime's redundant per-payload crc32 (satellite of the
            # same contract the TCP receive path honors).
            message = replace(message, checksum=None)
        self._deliver(src, dst, message)

    def _deliver(self, src: NodeId, dst: NodeId, message) -> None:
        faults = self.faults
        if faults is not None and not faults.filter_message(src, dst):
            return  # locally known crashed node: black hole
        try:
            endpoint = self._inner.endpoint(dst)
        except KeyError:
            self.net.frames_dropped.inc(node=dst)
            return  # misrouted or detached-here destination
        if endpoint.closed:
            return
        if isinstance(message, DataPacket):
            nbytes = len(message.payload)
            deadline = endpoint.nic_in.reserve(nbytes)
            sleep_until(deadline, stop=endpoint.nic_in.stop)
            self.net.bytes_received.inc(nbytes, node=dst)
        while True:
            try:
                endpoint.inbox.put_nowait(message)
                break
            except queue.Full:
                # Bounded inbox: stall the reader; the ring then fills
                # and blocks remote senders (end-to-end backpressure).
                if self._stop.wait(0.005):
                    return
        self.net.frames_received.inc(node=dst)
        self.net.inbox_depth.set(endpoint.inbox.qsize(), node=dst)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Tear the ring layer down (idempotent).

        Local endpoints stay attached: a closed ShmNetwork degrades to
        the in-memory fabric, like a closed TcpNetwork.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._reader is not None:
            self._reader.join(timeout=10)
            self._reader = None
        for peer in self._peers.values():
            if peer.ring is not None:
                peer.ring.close()
                peer.ring = None
        if self._ring is not None:
            self._ring.close()
            self._ring = None
