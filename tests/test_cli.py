"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, run_experiment


class TestFigures:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig15" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig2_runs_via_shorthand(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2(a)" in out
        assert "predictive" in out

    def test_fig3_with_runs_flag_ignored_gracefully(self, capsys):
        # fig3 takes no runs parameter; the flag must not crash it.
        assert main(["fig3", "--runs", "2"]) == 0
        assert "Fig 3(b)" in capsys.readouterr().out

    def test_run_experiment_reports_timing(self):
        assert "completed in" in run_experiment("fig2", runs=None)

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestSnapshotAndPlan:
    def test_snapshot_then_plan(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        assert (
            main(
                [
                    "snapshot",
                    "--nodes",
                    "16",
                    "--stripes",
                    "40",
                    "--code",
                    "rs(5,3)",
                    "--seed",
                    "1",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        assert path.exists()
        document = json.loads(path.read_text())
        assert len(document["stripes"]) == 40
        capsys.readouterr()

        assert (
            main(["plan", "--snapshot", str(path), "--stf", "0"]) == 0
        )
        out = capsys.readouterr().out
        assert "fastpr" in out
        assert "migration" in out
        assert "s/chunk" in out

    def test_plan_hot_standby(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        main(
            [
                "snapshot",
                "--nodes",
                "16",
                "--stripes",
                "30",
                "--code",
                "rs(5,3)",
                "--seed",
                "2",
                "-o",
                str(path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "plan",
                    "--snapshot",
                    str(path),
                    "--stf",
                    "1",
                    "--scenario",
                    "hot_standby",
                ]
            )
            == 0
        )

    def test_plan_rejects_failed_node(self, tmp_path, capsys):
        from repro.cluster import StorageCluster
        from repro.cluster import snapshot as snapshot_mod

        cluster = StorageCluster.random(10, 10, 5, 3, seed=3)
        # Node 9 stores chunks; fail a chunk-free standby-less node by
        # draining it first.
        for chunk in cluster.chunks_on_node(9):
            dest = cluster.eligible_destinations(chunk.stripe_id, exclude={9})[0]
            cluster.relocate_chunk(chunk.stripe_id, chunk.chunk_index, dest)
        cluster.decommission(9)
        path = tmp_path / "c.json"
        snapshot_mod.save(cluster, path)
        assert main(["plan", "--snapshot", str(path), "--stf", "9"]) == 2
        assert "already failed" in capsys.readouterr().err


class TestRepairAndScrub:
    def snapshot(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        assert (
            main(
                [
                    "snapshot",
                    "--nodes",
                    "12",
                    "--stripes",
                    "8",
                    "--code",
                    "rs(5,3)",
                    "--hot-standby",
                    "2",
                    "--seed",
                    "7",
                    "--chunk-size",
                    "65536",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return path

    def test_repair_executes_plan_on_testbed(self, tmp_path, capsys):
        path = self.snapshot(tmp_path, capsys)
        assert main(["repair", "--snapshot", str(path), "--stf", "0"]) == 0
        out = capsys.readouterr().out
        assert "coordinator_restarts=0" in out
        assert "0 corrupt" in out
        assert "verified byte-identical" in out

    def test_repair_survives_coordinator_crash(self, tmp_path, capsys):
        path = self.snapshot(tmp_path, capsys)
        faults = tmp_path / "faults.json"
        faults.write_text(
            json.dumps({"coordinator_crashes": [{"after_round": 0}]})
        )
        journal = tmp_path / "repair.journal"
        assert (
            main(
                [
                    "repair",
                    "--snapshot",
                    str(path),
                    "--stf",
                    "0",
                    "--fault-plan",
                    str(faults),
                    "--journal",
                    str(journal),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recovering from journal" in out
        assert "coordinator_restarts=1" in out
        assert "verified byte-identical" in out
        assert journal.exists()

    def test_repair_rejects_failed_node(self, tmp_path, capsys):
        from repro.cluster import StorageCluster
        from repro.cluster import snapshot as snapshot_mod

        cluster = StorageCluster.random(10, 10, 5, 3, seed=3)
        for chunk in cluster.chunks_on_node(9):
            dest = cluster.eligible_destinations(chunk.stripe_id, exclude={9})[0]
            cluster.relocate_chunk(chunk.stripe_id, chunk.chunk_index, dest)
        cluster.decommission(9)
        path = tmp_path / "c.json"
        snapshot_mod.save(cluster, path)
        assert main(["repair", "--snapshot", str(path), "--stf", "9"]) == 2
        assert "already failed" in capsys.readouterr().err

    def test_repair_verification_failure_exits_nonzero(
        self, tmp_path, capsys, monkeypatch
    ):
        # Satellite: a post-repair mismatch must surface as exit 1 with
        # every mismatching chunk id on stderr, never a silent success.
        from repro.runtime.testbed import (
            ChunkMismatch,
            EmulatedTestbed,
            mismatch_error,
        )

        path = self.snapshot(tmp_path, capsys)
        mismatches = [
            ChunkMismatch(3, 1, 9, "bytes differ"),
            ChunkMismatch(5, 0, 4, "missing"),
        ]

        def fail_verify(self, plan, result=None):
            raise mismatch_error(mismatches)

        monkeypatch.setattr(EmulatedTestbed, "verify_plan", fail_verify)
        assert main(["repair", "--snapshot", str(path), "--stf", "0"]) == 1
        captured = capsys.readouterr()
        assert "verified byte-identical" not in captured.out
        assert "post-repair verification failed" in captured.err
        assert "mismatching chunk: stripe 3 index 1 at node 9" in captured.err
        assert "mismatching chunk: stripe 5 index 0 at node 4" in captured.err

    def test_scrub_repairs_injected_corruption(self, tmp_path, capsys):
        path = self.snapshot(tmp_path, capsys)
        assert (
            main(["scrub", "--snapshot", str(path), "--corrupt", "3"]) == 0
        )
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert "repaired in place" in out
        assert "store is clean" in out

    def test_scrub_clean_store_reports_clean(self, tmp_path, capsys):
        path = self.snapshot(tmp_path, capsys)
        assert main(["scrub", "--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out
        assert "store is clean" in out


class TestFleetAndPredict:
    def test_fleet_then_predict(self, tmp_path, capsys):
        path = tmp_path / "fleet.csv"
        assert (
            main(
                [
                    "fleet",
                    "--disks",
                    "120",
                    "--days",
                    "90",
                    "--afr",
                    "0.4",
                    "--seed",
                    "4",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "120 disks" in out
        assert (
            main(["predict", "--fleet", str(path), "--seed", "0"]) == 0
        )
        out = capsys.readouterr().out
        assert "precision=" in out
        assert "recall=" in out

    def test_predict_cart_and_threshold_models(self, tmp_path, capsys):
        path = tmp_path / "fleet.csv"
        main(
            [
                "fleet",
                "--disks",
                "120",
                "--days",
                "90",
                "--afr",
                "0.4",
                "--seed",
                "5",
                "-o",
                str(path),
            ]
        )
        capsys.readouterr()
        for model in ("cart", "threshold"):
            assert (
                main(["predict", "--fleet", str(path), "--model", model]) == 0
            )
            assert f"model: {model}" in capsys.readouterr().out

    def test_predict_rejects_tiny_fleet(self, tmp_path, capsys):
        from repro.failure import SmartTraceGenerator, save_traces

        path = tmp_path / "tiny.csv"
        save_traces(SmartTraceGenerator(1, seed=1).generate(), path)
        assert main(["predict", "--fleet", str(path)]) == 2


class TestDaemonAndLifetime:
    def setup_inputs(self, tmp_path, capsys):
        snapshot = tmp_path / "cluster.json"
        main(
            [
                "snapshot", "--nodes", "12", "--stripes", "8",
                "--code", "rs(5,3)", "--seed", "7",
                "--chunk-size", "65536", "-o", str(snapshot),
            ]
        )
        fleet = tmp_path / "fleet.csv"
        main(
            [
                "fleet", "--disks", "12", "--days", "60",
                "--afr", "0.9", "--seed", "21", "-o", str(fleet),
            ]
        )
        capsys.readouterr()
        return snapshot, fleet

    def test_daemon_runs_to_horizon(self, tmp_path, capsys):
        snapshot, fleet = self.setup_inputs(tmp_path, capsys)
        out_path = tmp_path / "daemon.json"
        assert (
            main(
                [
                    "daemon", "--snapshot", str(snapshot),
                    "--fleet", str(fleet), "--seed", "3",
                    "--workdir", str(tmp_path / "bed"),
                    "--scrub-interval", "20", "-o", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "daemon observed 60 days" in out
        assert "0 queued" in out
        document = json.loads(out_path.read_text())
        assert document["days_observed"] == 60
        assert document["repairs_completed"] > 0
        assert document["queue_depth"] == 0
        assert document["restarts"] == 0
        assert (tmp_path / "bed" / "daemon.journal").exists()

    def test_daemon_survives_injected_daemon_crash(self, tmp_path, capsys):
        snapshot, fleet = self.setup_inputs(tmp_path, capsys)
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({"daemon_crashes": [{"after_tasks": 1}]}))
        out_path = tmp_path / "daemon.json"
        assert (
            main(
                [
                    "daemon", "--snapshot", str(snapshot),
                    "--fleet", str(fleet), "--seed", "3",
                    "--workdir", str(tmp_path / "bed"),
                    "--fault-plan", str(faults), "-o", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "restarting from journal" in out
        document = json.loads(out_path.read_text())
        assert document["restarts"] == 1
        assert document["queue_depth"] == 0

    def test_daemon_metrics_out(self, tmp_path, capsys):
        snapshot, fleet = self.setup_inputs(tmp_path, capsys)
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "daemon", "--snapshot", str(snapshot),
                    "--fleet", str(fleet), "--seed", "3",
                    "--workdir", str(tmp_path / "bed"),
                    "--max-days", "30", "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        names = {m["name"] for m in json.loads(metrics.read_text())["metrics"]}
        assert "daemon_queue_depth" in names
        assert "daemon_tasks_total" in names

    def test_lifetime_study(self, tmp_path, capsys):
        out_path = tmp_path / "life.json"
        assert (
            main(
                [
                    "lifetime", "--trials", "4", "--years", "0.5",
                    "--disks", "12", "--stripes", "20",
                    "--code", "rs(5,3)", "--process", "both",
                    "--afr", "0.3", "--seed", "2", "-o", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "weibull" in out and "trace-replay" in out
        assert "P(loss)=" in out
        document = json.loads(out_path.read_text())
        assert document["trials"] == 4
        assert [p["process"] for p in document["processes"]] == [
            "weibull", "trace-replay",
        ]
        for process in document["processes"]:
            assert process["predictive"]["trials"] == 4
            assert process["reactive"]["trials"] == 4


class TestParser:
    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures", "fig8"])
        assert args.experiment == "fig8"
        assert args.runs is None

    def test_plan_requires_snapshot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--stf", "1"])
