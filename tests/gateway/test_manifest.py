"""Object manifests: schema round-trip and the durable catalog."""

import json

import pytest

from repro.gateway import (
    MANIFEST_SCHEMA,
    ManifestError,
    ManifestStore,
    ObjectManifest,
    StripeRef,
    digest,
)


def sample(key="videos/cat.mp4"):
    return ObjectManifest(
        key=key,
        size=1_000_000,
        chunk_size=65536,
        n=9,
        k=6,
        sha256=digest(b"not the real bytes"),
        stripes=(
            StripeRef(stripe_id=12, placement=(0, 1, 2, 3, 4, 5, 6, 7, 8)),
            StripeRef(stripe_id=13, placement=(3, 4, 5, 6, 7, 8, 9, 10, 11)),
        ),
    )


class TestManifestSchema:
    def test_round_trip_preserves_everything(self):
        manifest = sample()
        clone = ObjectManifest.from_dict(manifest.to_dict())
        assert clone == manifest
        assert clone.scheme == "rs(9,6)"
        assert clone.stripe_ids == (12, 13)

    def test_round_trips_through_json(self):
        manifest = sample()
        wire = json.dumps(manifest.to_dict(), sort_keys=True)
        assert ObjectManifest.from_dict(json.loads(wire)) == manifest

    def test_unknown_keys_rejected(self):
        document = sample().to_dict()
        document["compression"] = "zstd"
        with pytest.raises(ManifestError):
            ObjectManifest.from_dict(document)

    def test_missing_required_field_rejected(self):
        document = sample().to_dict()
        del document["sha256"]
        with pytest.raises(ManifestError):
            ObjectManifest.from_dict(document)

    def test_wrong_schema_version_rejected(self):
        document = sample().to_dict()
        document["version"] = MANIFEST_SCHEMA.version + 1
        with pytest.raises(ManifestError):
            ObjectManifest.from_dict(document)


class TestManifestStore:
    def test_memory_store_crud(self):
        store = ManifestStore()
        manifest = sample()
        assert not store.has(manifest.key)
        store.save(manifest)
        assert store.has(manifest.key)
        assert store.load(manifest.key) == manifest
        assert store.keys() == [manifest.key]
        store.delete(manifest.key)
        assert not store.has(manifest.key)
        with pytest.raises(ManifestError):
            store.load(manifest.key)

    def test_delete_missing_key_is_silent(self):
        ManifestStore().delete("never/stored")

    def test_persists_and_reloads_from_directory(self, tmp_path):
        first = sample("a/first")
        second = sample("b/second")
        store = ManifestStore(tmp_path)
        store.save(first)
        store.save(second)
        # keys with '/' land in flat hash-named files, not subdirs
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 2

        reloaded = ManifestStore(tmp_path)
        assert reloaded.keys() == ["a/first", "b/second"]
        assert reloaded.load("a/first") == first

        reloaded.delete("a/first")
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert ManifestStore(tmp_path).keys() == ["b/second"]

    def test_save_overwrites_in_place(self, tmp_path):
        store = ManifestStore(tmp_path)
        store.save(sample())
        bigger = ObjectManifest(
            key=sample().key,
            size=2_000_000,
            chunk_size=65536,
            n=9,
            k=6,
            sha256=digest(b"v2"),
            stripes=sample().stripes,
        )
        store.save(bigger)
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert ManifestStore(tmp_path).load(sample().key).size == 2_000_000
