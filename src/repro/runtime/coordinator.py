"""The FastPR coordinator (Section V).

Deployed alongside the NameNode in the paper; here it drives the
emulated testbed.  Per repair round it sends every destination a
:class:`ReceiveCommand` (with GF recovery coefficients) and every
source a :class:`SendCommand`, then blocks until all repaired chunks
are acknowledged before starting the next round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.plan import ChunkRepairAction, RepairMethod, RepairPlan
from ..ec.codec import ErasureCodec
from .messages import (
    ActionKey,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
)
from .transport import Network

#: conventional coordinator node id (never a storage node)
COORDINATOR_ID: NodeId = -1


@dataclass
class RuntimeResult:
    """Wall-clock outcome of executing a plan on the emulated testbed."""

    total_time: float
    round_times: List[float] = field(default_factory=list)
    chunks_repaired: int = 0
    bytes_transferred: int = 0

    @property
    def time_per_chunk(self) -> float:
        if self.chunks_repaired == 0:
            return 0.0
        return self.total_time / self.chunks_repaired


class Coordinator:
    """Issues repair commands round by round and awaits ACKs.

    Args:
        network: the shared transport (the coordinator attaches itself
            under :data:`COORDINATOR_ID` with unthrottled control links).
        cluster: metadata for stripe lookups.
        codec: the erasure codec of the stripes (uniform).
        packet_size: packet granularity for all transfers.
    """

    def __init__(
        self,
        network: Network,
        cluster: StorageCluster,
        codec: ErasureCodec,
        packet_size: int,
    ):
        self.network = network
        self.cluster = cluster
        self.codec = codec
        self.packet_size = packet_size
        self._endpoint = network.attach(COORDINATOR_ID, None)

    def execute(
        self, plan: RepairPlan, packet_size: Optional[int] = None
    ) -> RuntimeResult:
        """Run the plan to completion; returns wall-clock timings.

        Args:
            plan: the repair plan.
            packet_size: per-run override of the transfer granularity
                (Experiment B.1 varies it without rebuilding the testbed).
        """
        packet = packet_size or self.packet_size
        transferred_before = self.network.bytes_transferred
        round_times: List[float] = []
        start = time.monotonic()
        for round_ in plan.rounds:
            round_start = time.monotonic()
            expected = self._issue_round(
                plan.stf_node, list(round_.actions()), packet
            )
            self._await_acks(expected)
            round_times.append(time.monotonic() - round_start)
        total = time.monotonic() - start
        return RuntimeResult(
            total_time=total,
            round_times=round_times,
            chunks_repaired=plan.total_chunks,
            bytes_transferred=self.network.bytes_transferred - transferred_before,
        )

    # ------------------------------------------------------------------

    def _issue_round(
        self,
        stf_node: NodeId,
        actions: List[ChunkRepairAction],
        packet_size: int,
    ) -> Set[ActionKey]:
        expected: Set[ActionKey] = set()
        chunk_size = self.cluster.chunk_size
        for action in actions:
            if (
                action.method is RepairMethod.RECONSTRUCTION
                and action.pipelined
            ):
                self._issue_pipelined(action, chunk_size, packet_size)
            else:
                self._issue_star(action, chunk_size, packet_size)
            expected.add((action.stripe_id, action.chunk_index))
        return expected

    def _issue_star(
        self, action: ChunkRepairAction, chunk_size: int, packet_size: int
    ) -> None:
        """Conventional fan-in: every source sends to the destination."""
        sources = self._source_coefficients(action)
        receive = ReceiveCommand(
            stripe_id=action.stripe_id,
            chunk_index=action.chunk_index,
            chunk_size=chunk_size,
            packet_size=packet_size,
            sources=sources,
        )
        # The ReceiveCommand must precede any data packet; per-inbox
        # FIFO plus issuing it first guarantees that.
        self.network.send(COORDINATOR_ID, action.destination, receive)
        for source in action.sources:
            self.network.send(
                COORDINATOR_ID,
                source,
                SendCommand(
                    stripe_id=action.stripe_id,
                    chunk_index=action.chunk_index,
                    destination=action.destination,
                    packet_size=packet_size,
                ),
            )

    def _issue_pipelined(
        self, action: ChunkRepairAction, chunk_size: int, packet_size: int
    ) -> None:
        """Repair pipelining: helpers chain partial sums to the destination."""
        coeffs = self._source_coefficients(action)
        chain = list(action.sources)
        last = chain[-1]
        self.network.send(
            COORDINATOR_ID,
            action.destination,
            ReceiveCommand(
                stripe_id=action.stripe_id,
                chunk_index=action.chunk_index,
                chunk_size=chunk_size,
                packet_size=packet_size,
                sources={last: 1},
            ),
        )
        # Register stages downstream-first so each hop (usually) exists
        # before its upstream starts; late packets buffer regardless.
        for i in reversed(range(len(chain))):
            node = chain[i]
            next_hop = action.destination if i == len(chain) - 1 else chain[i + 1]
            self.network.send(
                COORDINATOR_ID,
                node,
                RelayCommand(
                    stripe_id=action.stripe_id,
                    chunk_index=action.chunk_index,
                    destination=next_hop,
                    packet_size=packet_size,
                    chunk_size=chunk_size,
                    coeff=coeffs[node],
                    first=(i == 0),
                    upstream=chain[i - 1] if i > 0 else -1,
                ),
            )

    def _source_coefficients(
        self, action: ChunkRepairAction
    ) -> Dict[NodeId, int]:
        if action.method is RepairMethod.MIGRATION:
            return {action.sources[0]: 1}
        stripe = self.cluster.stripe(action.stripe_id)
        helper_chunks = [stripe.chunk_index_on(node) for node in action.sources]
        coeffs = self.codec.recovery_coefficients(
            action.chunk_index, helper_chunks
        )
        return {
            node: coeffs[stripe.chunk_index_on(node)] for node in action.sources
        }

    def _await_acks(self, expected: Set[ActionKey]) -> None:
        pending = set(expected)
        while pending:
            message = self._endpoint.inbox.get(timeout=120)
            if isinstance(message, RepairAck):
                pending.discard(message.key)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"coordinator got unexpected {message!r}")
