"""One front door for executing a repair plan: :class:`RepairSession`.

Historically every execution flavor had its own entry point —
``EmulatedTestbed`` for in-process runs, ``run_tcp_repair`` /
``run_shm_repair`` for process-per-node runs, and
``run_tcp_multicoord_repair`` for sharded ones — and adding chained
(pipelined) repair would have meant a fourth.  :class:`RepairSession`
collapses them into a builder::

    from repro import RepairSession

    summary = RepairSession(
        cluster, codec, plan,
        transport="memory",        # or "tcp" / "shm"
        coordinators=1,            # > 1 shards the stripe space
        pipelining="chain",        # "off" keeps star-topology repair
        slices=8,                  # SlicePacket granularity per chunk
        seed=7,
    ).run()
    print(summary.total_time, summary.chunks_verified)

Pipelining is a *strategy flag*, not a separate code path: ``"chain"``
rewrites every reconstruction in the plan to stream partial sums
through an ordered helper chain (slowest links first — see
:func:`repro.core.scheduling.order_chain`) and, with ``slices > 0``,
carves each chunk into that many :class:`~repro.runtime.messages.\
SlicePacket` frames with per-slice completion reports.  Mid-stream
chain failures fall back to star-topology repair per action through
the coordinator's existing probe/heal/reissue machinery.

Unsupported combinations fail at *construction* time with a
:class:`ValueError` naming the conflict, so drivers (the CLI rejects
the same combos at parse time) never launch half a run first.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .cluster.cluster import StorageCluster
from .cluster.topology import RackTopology
from .core.plan import RepairPlan, RepairRound
from .ec.codec import ErasureCodec
from .obs.metrics import MetricsRegistry
from .obs.tracing import Tracer
from .runtime.config import DEFAULT_CONFIG, RuntimeConfig
from .runtime.faults import FaultPlan
from .runtime.journal import CoordinatorCrash

#: supported transports, pipelining modes (validated at construction)
TRANSPORTS = ("memory", "tcp", "shm")
PIPELINING_MODES = ("off", "chain")


@dataclass
class RepairSummary:
    """Uniform outcome of a :class:`RepairSession` run.

    Wraps whichever result type the underlying driver produced
    (``result`` keeps the raw :class:`~repro.runtime.coordinator.\
RuntimeResult` or :class:`~repro.runtime.multicoord.MultiRepairResult`
    for callers that need driver-specific detail).
    """

    transport: str
    coordinators: int
    pipelining: str
    slices: int
    total_time: float
    chunks_repaired: int
    chunks_verified: int
    bytes_transferred: int
    retries: int = 0
    replans: int = 0
    nacks: int = 0
    #: per-slice completions streamed back by destinations (chained)
    slices_completed: int = 0
    #: coordinator restarts (memory) or shard takeovers (sharded)
    restarts: int = 0
    round_times: List[float] = field(default_factory=list)
    dead_nodes: List[int] = field(default_factory=list)
    #: the driver-specific result object, untouched
    result: object = None
    #: post-repair scrub report (memory runs with ``scrub=True``)
    scrub_report: object = None

    @property
    def degraded(self) -> bool:
        """True if the run needed any fault handling to finish."""
        return bool(
            self.retries or self.replans or self.nacks or self.restarts
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the CLI's ``--output`` document body)."""
        return {
            "transport": self.transport,
            "coordinators": self.coordinators,
            "pipelining": self.pipelining,
            "slices": self.slices,
            "total_time_s": self.total_time,
            "round_times_s": list(self.round_times),
            "chunks_repaired": self.chunks_repaired,
            "chunks_verified": self.chunks_verified,
            "bytes_transferred": self.bytes_transferred,
            "retries": self.retries,
            "replans": self.replans,
            "nacks": self.nacks,
            "slices_completed": self.slices_completed,
            "restarts": self.restarts,
            "dead_nodes": list(self.dead_nodes),
        }


def apply_pipelining(plan: RepairPlan, pipelining: str) -> RepairPlan:
    """Return ``plan`` with every reconstruction's strategy rewritten.

    ``"chain"`` marks each reconstruction ``pipelined=True`` (chained
    partial-sum streaming); ``"off"`` clears the flag.  Migrations are
    untouched — they are single-source copies with nothing to chain.
    The input plan is never mutated (actions are frozen dataclasses).
    """
    if pipelining not in PIPELINING_MODES:
        raise ValueError(
            f"pipelining must be one of {PIPELINING_MODES}, "
            f"got {pipelining!r}"
        )
    chained = pipelining == "chain"
    rounds = [
        RepairRound(
            index=r.index,
            reconstructions=[
                replace(a, pipelined=chained) for a in r.reconstructions
            ],
            migrations=list(r.migrations),
        )
        for r in plan.rounds
    ]
    return dataclasses.replace(plan, rounds=rounds)


class RepairSession:
    """Builder for one repair execution; ``.run()`` does the work.

    Args:
        cluster: the cluster snapshot the plan targets.
        codec: erasure codec of the stripes.
        plan: the repair plan to execute (left unmodified; pipelining
            rewrites act on a copy).
        transport: ``"memory"`` (in-process emulated fabric),
            ``"tcp"`` (process-per-node over sockets, needs ``peers``
            and ``workdir``) or ``"shm"`` (process-per-node over
            shared-memory rings, needs ``workdir``).
        coordinators: shard the stripe space across N coordinators
            (``"shm"`` supports exactly 1).
        pipelining: ``"off"`` = star-topology repair, ``"chain"`` =
            chained partial-sum streaming through ordered helper
            chains.
        slices: with ``pipelining="chain"``, carve each chunk into
            this many :class:`~repro.runtime.messages.SlicePacket`
            slices (0 keeps packet-granular chaining).
        peers: (tcp) ``{node_id: (host, port)}`` map or a
            ``node=host:port,...`` / ``@file.json`` spec string.
        workdir: (tcp/shm) shared directory with each agent's chunk
            store; also used for byte-identical verification.
        seed: deterministic data-set seed (must match the agents').
        config: runtime tuning; ``pipeline_slices`` is overridden from
            ``slices`` when pipelining is on.
        packet_size: transfer granularity (default chunk/16, >= 4 KiB).
        journal_path: write-ahead journal (single coordinator).
        journal_dir: journal directory for sharded runs.
        faults: declarative fault plan to inject.
        topology: rack topology (resolves domain crashes).
        metrics, tracer: observability sinks shared with the driver.
        resume: (tcp/shm) recover from ``journal_path`` instead of
            starting fresh.
        agent_timeout: (tcp/shm) seconds to wait for agents to answer.
        max_restarts: (memory) bound on coordinator crash-recovery
            cycles before the injected crash is re-raised.
        scrub: (memory) run a post-repair checksum scrub of every
            store; the report lands in ``RepairSummary.scrub_report``.
        log: optional callback for human-readable progress events
            (coordinator restarts, shard takeovers); ``None`` is
            silent.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        codec: ErasureCodec,
        plan: RepairPlan,
        transport: str = "memory",
        coordinators: int = 1,
        pipelining: str = "off",
        slices: int = 0,
        peers: Union[None, str, Dict[int, Tuple[str, int]]] = None,
        workdir: Union[None, str, Path] = None,
        seed: Optional[int] = None,
        config: Optional[RuntimeConfig] = None,
        packet_size: Optional[int] = None,
        journal_path: Union[None, str, Path] = None,
        journal_dir: Union[None, str, Path] = None,
        faults: Optional[FaultPlan] = None,
        topology: Optional[RackTopology] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        resume: bool = False,
        agent_timeout: float = 60.0,
        max_restarts: int = 8,
        scrub: bool = False,
        arbiter=None,
        log=None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if pipelining not in PIPELINING_MODES:
            raise ValueError(
                f"pipelining must be one of {PIPELINING_MODES}, "
                f"got {pipelining!r}"
            )
        if slices < 0:
            raise ValueError("slices must be non-negative")
        if slices > 0 and pipelining != "chain":
            raise ValueError(
                "slices > 0 requires pipelining='chain' (slice streaming "
                "is a property of chained repair)"
            )
        if coordinators < 1:
            raise ValueError("coordinators must be >= 1")
        if transport == "shm" and coordinators > 1:
            raise ValueError(
                "transport='shm' runs a single coordinator; use "
                "transport='tcp' for sharded repair"
            )
        if transport == "tcp" and peers is None:
            raise ValueError("transport='tcp' needs peers")
        if transport in ("tcp", "shm") and workdir is None:
            raise ValueError(f"transport={transport!r} needs workdir")
        if resume:
            if transport == "memory":
                raise ValueError(
                    "resume applies to tcp/shm runs; memory runs recover "
                    "in-process via their own journal"
                )
            if journal_path is None:
                raise ValueError("resume needs journal_path")
            if coordinators > 1:
                raise ValueError(
                    "resume applies to single-coordinator runs; sharded "
                    "runs recover crashed shards internally"
                )
        if transport == "memory" and peers is not None:
            raise ValueError("peers only applies to transport='tcp'")
        if isinstance(peers, str):
            from .net.launch import parse_peer_spec

            peers = parse_peer_spec(peers)
        self.cluster = cluster
        self.codec = codec
        self.plan = plan
        self.transport = transport
        self.coordinators = coordinators
        self.pipelining = pipelining
        self.slices = slices
        self.peers = peers
        self.workdir = Path(workdir) if workdir is not None else None
        self.seed = seed
        base = config or DEFAULT_CONFIG
        self.config = (
            replace(base, pipeline_slices=slices)
            if pipelining == "chain"
            else base
        )
        self.packet_size = packet_size
        self.journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self.journal_dir = (
            Path(journal_dir) if journal_dir is not None else None
        )
        self.faults = faults
        self.topology = topology
        self.metrics = metrics
        self.tracer = tracer
        if scrub and transport != "memory":
            raise ValueError(
                "scrub applies to transport='memory' (process-per-node "
                "stores are verified through the shared workdir)"
            )
        if arbiter is not None and transport != "memory":
            raise ValueError(
                "arbiter applies to transport='memory' (QoS arbitration "
                "happens inside the shared in-process fabric)"
            )
        self.resume = resume
        self.agent_timeout = agent_timeout
        self.max_restarts = max_restarts
        self.scrub = scrub
        #: optional :class:`repro.gateway.TrafficArbiter`; repair
        #: traffic is registered as a flow so the session's packets are
        #: paced against the client bandwidth floor
        self.arbiter = arbiter
        self.log = log

    # -- execution -----------------------------------------------------

    def run(self) -> RepairSummary:
        """Execute the plan and return its uniform summary.

        Repaired chunks are always verified byte-identical against the
        deterministic data set (raising
        :class:`~repro.runtime.testbed.VerificationError` otherwise).
        """
        effective = apply_pipelining(self.plan, self.pipelining)
        if self.transport == "memory":
            return self._run_memory(effective)
        return self._run_wire(effective)

    def _summary(self, result, verified: int, restarts: int) -> RepairSummary:
        return RepairSummary(
            transport=self.transport,
            coordinators=self.coordinators,
            pipelining=self.pipelining,
            slices=self.slices,
            total_time=result.total_time,
            chunks_repaired=result.chunks_repaired,
            chunks_verified=verified,
            bytes_transferred=result.bytes_transferred,
            retries=result.retries,
            replans=result.replans,
            nacks=getattr(result, "nacks", 0),
            slices_completed=getattr(result, "slices_completed", 0),
            restarts=restarts,
            round_times=list(result.round_times),
            dead_nodes=list(getattr(result, "dead_nodes", [])),
            result=result,
        )

    def _run_memory(self, plan: RepairPlan) -> RepairSummary:
        from .runtime.testbed import EmulatedTestbed

        testbed = EmulatedTestbed(
            self.cluster,
            self.codec,
            packet_size=self.packet_size,
            workdir=self.workdir,
            config=self.config,
            faults=self.faults,
            journal_path=(
                self.journal_path if self.coordinators <= 1 else None
            ),
            metrics=self.metrics,
            tracer=self.tracer,
            topology=self.topology,
            arbiter=self.arbiter,
        )
        restarts = 0
        with testbed:
            testbed.load_random_data(seed=self.seed)
            if self.coordinators > 1:
                result = testbed.execute_sharded(
                    plan, num_coordinators=self.coordinators
                )
                restarts = len(result.takeovers)
                if self.log is not None:
                    for event in result.takeovers:
                        self.log(
                            f"shard {event.shard} taken over by shard "
                            f"{event.adopter} (epoch {event.epoch})"
                        )
            else:
                try:
                    result = testbed.execute(plan)
                except CoordinatorCrash as crash:
                    # Injected coordinator death: recover from the
                    # journal under a bumped epoch, bounded so a crash
                    # plan denser than the plan's rounds still ends.
                    if self.log is not None:
                        self.log(
                            f"coordinator crashed: {crash}; recovering "
                            "from journal"
                        )
                    while True:
                        restarts += 1
                        if restarts > self.max_restarts:
                            raise
                        testbed.restart_coordinator()
                        try:
                            result = testbed.resume()
                            break
                        except CoordinatorCrash as crash:
                            if self.log is not None:
                                self.log(
                                    f"coordinator crashed again: {crash}; "
                                    "recovering"
                                )
            testbed.verify_plan(plan, result)
            verified = result.chunks_repaired + getattr(
                result, "recovered_chunks", 0
            )
            summary = self._summary(result, verified, restarts)
            if self.scrub:
                from .runtime.scrub import Scrubber

                summary.scrub_report = Scrubber(testbed).scan()
            return summary

    def _run_wire(self, plan: RepairPlan) -> RepairSummary:
        from .net.launch import (
            run_shm_repair,
            run_tcp_multicoord_repair,
            run_tcp_repair,
            sharded_peer_spec,
        )

        if self.transport == "shm":
            result, verified = run_shm_repair(
                self.cluster,
                self.codec,
                plan,
                self.workdir,
                seed=self.seed,
                config=self.config,
                packet_size=self.packet_size,
                journal_path=self.journal_path,
                metrics=self.metrics,
                tracer=self.tracer,
                resume=self.resume,
                agent_timeout=self.agent_timeout,
                faults=self.faults,
            )
            return self._summary(result, verified, 0)
        if self.coordinators > 1:
            result, verified = run_tcp_multicoord_repair(
                self.cluster,
                self.codec,
                plan,
                sharded_peer_spec(self.peers, self.coordinators),
                self.workdir,
                num_coordinators=self.coordinators,
                seed=self.seed,
                config=self.config,
                packet_size=self.packet_size,
                journal_dir=self.journal_dir,
                metrics=self.metrics,
                tracer=self.tracer,
                agent_timeout=self.agent_timeout,
                faults=self.faults,
                topology=self.topology,
            )
            if self.log is not None:
                for event in result.takeovers:
                    self.log(
                        f"shard {event.shard} taken over by shard "
                        f"{event.adopter} (epoch {event.epoch})"
                    )
            return self._summary(result, verified, len(result.takeovers))
        result, verified = run_tcp_repair(
            self.cluster,
            self.codec,
            plan,
            self.peers,
            self.workdir,
            seed=self.seed,
            config=self.config,
            packet_size=self.packet_size,
            journal_path=self.journal_path,
            metrics=self.metrics,
            tracer=self.tracer,
            resume=self.resume,
            agent_timeout=self.agent_timeout,
            faults=self.faults,
        )
        return self._summary(result, verified, 0)
