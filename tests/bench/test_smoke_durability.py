"""The durability bench behind CI's ``lifetime-sim`` job."""

import copy
import json

import pytest

from repro.bench.smoke import (
    DURABILITY_SCHEMA,
    run_durability,
    validate_durability,
)


@pytest.fixture(scope="module")
def document():
    # Few trials so the module stays fast; CI runs the full 50.
    return run_durability(trials=4, years=0.5, seed=7)


class TestRunDurability:
    def test_document_validates(self, document):
        body = validate_durability(document, require_zero_loss=False)
        assert body["config"]["trials"] == 4
        assert body["config"]["code"] == "rs(9,6)"

    def test_covers_both_failure_processes(self, document):
        names = [entry["process"] for entry in document["processes"]]
        assert names == ["weibull", "trace-replay"]

    def test_each_process_reports_both_modes(self, document):
        for entry in document["processes"]:
            assert entry["predictive"]["predictive"] is True
            assert entry["reactive"]["predictive"] is False
            # the headline number the ISSUE asks for
            assert "lost_stripe_probability" in entry["predictive"]
            assert "lost_stripe_probability" in entry["reactive"]

    def test_json_serializable(self, document):
        assert json.loads(json.dumps(document)) == document

    def test_deterministic(self, document):
        assert run_durability(trials=4, years=0.5, seed=7) == document


class TestValidateDurability:
    def test_rejects_empty_processes(self, document):
        broken = copy.deepcopy(document)
        broken["processes"] = []
        with pytest.raises(ValueError, match="no failure processes"):
            validate_durability(broken)

    def test_rejects_missing_mode(self, document):
        broken = copy.deepcopy(document)
        del broken["processes"][0]["reactive"]
        with pytest.raises(ValueError, match="lacks a reactive run"):
            validate_durability(broken)

    def test_rejects_zero_trials(self, document):
        broken = copy.deepcopy(document)
        broken["processes"][0]["predictive"]["trials"] = 0
        with pytest.raises(ValueError, match="ran no trials"):
            validate_durability(broken)

    def test_rejects_study_with_no_failures(self, document):
        broken = copy.deepcopy(document)
        broken["processes"][0]["predictive"]["disk_failures"] = 0
        with pytest.raises(ValueError, match="no disk failures"):
            validate_durability(broken)

    def test_zero_loss_bar_enforced(self, document):
        broken = copy.deepcopy(document)
        broken["processes"][0]["predictive"]["lost_stripe_probability"] = 0.1
        with pytest.raises(ValueError, match="lost stripes"):
            validate_durability(broken)
        # ... but only when the bar is requested
        validate_durability(broken, require_zero_loss=False)

    def test_schema_version_pinned(self, document):
        assert document["version"] == DURABILITY_SCHEMA.version
        broken = copy.deepcopy(document)
        broken["version"] = 99
        with pytest.raises(ValueError):
            validate_durability(broken)


class TestCommittedArtifact:
    def test_bench_durability_json_meets_the_bar(self):
        # The committed BENCH_durability.json is CI's acceptance
        # artifact: 50 trials, RS(9,6), one simulated year, zero lost
        # stripes with predictive repair on.
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_durability.json"
        body = validate_durability(json.loads(path.read_text()))
        assert body["config"]["trials"] == 50
        assert body["config"]["years"] == 1.0
        for entry in body["processes"]:
            assert entry["predictive"]["lost_stripe_probability"] == 0.0
