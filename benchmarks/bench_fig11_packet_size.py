"""Figure 11 / Experiment B.1: impact of the packet size (testbed).

Paper claims reproduced here:

* multi-threaded packet pipelining cuts repair time: chunk-sized
  packets (no pipelining) are slower than small packets (paper: 31.4%
  reduction from 64 MB to 4 MB packets for FastPR);
* FastPR beats both baselines at every packet size.
"""

from conftest import run_once

from repro.bench.experiments import fig11_packet_size

RUNS = 1


def test_fig11_packet_size(benchmark, save_result):
    exp = run_once(benchmark, fig11_packet_size, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        fastpr = panel.values_of("fastpr")
        # Chunk-sized packets (last tick) slower than 4MB-equivalent
        # packets (second tick) for FastPR.
        assert fastpr[-1] > fastpr[1] * 1.02, (
            f"{panel.title}: pipelining should help "
            f"({fastpr[-1]:.4f} !> {fastpr[1]:.4f})"
        )
        for i in range(len(panel.xticks)):
            assert fastpr[i] <= panel.values_of("reconstruction")[i] * 1.10
            assert fastpr[i] <= panel.values_of("migration")[i] * 1.10
