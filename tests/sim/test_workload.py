"""Tests for simulation workload builders."""

import pytest

from repro.sim.workload import (
    PAPER_SIM_CONFIG,
    SimulationConfig,
    build_cluster,
    build_cluster_with_stf,
    fixed_stf_chunk_count,
)


class TestConfig:
    def test_paper_defaults(self):
        cfg = PAPER_SIM_CONFIG
        assert cfg.num_nodes == 100
        assert cfg.num_stripes == 1000
        assert (cfg.n, cfg.k) == (9, 6)
        assert cfg.num_hot_standby == 3
        assert cfg.chunk_size == 64 * 1024 * 1024

    def test_with_(self):
        cfg = PAPER_SIM_CONFIG.with_(num_nodes=50)
        assert cfg.num_nodes == 50
        assert cfg.num_stripes == 1000


class TestBuilders:
    def test_build_cluster(self):
        cfg = SimulationConfig(num_nodes=20, num_stripes=30, seed=1)
        cluster = build_cluster(cfg)
        assert cluster.num_storage_nodes == 20
        assert cluster.num_stripes == 30
        cluster.verify_fault_tolerance()

    def test_build_cluster_with_stf(self):
        cfg = SimulationConfig(num_nodes=20, num_stripes=30, seed=1)
        cluster, stf = build_cluster_with_stf(cfg)
        assert cluster.node(stf).is_stf
        assert cluster.load_of(stf) > 0

    def test_stf_selection_deterministic(self):
        cfg = SimulationConfig(num_nodes=20, num_stripes=30, seed=9)
        _, stf_a = build_cluster_with_stf(cfg)
        _, stf_b = build_cluster_with_stf(cfg)
        assert stf_a == stf_b

    def test_no_chunks_raises(self):
        cfg = SimulationConfig(num_nodes=20, num_stripes=0, seed=1)
        with pytest.raises(ValueError):
            build_cluster_with_stf(cfg)


class TestFixedStfChunkCount:
    def test_exact_count(self):
        cfg = SimulationConfig(num_nodes=21, num_stripes=60, seed=2)
        cluster, stf = fixed_stf_chunk_count(cfg, 15)
        assert cluster.load_of(stf) == 15
        assert cluster.node(stf).is_stf
        assert cluster.num_stripes == 60
        cluster.verify_fault_tolerance()

    def test_explicit_stf_node(self):
        cfg = SimulationConfig(num_nodes=21, num_stripes=30, seed=3)
        cluster, stf = fixed_stf_chunk_count(cfg, 10, stf_node=5)
        assert stf == 5
        assert cluster.load_of(5) == 10

    def test_other_nodes_share_rest(self):
        cfg = SimulationConfig(num_nodes=21, num_stripes=30, seed=4)
        cluster, stf = fixed_stf_chunk_count(cfg, 10)
        total = sum(cluster.load_of(n) for n in cluster.storage_node_ids())
        assert total == 30 * cfg.n

    def test_too_small_cluster(self):
        cfg = SimulationConfig(num_nodes=9, num_stripes=10, seed=5)
        with pytest.raises(ValueError):
            fixed_stf_chunk_count(cfg, 5)
