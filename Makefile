# Developer entry points.  CI runs the same commands (see
# .github/workflows/ci.yml); PYTHONPATH=src keeps everything runnable
# without an editable install.

PY := PYTHONPATH=src python

.PHONY: test bench-smoke bench-hotpath profile

test:
	$(PY) -m pytest -x -q tests/

# Regenerate the committed bench documents.  --fail-on-regression
# compares each figure against the committed file before overwriting:
# a schema-identical config that comes out >30% slower exits non-zero.
bench-smoke:
	$(PY) -m repro.bench.smoke -o BENCH_repair_rounds.json \
		--net-output BENCH_net_throughput.json \
		--hotpath BENCH_hotpath.json \
		--fail-on-regression

# Hot-path sweep only (GF kernels + per-transport throughput).
bench-hotpath:
	$(PY) -m repro.bench.smoke -o /tmp/bench_repair_rounds.json \
		--net-output '' --hotpath BENCH_hotpath.json

# cProfile the instrumented repair; profile.prof feeds any flamegraph
# tool (e.g. snakeviz/flameprof), profile.txt is readable as-is.
profile:
	$(PY) -m repro.bench.smoke -o /tmp/bench_repair_rounds.json \
		--net-output '' --profile-out profile
