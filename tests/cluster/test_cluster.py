"""Tests for the StorageCluster metadata model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterError, NodeRole, StorageCluster


class TestConstruction:
    def test_node_counts(self):
        cluster = StorageCluster(10, num_hot_standby=3)
        assert cluster.num_storage_nodes == 10
        assert cluster.num_hot_standby == 3
        assert len(cluster.nodes) == 13

    def test_standby_ids_follow_storage(self):
        cluster = StorageCluster(4, num_hot_standby=2)
        assert cluster.storage_node_ids() == [0, 1, 2, 3]
        assert cluster.hot_standby_ids() == [4, 5]

    def test_too_small(self):
        with pytest.raises(ValueError):
            StorageCluster(1)

    def test_negative_standby(self):
        with pytest.raises(ValueError):
            StorageCluster(5, num_hot_standby=-1)


class TestStripeManagement:
    def test_add_stripe(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        assert cluster.num_stripes == 1
        assert cluster.stripe(stripe.stripe_id) is stripe
        assert cluster.load_of(0) == 1

    def test_ids_are_sequential(self):
        cluster = StorageCluster(6)
        s0 = cluster.add_stripe(3, 2, [0, 1, 2])
        s1 = cluster.add_stripe(3, 2, [3, 4, 5])
        assert (s0.stripe_id, s1.stripe_id) == (0, 1)

    def test_unknown_node_rejected(self):
        cluster = StorageCluster(4)
        with pytest.raises(ClusterError):
            cluster.add_stripe(3, 2, [0, 1, 99])

    def test_standby_placement_rejected(self):
        cluster = StorageCluster(4, num_hot_standby=1)
        with pytest.raises(ClusterError, match="hot-standby"):
            cluster.add_stripe(3, 2, [0, 1, 4])

    def test_unknown_stripe(self):
        cluster = StorageCluster(4)
        with pytest.raises(ClusterError):
            cluster.stripe(0)


class TestQueries:
    def test_chunks_on_node(self):
        cluster = StorageCluster(6)
        cluster.add_stripe(3, 2, [0, 1, 2])
        cluster.add_stripe(3, 2, [0, 3, 4])
        chunks = cluster.chunks_on_node(0)
        assert len(chunks) == 2
        assert all(c.node_id == 0 for c in chunks)

    def test_healthy_storage_nodes_excludes_stf(self):
        cluster = StorageCluster(5)
        cluster.node(2).mark_soon_to_fail()
        assert 2 not in cluster.healthy_storage_nodes()
        assert cluster.stf_nodes() == [2]

    def test_healthy_excludes_standby(self):
        cluster = StorageCluster(4, num_hot_standby=2)
        assert cluster.healthy_storage_nodes() == [0, 1, 2, 3]

    def test_helper_nodes(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(4, 2, [0, 1, 2, 3])
        assert cluster.helper_nodes(stripe.stripe_id, exclude={0}) == [1, 2, 3]

    def test_helper_nodes_excludes_failed(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(4, 2, [0, 1, 2, 3])
        cluster.node(1).mark_failed()
        assert cluster.helper_nodes(stripe.stripe_id, exclude={0}) == [2, 3]

    def test_eligible_destinations(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(4, 2, [0, 1, 2, 3])
        assert cluster.eligible_destinations(stripe.stripe_id, exclude={0}) == [4, 5]

    def test_verify_fault_tolerance_passes(self):
        cluster = StorageCluster.random(10, 20, 5, 3, seed=1)
        cluster.verify_fault_tolerance()


class TestMutations:
    def test_relocate_chunk(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        cluster.relocate_chunk(stripe.stripe_id, 0, 5)
        assert stripe.node_of(0) == 5
        assert cluster.load_of(0) == 0
        assert cluster.load_of(5) == 1

    def test_relocate_noop_same_node(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        cluster.relocate_chunk(stripe.stripe_id, 0, 0)
        assert cluster.load_of(0) == 1

    def test_relocate_to_unknown_node(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        with pytest.raises(ClusterError):
            cluster.relocate_chunk(stripe.stripe_id, 0, 42)

    def test_decommission_requires_empty(self):
        cluster = StorageCluster(6)
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        with pytest.raises(ClusterError, match="still stores"):
            cluster.decommission(0)
        cluster.relocate_chunk(stripe.stripe_id, 0, 5)
        cluster.decommission(0)
        assert cluster.node(0).is_failed

    def test_promote_standby(self):
        cluster = StorageCluster(4, num_hot_standby=1)
        cluster.promote_standby(4)
        assert cluster.node(4).role is NodeRole.STORAGE
        with pytest.raises(ClusterError):
            cluster.promote_standby(0)

    def test_add_hot_standby(self):
        cluster = StorageCluster(4, num_hot_standby=1)
        added = cluster.add_hot_standby(2)
        assert added == [5, 6]
        assert cluster.num_hot_standby == 3
        assert all(cluster.node(n).is_standby for n in added)
        with pytest.raises(ValueError):
            cluster.add_hot_standby(0)

    def test_standby_turnover_cycle(self):
        cluster = StorageCluster(4, num_hot_standby=2)
        for node_id in cluster.hot_standby_ids():
            cluster.promote_standby(node_id)
        assert cluster.num_hot_standby == 0
        cluster.add_hot_standby(2)
        assert cluster.num_hot_standby == 2
        assert cluster.num_storage_nodes == 6

    def test_metadata_version_bumps(self):
        cluster = StorageCluster(6)
        v0 = cluster.metadata_version
        stripe = cluster.add_stripe(3, 2, [0, 1, 2])
        assert cluster.metadata_version == v0 + 1
        cluster.relocate_chunk(stripe.stripe_id, 0, 5)
        assert cluster.metadata_version == v0 + 2


class TestRandomBuilder:
    def test_reproducible(self):
        a = StorageCluster.random(10, 15, 5, 3, seed=3)
        b = StorageCluster.random(10, 15, 5, 3, seed=3)
        for sid in range(15):
            assert a.stripe(sid).placement == b.stripe(sid).placement

    def test_stripe_width_exceeds_cluster(self):
        with pytest.raises(ValueError):
            StorageCluster.random(4, 5, 5, 3)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(5, 20),
        st.integers(1, 30),
        st.integers(0, 2**16),
    )
    def test_random_clusters_are_valid(self, num_nodes, num_stripes, seed):
        cluster = StorageCluster.random(num_nodes, num_stripes, 5, 3, seed=seed)
        cluster.verify_fault_tolerance()
        total = sum(cluster.load_of(n) for n in cluster.storage_node_ids())
        assert total == 5 * num_stripes
