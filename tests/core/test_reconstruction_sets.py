"""Tests for Algorithm 1 (finding reconstruction sets)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import StorageCluster
from repro.core.matching import IncrementalStripeMatcher
from repro.core.reconstruction_sets import (
    ReconstructionSetFinder,
    find_reconstruction_sets,
    helper_assignment,
)


def chunk_keys(sets):
    return [(c.stripe_id, c.chunk_index) for s in sets for c in s]


def assert_valid_sets(cluster, stf, sets):
    """Every chunk covered exactly once; every set feasible in parallel."""
    chunks = cluster.chunks_on_node(stf)
    expected = {(c.stripe_id, c.chunk_index) for c in chunks}
    covered = chunk_keys(sets)
    assert len(covered) == len(expected)
    assert set(covered) == expected
    for s in sets:
        assignment = helper_assignment(cluster, stf, s)  # raises if infeasible
        used = [n for helpers in assignment.values() for n in helpers]
        assert len(used) == len(set(used)), "helpers must be distinct"
        assert stf not in used


class TestFindReconstructionSets:
    def test_covers_all_chunks(self, stf_cluster):
        cluster, stf = stf_cluster
        sets = find_reconstruction_sets(cluster, stf)
        assert_valid_sets(cluster, stf, sets)

    def test_set_size_bounded_by_parallelism(self, stf_cluster):
        cluster, stf = stf_cluster
        k = 3
        bound = (cluster.num_storage_nodes - 1) // k
        for s in find_reconstruction_sets(cluster, stf):
            assert len(s) <= bound

    def test_empty_when_no_chunks(self):
        cluster = StorageCluster(6)
        assert find_reconstruction_sets(cluster, 0) == []

    def test_optimize_never_worse(self, medium_cluster):
        cluster = medium_cluster
        stf = max(
            cluster.storage_node_ids(), key=cluster.load_of
        )
        cluster.node(stf).mark_soon_to_fail()
        d_ini = len(find_reconstruction_sets(cluster, stf, optimize=False))
        d_opt = len(find_reconstruction_sets(cluster, stf, optimize=True))
        assert d_opt <= d_ini
        assert_valid_sets(
            cluster, stf, find_reconstruction_sets(cluster, stf, optimize=True)
        )

    def test_grouping_still_covers(self, stf_cluster):
        cluster, stf = stf_cluster
        sets = find_reconstruction_sets(cluster, stf, group_size=4)
        assert_valid_sets(cluster, stf, sets)

    def test_seed_shuffles_deterministically(self, stf_cluster):
        cluster, stf = stf_cluster
        a = find_reconstruction_sets(cluster, stf, seed=5)
        b = find_reconstruction_sets(cluster, stf, seed=5)
        assert chunk_keys(a) == chunk_keys(b)

    def test_unrepairable_chunk_raises(self):
        # Stripe with k=3 but only 3 surviving holders... make fewer:
        # 4-node cluster, stripe on all 4, STF + one failed => 2 < k.
        cluster = StorageCluster(4)
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        cluster.node(1).mark_failed()
        cluster.node(0).mark_soon_to_fail()
        with pytest.raises(ValueError, match="cannot be reconstructed"):
            find_reconstruction_sets(cluster, 0)

    def test_mixed_k_rejected(self):
        cluster = StorageCluster(8)
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        cluster.add_stripe(4, 2, [0, 4, 5, 6])
        with pytest.raises(ValueError, match="uniform"):
            find_reconstruction_sets(cluster, 0)

    def test_stats_recorded(self, stf_cluster):
        cluster, stf = stf_cluster
        finder = ReconstructionSetFinder(cluster, stf)
        finder.find_all()
        assert finder.stats.match_calls > 0
        assert finder.stats.initial_sets_sizes

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**16))
    def test_random_clusters_property(self, seed):
        cluster = StorageCluster.random(15, 40, 6, 4, seed=seed)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        sets = find_reconstruction_sets(cluster, stf)
        assert_valid_sets(cluster, stf, sets)


class TestPaperExample:
    """Figure 5: four RS(5,3) stripes over 10 nodes.

    The initial greedy set {C1, C2} cannot grow, but swapping C2 for C3
    admits C4, yielding {C1, C3, C4} and {C2} — d_opt = 2.
    """

    def build(self):
        # 9 healthy nodes N1..N9 (ids 1..9), STF node id 0.
        # Stripe placements chosen so that C1+C2 block C3/C4 via node
        # overlap but C1+C3+C4 fit (mirrors the paper's figure).
        cluster = StorageCluster(10)
        cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])  # C1: helpers 1-4
        cluster.add_stripe(5, 3, [0, 5, 6, 7, 8])  # C2: helpers 5-8
        cluster.add_stripe(5, 3, [0, 5, 6, 7, 9])  # C3: helpers 5,6,7,9
        cluster.add_stripe(5, 3, [0, 5, 6, 8, 9])  # C4: helpers 5,6,8,9
        cluster.node(0).mark_soon_to_fail()
        return cluster

    def test_structure(self):
        cluster = self.build()
        # C2, C3, C4 draw helpers from {5..9} only: any two of them need
        # 6 distinct nodes out of those 5 — infeasible in one round.
        matcher = IncrementalStripeMatcher(3)
        assert matcher.try_add(1, [5, 6, 7, 8])
        assert not matcher.try_add(2, [5, 6, 7, 9])

    def test_optimized_beats_initial(self):
        cluster = self.build()
        d_ini = len(find_reconstruction_sets(cluster, 0, optimize=False))
        d_opt = len(find_reconstruction_sets(cluster, 0, optimize=True))
        assert d_opt <= d_ini
        # Every chunk is still repaired exactly once.
        assert_valid_sets(
            cluster, 0, find_reconstruction_sets(cluster, 0, optimize=True)
        )


class TestHelperAssignment:
    def test_empty(self, stf_cluster):
        cluster, stf = stf_cluster
        assert helper_assignment(cluster, stf, []) == {}

    def test_k_helpers_each(self, stf_cluster):
        cluster, stf = stf_cluster
        sets = find_reconstruction_sets(cluster, stf)
        assignment = helper_assignment(cluster, stf, sets[0])
        for chunk in sets[0]:
            assert len(assignment[chunk.stripe_id]) == 3

    def test_infeasible_set_raises(self):
        cluster = StorageCluster(6)
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        chunks = cluster.chunks_on_node(0)
        with pytest.raises(ValueError, match="infeasible"):
            helper_assignment(cluster, 0, chunks)
