"""Extension bench: repair-efficient code families (Section II-A / III).

The paper argues FastPR applies to any code with reduced repair fan-in
or traffic.  This bench compares the three implemented families through
the Section III analysis and measures the codecs' raw encode/repair
throughput on real bytes.

Families at comparable storage overhead (~1.33-1.5x):

* RS(14,10) — k = 10 helpers, 10 chunks of repair traffic;
* LRC(12,2,2) — k' = 6 local helpers, 6 chunks of traffic;
* MSR(19,10) — d = 18 helpers, but only 2 chunks of traffic.
"""

import numpy as np
from conftest import RESULTS_DIR, run_once

from repro.bench.harness import Experiment, Panel
from repro.core.analysis import AnalyticalModel
from repro.ec import make_codec

SCHEMES = ("rs(14,10)", "lrc(12,2,2)", "msr(19,10)")


def run_family_analysis() -> Experiment:
    exp = Experiment(
        "codec_families",
        "Predictive repair across code families (analysis, M=100)",
    )
    panel = Panel("Per-chunk repair time by family", "code family")
    for scheme in SCHEMES:
        codec = make_codec(scheme)
        model = AnalyticalModel.for_codec(codec, num_nodes=100)
        panel.add_point(
            scheme,
            {
                "reactive": model.reactive_time_per_chunk(),
                "predictive": model.predictive_time_per_chunk(),
                "traffic_chunks": codec.single_repair_cost().traffic_chunks,
            },
        )
    exp.panels.append(panel)
    return exp


def test_family_analysis(benchmark, save_result):
    exp = run_once(benchmark, run_family_analysis)
    save_result(exp)
    panel = exp.panels[0]
    reactive = dict(zip(panel.xticks, panel.values_of("reactive")))
    predictive = dict(zip(panel.xticks, panel.values_of("predictive")))
    traffic = dict(zip(panel.xticks, panel.values_of("traffic_chunks")))
    # Repair traffic ordering: MSR << LRC < RS.
    assert traffic["msr(19,10)"] < traffic["lrc(12,2,2)"] < traffic["rs(14,10)"]
    # Reduced traffic translates into faster reactive repair.
    assert reactive["lrc(12,2,2)"] < reactive["rs(14,10)"]
    assert reactive["msr(19,10)"] < reactive["rs(14,10)"]
    # Predictive repair helps every family.
    for scheme in SCHEMES:
        assert predictive[scheme] < reactive[scheme]


def _encode_payload(codec, size=1 << 16):
    rng = np.random.default_rng(3)
    return [
        rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        for _ in range(codec.k)
    ]


def test_rs_encode_throughput(benchmark):
    codec = make_codec("rs(14,10)")
    data = _encode_payload(codec, size=1 << 16)
    coded = benchmark(codec.encode, data)
    assert len(coded) == 14


def test_lrc_encode_throughput(benchmark):
    codec = make_codec("lrc(12,2,2)")
    data = _encode_payload(codec, size=1 << 16)
    coded = benchmark(codec.encode, data)
    assert len(coded) == 16


def test_msr_encode_throughput(benchmark):
    codec = make_codec("msr(19,10)")
    # MSR chunk size must divide by alpha = 9.
    data = _encode_payload(codec, size=9 * 7000)
    coded = benchmark(codec.encode, data)
    assert len(coded) == 19


def test_single_repair_throughput(benchmark):
    """Streaming RS repair of one chunk (the runtime's hot path)."""
    from repro.ec.galois import gf_addmul_bytes

    codec = make_codec("rs(9,6)")
    data = _encode_payload(codec, size=1 << 18)
    coded = codec.encode(data)
    helpers = list(range(1, 7))
    coeffs = codec.recovery_coefficients(0, helpers)
    chunks = {
        h: np.frombuffer(coded[h], dtype=np.uint8) for h in helpers
    }

    def repair():
        acc = np.zeros(1 << 18, dtype=np.uint8)
        for h in helpers:
            gf_addmul_bytes(acc, coeffs[h], chunks[h])
        return acc

    rebuilt = benchmark(repair)
    assert rebuilt.tobytes() == coded[0]
