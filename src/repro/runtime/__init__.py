"""Emulated coordinator/agent testbed (the EC2/HDFS substitute)."""

from .agent import Agent, AgentError
from .client import ClientStats, StorageClient
from .scrub import CorruptChunk, ScrubReport, Scrubber
from .coordinator import COORDINATOR_ID, Coordinator, RuntimeResult
from .datanode import ChunkStore
from .messages import (
    ActionKey,
    DataPacket,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    Shutdown,
    WriteComplete,
)
from .testbed import EmulatedTestbed, VerificationError
from .throttle import RateLimiter, reserve_transfer, sleep_until
from .transport import Endpoint, Network

__all__ = [
    "ActionKey",
    "Agent",
    "AgentError",
    "COORDINATOR_ID",
    "ChunkStore",
    "ClientStats",
    "CorruptChunk",
    "ScrubReport",
    "Scrubber",
    "StorageClient",
    "Coordinator",
    "DataPacket",
    "EmulatedTestbed",
    "Endpoint",
    "Network",
    "RateLimiter",
    "ReceiveCommand",
    "RelayCommand",
    "RepairAck",
    "RuntimeResult",
    "SendCommand",
    "Shutdown",
    "WriteComplete",
    "VerificationError",
    "reserve_transfer",
    "sleep_until",
]
