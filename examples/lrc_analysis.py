#!/usr/bin/env python3
"""LRC extension of the Section III analysis, plus a codec demo.

The paper generalizes its predictive-repair analysis to Locally
Repairable Codes: with ``l`` local groups a single-chunk repair reads
only ``k' = k/l`` helpers, so ``G' <= (M-1)/k'`` groups reconstruct in
parallel.  This example (i) exercises the LRC codec on real bytes and
(ii) reproduces the analysis with ``k'`` substituted into Eqs. (2)-(6).

Run:
    python examples/lrc_analysis.py
"""

import os

from repro.core import AnalyticalModel
from repro.ec import LocalReconstructionCodec, make_codec


def codec_demo() -> None:
    print("=== LRC(12, 2, 2) codec demo ===")
    codec = make_codec("lrc(12,2,2)")
    assert isinstance(codec, LocalReconstructionCodec)
    data = [os.urandom(4096) for _ in range(codec.k)]
    coded = codec.encode(data)
    print(
        f"n={codec.n} k={codec.k} local groups={codec.l} "
        f"globals={codec.g} overhead={codec.storage_overhead:.2f}x"
    )

    # Local repair: one lost data chunk costs k/l = 6 reads, not 12.
    lost = 3
    helpers = codec.repair_helpers(lost, [i for i in range(codec.n) if i != lost])
    rebuilt = codec.decode(
        {i: coded[i] for i in helpers}, [lost]
    )
    assert rebuilt[lost] == coded[lost]
    print(
        f"repaired chunk {lost} from {len(helpers)} local helpers "
        f"{helpers} (RS(14,12) would need 12)"
    )

    # Degraded repair: a broken local group falls back to globals.
    missing = [0, 1]
    available = {i: coded[i] for i in range(codec.n) if i not in missing}
    rebuilt = codec.decode(available, missing)
    assert all(rebuilt[i] == coded[i] for i in missing)
    print(f"degraded decode of chunks {missing} via global parities: OK")


def analysis_demo() -> None:
    print("\n=== Predictive repair analysis: RS(16,12) vs LRC(12,2,2) ===")
    M = 100
    rs = AnalyticalModel(num_nodes=M, k=12)
    lrc = AnalyticalModel(num_nodes=M, k=12, k_prime=6)
    rows = [
        ("reactive (Eq. 3)", rs.reactive_time_per_chunk(),
         lrc.reactive_time_per_chunk()),
        ("optimal predictive (Eq. 2)", rs.predictive_time_per_chunk(),
         lrc.predictive_time_per_chunk()),
    ]
    print(f"{'metric':28s} {'RS(16,12)':>10s} {'LRC k_prime=6':>14s}")
    for label, rs_val, lrc_val in rows:
        print(f"{label:28s} {rs_val:>10.3f} {lrc_val:>14.3f}")
    print(
        f"\npredictive gain over reactive: RS "
        f"{rs.reduction_over_reactive():.1%}, LRC "
        f"{lrc.reduction_over_reactive():.1%}"
    )
    print(
        "LRC repairs are cheaper overall (k'=6 helpers), and predictive "
        "repair still buys a double-digit reduction on top."
    )


if __name__ == "__main__":
    codec_demo()
    analysis_demo()
