"""Discrete-event simulation of repair plans."""

from .cost_model import CostModelSimulator, evaluate_plan
from .events import Acquire, Delay, Process, Release, Resource, Simulation, SimulationError, use
from .resources import DeviceMap, NodeDevices
from .simulator import (
    DeviceUtilization,
    RepairResult,
    RepairSimulator,
    ShardedRepairResult,
    simulate_repair,
    simulate_sharded_repair,
)
from .timeline import (
    ClusterLifetime,
    EventKind,
    TimelineEvent,
    TimelineReport,
)
from .workload import (
    PAPER_SIM_CONFIG,
    SimulationConfig,
    build_cluster,
    build_cluster_with_stf,
    fixed_stf_chunk_count,
)

__all__ = [
    "Acquire",
    "ClusterLifetime",
    "CostModelSimulator",
    "EventKind",
    "TimelineEvent",
    "TimelineReport",
    "evaluate_plan",
    "Delay",
    "DeviceMap",
    "DeviceUtilization",
    "NodeDevices",
    "PAPER_SIM_CONFIG",
    "Process",
    "Release",
    "RepairResult",
    "RepairSimulator",
    "Resource",
    "ShardedRepairResult",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "build_cluster",
    "build_cluster_with_stf",
    "fixed_stf_chunk_count",
    "simulate_repair",
    "simulate_sharded_repair",
    "use",
]
