"""The object layer: PUT/GET/DELETE/STAT against live repair agents.

:class:`ObjectStore` is the gateway's core.  It stripes named objects
through the erasure codec onto the cluster's agents with
:class:`~repro.runtime.messages.ChunkWrite` RPCs, records a durable
:class:`~repro.gateway.manifest.ObjectManifest` per object, and reads
them back with :class:`~repro.runtime.messages.ChunkRead` — falling
back to a *degraded read* (fetch any ``k`` survivors, decode around
the hole; cf. the decode paths in Li et al., arXiv:1908.01527) when a
datanode is failed, flagged soon-to-fail, or suspected unresponsive.

Everything speaks the existing :class:`~repro.runtime.transport`
interface, so the same gateway runs unchanged over the in-memory,
TCP, and shared-memory backends.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import zlib
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..ec.codec import DecodeError, ErasureCodec
from ..runtime.messages import (
    ChunkDelete,
    ChunkRead,
    ChunkWrite,
    DeleteReply,
    DeleteRequest,
    GetReply,
    GetRequest,
    Ping,
    PutReply,
    PutRequest,
    Shutdown,
    StatReply,
    StatRequest,
)
from .manifest import ManifestStore, ObjectManifest, StripeRef, digest

#: well-known endpoint id of the gateway (below all shard coordinators)
GATEWAY_ID: NodeId = -1000
#: well-known endpoint id of the CLI object client
CLIENT_ID: NodeId = -1001


class GatewayError(RuntimeError):
    """Raised when an object operation cannot be completed."""


class _Slot:
    """One in-flight RPC awaiting its reply."""

    __slots__ = ("event", "reply")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply = None


class RpcEndpoint:
    """Transport attachment + nonce-routed request/reply plumbing.

    Shared by the gateway (talking to agents) and the object client
    (talking to the gateway).  A daemon receiver thread drains the
    endpoint inbox: replies carrying a pending ``nonce`` complete
    their RPC slot; everything else goes to :meth:`_on_message`.
    """

    def __init__(
        self,
        network,
        node_id: NodeId,
        bandwidth: Optional[float] = None,
        timeout: float = 10.0,
        stop: Optional[threading.Event] = None,
    ):
        self.network = network
        self.node_id = node_id
        self.timeout = timeout
        self._stop = stop if stop is not None else threading.Event()
        self.endpoint = network.attach(node_id, bandwidth, stop=self._stop)
        self._pending: Dict[int, _Slot] = {}
        self._nonces = itertools.count(1)
        self._lock = threading.Lock()
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"gateway-recv[{node_id}]",
            daemon=True,
        )
        self._receiver.start()

    def close(self) -> None:
        """Stop the receiver and detach from the transport."""
        if self._stop.is_set():
            return
        self._stop.set()
        self.endpoint.inbox.put(Shutdown())
        self._receiver.join(timeout=5.0)
        try:
            self.network.detach(self.node_id)
        except KeyError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------

    def _recv_loop(self) -> None:
        while not self._stop.is_set():
            message = self.endpoint.inbox.get()
            if isinstance(message, Shutdown):
                return
            nonce = getattr(message, "nonce", None)
            if nonce is not None:
                with self._lock:
                    slot = self._pending.get(nonce)
                if slot is not None:
                    slot.reply = message
                    slot.event.set()
                    continue
            self._on_message(message)

    def _on_message(self, message) -> None:
        """Hook for non-reply traffic (server request dispatch)."""

    def _next_nonce(self) -> int:
        with self._lock:
            return next(self._nonces)

    def _rpc(self, dst: NodeId, message, timeout: Optional[float] = None):
        """Send one request and await its reply (None on timeout)."""
        return self._rpc_many([(dst, message)], timeout=timeout)[0]

    def _rpc_many(
        self,
        calls: Sequence[Tuple[NodeId, object]],
        timeout: Optional[float] = None,
    ) -> List:
        """Fan out requests, then await every reply.

        Each message must already carry a unique ``nonce``; the result
        list aligns with ``calls``, with ``None`` for timeouts and
        unreachable destinations.
        """
        timeout = self.timeout if timeout is None else timeout
        slots = []
        with self._lock:
            for _, message in calls:
                slot = _Slot()
                self._pending[message.nonce] = slot
                slots.append(slot)
        try:
            for dst, message in calls:
                try:
                    self.network.send(self.node_id, dst, message)
                except KeyError:
                    pass  # unknown peer: surfaces as a timeout
            replies = []
            for slot in slots:
                replies.append(
                    slot.reply if slot.event.wait(timeout=timeout) else None
                )
            return replies
        finally:
            with self._lock:
                for _, message in calls:
                    self._pending.pop(message.nonce, None)


@dataclass(frozen=True)
class GetResult:
    """A GET's payload plus how it was served."""

    data: bytes
    #: stripes that needed decode-around-a-hole reconstruction
    degraded_stripes: int = 0

    @property
    def degraded(self) -> bool:
        return self.degraded_stripes > 0


class ObjectStore(RpcEndpoint):
    """Named objects striped over live agents, with degraded reads.

    Args:
        cluster: authoritative node/stripe metadata; placements are
            registered here so the repair planners protect gateway
            stripes exactly like fixture stripes.
        codec: the erasure codec objects are striped with.
        network: any transport implementing ``attach``/``send``
            (memory :class:`~repro.runtime.transport.Network`,
            :class:`~repro.net.tcp.TcpNetwork`,
            :class:`~repro.net.shm.ShmNetwork`).
        chunk_size: bytes per chunk; objects are zero-padded up to
            ``k * chunk_size`` per stripe.
        manifest_dir: directory for durable manifests (None = memory).
        metrics: optional :class:`~repro.obs.MetricsRegistry`.
        timeout: per-RPC reply deadline in seconds.
        suspect_ttl: how long a node that timed out a read stays
            blacklisted before GETs try it directly again.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        codec: ErasureCodec,
        network,
        *,
        node_id: NodeId = GATEWAY_ID,
        bandwidth: Optional[float] = None,
        chunk_size: int = 64 * 1024,
        manifest_dir: Optional[Path] = None,
        metrics=None,
        timeout: float = 10.0,
        suspect_ttl: float = 5.0,
        stop: Optional[threading.Event] = None,
    ):
        super().__init__(
            network, node_id, bandwidth=bandwidth, timeout=timeout, stop=stop
        )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.cluster = cluster
        self.codec = codec
        self.chunk_size = chunk_size
        self.manifests = ManifestStore(manifest_dir)
        self.suspect_ttl = suspect_ttl
        #: node id -> monotonic expiry of read-path suspicion
        self._suspects: Dict[NodeId, float] = {}
        self._counters = None
        if metrics is not None:
            self._counters = {
                name: metrics.counter(f"gateway_{name}_total", help_)
                for name, help_ in (
                    ("puts", "objects written through the gateway"),
                    ("gets", "objects read through the gateway"),
                    ("deletes", "objects deleted through the gateway"),
                    ("degraded_reads",
                     "stripe reads served by decoding around a lost chunk"),
                    ("bytes_in", "object payload bytes written"),
                    ("bytes_out", "object payload bytes read"),
                )
            }

    def _count(self, name: str, value: int = 1) -> None:
        if self._counters is not None:
            self._counters[name].inc(value)

    def _client_flow(self):
        """Registered client flow spanning one object request.

        Marks the arbiter's client class busy for the whole PUT/GET —
        including the think time between stripes — so background
        repair stays clamped to its share throughout, not only in the
        instants client packets are in flight.
        """
        arbiter = getattr(self.network, "arbiter", None)
        if arbiter is None:
            return nullcontext()
        return arbiter.register("client")

    # ------------------------------------------------------------------
    # write path

    def put(self, key: str, data: bytes) -> ObjectManifest:
        """Stripe ``data`` onto the cluster under ``key``.

        Re-putting an existing key overwrites the manifest (the old
        stripes' chunks are deleted best-effort first).
        """
        if not key:
            raise GatewayError("object key must be non-empty")
        data = bytes(data)  # wire payloads arrive as memoryview
        if self.manifests.has(key):
            self.delete(key)
        k, n = self.codec.k, self.codec.n
        stripe_bytes = k * self.chunk_size
        num_stripes = max(-(-len(data) // stripe_bytes), 1)
        padded = data.ljust(num_stripes * stripe_bytes, b"\x00")
        stripes = [
            [
                padded[
                    s * stripe_bytes + i * self.chunk_size:
                    s * stripe_bytes + (i + 1) * self.chunk_size
                ]
                for i in range(k)
            ]
            for s in range(num_stripes)
        ]
        refs = []
        with self._client_flow():
            for chunks in self.codec.encode_batch(stripes):
                refs.append(self._write_stripe(chunks))
        manifest = ObjectManifest(
            key=key,
            size=len(data),
            chunk_size=self.chunk_size,
            n=n,
            k=k,
            sha256=digest(data),
            stripes=tuple(refs),
        )
        self.manifests.save(manifest)
        self._count("puts")
        self._count("bytes_in", len(data))
        return manifest

    def _write_stripe(self, chunks: Sequence[bytes]) -> StripeRef:
        placement = self._choose_placement(len(chunks))
        stripe = self.cluster.add_stripe(
            self.codec.n, self.codec.k, placement
        )
        calls = []
        for index, (dst, chunk) in enumerate(zip(placement, chunks)):
            calls.append((dst, ChunkWrite(
                stripe_id=stripe.stripe_id,
                chunk_index=index,
                source=self.node_id,
                offset=0,
                payload=chunk,
                checksum=zlib.crc32(chunk),
                nonce=self._next_nonce(),
                reply_to=self.node_id,
            )))
        for (dst, _), reply in zip(calls, self._rpc_many(calls)):
            if reply is None:
                raise GatewayError(
                    f"node {dst} did not acknowledge chunk write "
                    f"(stripe {stripe.stripe_id})"
                )
            if not reply.ok:
                raise GatewayError(
                    f"node {dst} rejected chunk write: {reply.detail}"
                )
        return StripeRef(stripe.stripe_id, tuple(placement))

    def _choose_placement(self, n: int) -> List[NodeId]:
        """``n`` distinct healthy nodes, least-loaded first."""
        candidates = self.cluster.healthy_storage_nodes()
        if len(candidates) < n:
            raise GatewayError(
                f"need {n} healthy storage nodes for a stripe, "
                f"only {len(candidates)} available"
            )
        candidates.sort(key=lambda nid: (self.cluster.load_of(nid), nid))
        return candidates[:n]

    # ------------------------------------------------------------------
    # read path

    def get(self, key: str) -> bytes:
        """Read an object back, decoding around dead nodes if needed."""
        return self.get_result(key).data

    def get_result(self, key: str) -> GetResult:
        """Like :meth:`get`, also reporting degraded-stripe counts."""
        manifest = self.manifests.load(key)
        parts = []
        degraded_stripes = 0
        with self._client_flow():
            for ref in manifest.stripes:
                data_chunks, degraded = self._read_stripe(manifest, ref)
                parts.extend(data_chunks)
                if degraded:
                    degraded_stripes += 1
        data = b"".join(parts)[:manifest.size]
        if digest(data) != manifest.sha256:
            raise GatewayError(
                f"content hash mismatch reading {key!r} "
                "(decoded bytes differ from manifest sha256)"
            )
        self._count("gets")
        self._count("bytes_out", len(data))
        return GetResult(data=data, degraded_stripes=degraded_stripes)

    def _read_stripe(
        self, manifest: ObjectManifest, ref: StripeRef
    ) -> Tuple[List[bytes], bool]:
        """One stripe's ``k`` data chunks, degraded-decoding if needed.

        Returns ``(data_chunks, was_degraded)``.
        """
        k = manifest.k
        wanted = list(range(k))
        available: Dict[int, bytes] = {}
        # First pass: fetch data chunks from nodes the monitor/probe
        # state calls readable.
        direct = [i for i in wanted if self._readable(ref.placement[i])]
        available.update(self._fetch_chunks(ref, direct))
        missing = [i for i in wanted if i not in available]
        if not missing:
            return [available[i] for i in wanted], False
        # Degraded path: top up to k chunks from surviving parities
        # (and any data chunks skipped above), then decode the holes.
        substitutes = [
            i for i in range(manifest.n)
            if i not in available and self._readable(ref.placement[i])
        ]
        for index in substitutes:
            if len(available) >= k:
                break
            available.update(self._fetch_chunks(ref, [index]))
        if len(available) < k:
            raise GatewayError(
                f"stripe {ref.stripe_id}: only {len(available)} of the "
                f"{k} required chunks are readable"
            )
        try:
            decoded = self.codec.decode(available, missing)
        except DecodeError as exc:
            raise GatewayError(
                f"stripe {ref.stripe_id}: degraded decode failed: {exc}"
            ) from exc
        self._count("degraded_reads")
        chunks = [
            available[i] if i in available else decoded[i] for i in wanted
        ]
        return chunks, True

    def _fetch_chunks(
        self, ref: StripeRef, indices: Sequence[int]
    ) -> Dict[int, bytes]:
        """ChunkRead fan-out; failures mark the node suspect."""
        if not indices:
            return {}
        calls = [
            (ref.placement[i], ChunkRead(
                stripe_id=ref.stripe_id,
                chunk_index=i,
                nonce=self._next_nonce(),
                reply_to=self.node_id,
            ))
            for i in indices
        ]
        fetched: Dict[int, bytes] = {}
        for (dst, request), reply in zip(calls, self._rpc_many(calls)):
            # checksum=None means the transport already CRC-verified
            # the payload at the frame level (tcp/shm strip it after
            # validation); only an *attached* checksum can mismatch.
            if (
                reply is None
                or not reply.ok
                or (
                    reply.checksum is not None
                    and zlib.crc32(reply.payload) != reply.checksum
                )
            ):
                self._suspect(dst)
                continue
            fetched[request.chunk_index] = reply.payload
        return fetched

    # ------------------------------------------------------------------
    # health state

    def _readable(self, node_id: NodeId) -> bool:
        """Monitor + probe verdict: should a GET try this node directly?

        Failed nodes are gone; soon-to-fail nodes are being drained by
        predictive repair and may be shut down mid-read, so GETs decode
        around them; suspects recently timed out a read.
        """
        try:
            node = self.cluster.node(node_id)
        except Exception:
            return True  # manifest outlives the snapshot: try it
        if node.is_failed or node.is_stf:
            return False
        expiry = self._suspects.get(node_id)
        if expiry is not None:
            if expiry > time.monotonic():
                return False
            del self._suspects[node_id]
        return True

    def _suspect(self, node_id: NodeId) -> None:
        self._suspects[node_id] = time.monotonic() + self.suspect_ttl

    def probe(self, node_id: NodeId, timeout: float = 1.0) -> bool:
        """Ping a node; a reply clears read-path suspicion."""
        reply = self._rpc(
            node_id,
            Ping(nonce=self._next_nonce(), reply_to=self.node_id),
            timeout=timeout,
        )
        if reply is not None:
            self._suspects.pop(node_id, None)
            return True
        self._suspect(node_id)
        return False

    # ------------------------------------------------------------------
    # delete / stat

    def delete(self, key: str) -> int:
        """Delete an object's chunks (best effort) and its manifest.

        Returns the number of chunk deletes acknowledged.  The stripe
        ids stay registered in the cluster catalog (ids are never
        reused); their chunks are simply gone.
        """
        manifest = self.manifests.load(key)
        calls = []
        for ref in manifest.stripes:
            for index, dst in enumerate(ref.placement):
                calls.append((dst, ChunkDelete(
                    stripe_id=ref.stripe_id,
                    chunk_index=index,
                    nonce=self._next_nonce(),
                    reply_to=self.node_id,
                )))
        with self._client_flow():
            replies = self._rpc_many(calls)
        self.manifests.delete(key)
        self._count("deletes")
        return sum(
            1 for reply in replies if reply is not None and reply.ok
        )

    def stat(self, key: str) -> ObjectManifest:
        """The manifest for ``key`` (raises ManifestError if absent)."""
        return self.manifests.load(key)

    def keys(self) -> List[str]:
        return self.manifests.keys()


class GatewayServer(ObjectStore):
    """An :class:`ObjectStore` that also serves remote object clients.

    Wire requests (:class:`~repro.runtime.messages.PutRequest` etc.)
    arriving at the gateway endpoint are executed on a dedicated
    worker thread (so the receiver loop keeps routing the chunk-RPC
    replies the work itself depends on) and answered to the request's
    ``reply_to`` endpoint.
    """

    def __init__(self, *args, **kwargs):
        self._requests: "queue.Queue" = queue.Queue()
        super().__init__(*args, **kwargs)
        self._worker = threading.Thread(
            target=self._serve_loop, name="gateway-serve", daemon=True
        )
        self._worker.start()

    def close(self) -> None:
        if not self._stop.is_set():
            self._requests.put(None)
        super().close()
        self._worker.join(timeout=5.0)

    def _on_message(self, message) -> None:
        if isinstance(
            message, (PutRequest, GetRequest, DeleteRequest, StatRequest)
        ):
            self._requests.put(message)

    def _serve_loop(self) -> None:
        while True:
            message = self._requests.get()
            if message is None or self._stop.is_set():
                return
            try:
                reply = self._serve_one(message)
            except Exception as exc:  # noqa: BLE001 - reply with the error
                reply = self._error_reply(message, exc)
            self._reply(message.reply_to, reply)

    def _serve_one(self, message):
        if isinstance(message, PutRequest):
            manifest = self.put(message.key, message.payload)
            return PutReply(
                key=message.key,
                nonce=message.nonce,
                size=manifest.size,
                stripes=manifest.stripe_ids,
            )
        if isinstance(message, GetRequest):
            result = self.get_result(message.key)
            return GetReply(
                stripe_id=-1,
                chunk_index=-1,
                source=self.node_id,
                offset=0,
                payload=result.data,
                checksum=zlib.crc32(result.data),
                key=message.key,
                nonce=message.nonce,
                degraded=result.degraded,
            )
        if isinstance(message, DeleteRequest):
            self.delete(message.key)
            return DeleteReply(key=message.key, nonce=message.nonce)
        manifest = self.stat(message.key)
        return StatReply(
            key=message.key,
            nonce=message.nonce,
            size=manifest.size,
            chunk_size=manifest.chunk_size,
            scheme=manifest.scheme,
            stripes=manifest.stripe_ids,
        )

    def _error_reply(self, message, exc: Exception):
        detail = f"{type(exc).__name__}: {exc}"
        if isinstance(message, PutRequest):
            return PutReply(
                key=message.key, nonce=message.nonce, ok=False, detail=detail
            )
        if isinstance(message, GetRequest):
            return GetReply(
                stripe_id=-1, chunk_index=-1, source=self.node_id, offset=0,
                payload=b"", key=message.key, nonce=message.nonce,
                ok=False, detail=detail,
            )
        if isinstance(message, DeleteRequest):
            return DeleteReply(
                key=message.key, nonce=message.nonce, ok=False, detail=detail
            )
        return StatReply(
            key=message.key, nonce=message.nonce, ok=False, detail=detail
        )

    def _reply(self, dst: NodeId, reply) -> None:
        # Clients are transient processes: a one-shot ``fastpr gateway
        # put`` re-creates its inbound shm ring each run, so a ring
        # attachment cached while answering the previous client would
        # silently swallow this reply.  Re-resolve the peer by name
        # (duck-typed; only ShmNetwork has transient-peer caching).
        refresh = getattr(self.network, "refresh_peer", None)
        if refresh is not None:
            refresh(dst)
        try:
            self.network.send(self.node_id, dst, reply)
        except KeyError:
            pass  # client went away


class ObjectClient(RpcEndpoint):
    """Remote object client: PUT/GET/DELETE/STAT against a gateway.

    Used by ``fastpr gateway put``/``get`` — attaches to the transport
    as :data:`CLIENT_ID` and speaks the object wire messages.
    """

    def __init__(
        self,
        network,
        *,
        node_id: NodeId = CLIENT_ID,
        gateway_id: NodeId = GATEWAY_ID,
        timeout: float = 30.0,
        stop: Optional[threading.Event] = None,
    ):
        super().__init__(network, node_id, timeout=timeout, stop=stop)
        self.gateway_id = gateway_id

    def _call(self, message):
        reply = self._rpc(self.gateway_id, message)
        if reply is None:
            raise GatewayError(
                f"gateway {self.gateway_id} did not reply within "
                f"{self.timeout}s"
            )
        if not reply.ok:
            raise GatewayError(reply.detail)
        return reply

    def put(self, key: str, data: bytes) -> PutReply:
        return self._call(PutRequest(
            stripe_id=-1, chunk_index=-1, source=self.node_id, offset=0,
            payload=data, checksum=zlib.crc32(data), key=key,
            nonce=self._next_nonce(), reply_to=self.node_id,
        ))

    def get(self, key: str) -> GetReply:
        reply = self._call(GetRequest(
            key=key, nonce=self._next_nonce(), reply_to=self.node_id
        ))
        # checksum=None: the transport already frame-CRC-verified the
        # payload and stripped the field (tcp/shm receive contract).
        if (
            reply.checksum is not None
            and zlib.crc32(reply.payload) != reply.checksum
        ):
            raise GatewayError(f"GET {key!r}: payload checksum mismatch")
        return reply

    def delete(self, key: str) -> DeleteReply:
        return self._call(DeleteRequest(
            key=key, nonce=self._next_nonce(), reply_to=self.node_id
        ))

    def stat(self, key: str) -> StatReply:
        return self._call(StatRequest(
            key=key, nonce=self._next_nonce(), reply_to=self.node_id
        ))
