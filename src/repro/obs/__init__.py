"""Observability: metrics registry + repair-round tracing.

The measurement substrate for every "where does repair time go"
question the paper's evaluation asks (see DESIGN.md, "Observability"):
a zero-dependency :class:`MetricsRegistry` (counters / gauges /
fixed-bucket histograms with JSON and Prometheus-text exposition) and
a span :class:`Tracer` whose wall-clock and simulated-clock backends
make the testbed and the simulator emit the same trace schema.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    parse_prometheus,
)
from .report import (
    REPORT_SCHEMA_VERSION,
    RepairBreakdown,
    RoundBreakdown,
    breakdown_from_trace,
    load_report_inputs,
    metrics_summary,
    render_breakdown,
)
from .tracing import (
    TRACE_SCHEMA_VERSION,
    SimClock,
    Span,
    TraceDocument,
    TraceError,
    Tracer,
    WallClock,
    duration_of,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricError",
    "MetricsRegistry",
    "REPORT_SCHEMA_VERSION",
    "RepairBreakdown",
    "RoundBreakdown",
    "SimClock",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceDocument",
    "TraceError",
    "Tracer",
    "WallClock",
    "breakdown_from_trace",
    "duration_of",
    "load_report_inputs",
    "metrics_summary",
    "parse_prometheus",
    "render_breakdown",
]
