"""Failure-injection and boundary tests for the runtime."""

import queue
import time

import pytest

from repro.runtime.agent import Agent, AgentError
from repro.runtime.datanode import ChunkStore
from repro.runtime.messages import (
    DataPacket,
    ReceiveCommand,
    RepairAck,
    SendCommand,
)
from repro.runtime.throttle import RateLimiter
from repro.runtime.transport import Network

COORD = -1


def build_rig(tmp_path, node_ids=(0, 1), ack_timeout=120.0):
    net = Network()
    coord = net.attach(COORD, None)
    agents = {}
    for node_id in node_ids:
        net.attach(node_id, None)
        store = ChunkStore(tmp_path / f"n{node_id}", node_id, RateLimiter(None))
        agents[node_id] = Agent(
            node_id, store, net, COORD, ack_timeout=ack_timeout
        )
        agents[node_id].start()
    return net, coord, agents


def stop_all(agents):
    for agent in agents.values():
        agent.stop()


def transfer(net, src, dst, stripe, payload, packet_size):
    net.send(
        COORD,
        dst,
        ReceiveCommand(stripe, 0, len(payload), packet_size, sources={src: 1}),
    )
    net.send(COORD, src, SendCommand(stripe, 0, dst, packet_size))


class TestBoundaries:
    def test_packet_larger_than_chunk(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            payload = b"q" * 100
            agents[0].store.put(5, payload)
            transfer(net, 0, 1, 5, payload, packet_size=10_000)
            assert coord.inbox.get(timeout=10) == RepairAck(5, 0, 1)
            assert agents[1].store.read(5) == payload
        finally:
            stop_all(agents)

    def test_chunk_not_divisible_by_packet(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            payload = bytes(range(256)) * 3 + b"xy"  # 770 bytes
            agents[0].store.put(6, payload)
            transfer(net, 0, 1, 6, payload, packet_size=256)
            coord.inbox.get(timeout=10)
            assert agents[1].store.read(6) == payload
        finally:
            stop_all(agents)

    def test_single_byte_chunk(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            agents[0].store.put(7, b"Z")
            transfer(net, 0, 1, 7, b"Z", packet_size=64)
            coord.inbox.get(timeout=10)
            assert agents[1].store.read(7) == b"Z"
        finally:
            stop_all(agents)

    def test_concurrent_assemblies_one_destination(self, tmp_path):
        net, coord, agents = build_rig(tmp_path, node_ids=(0, 1, 2))
        try:
            a = b"a" * 2048
            b = b"b" * 2048
            agents[0].store.put(1, a)
            agents[2].store.put(2, b)
            net.send(COORD, 1, ReceiveCommand(1, 0, 2048, 512, sources={0: 1}))
            net.send(COORD, 1, ReceiveCommand(2, 0, 2048, 512, sources={2: 1}))
            net.send(COORD, 0, SendCommand(1, 0, 1, 512))
            net.send(COORD, 2, SendCommand(2, 0, 1, 512))
            keys = {coord.inbox.get(timeout=10).key for _ in range(2)}
            assert keys == {(1, 0), (2, 0)}
            assert agents[1].store.read(1) == a
            assert agents[1].store.read(2) == b
        finally:
            stop_all(agents)


class TestFailureInjection:
    def test_sender_times_out_without_receiver(self, tmp_path):
        # The destination never got a ReceiveCommand: its dispatcher
        # buffers the stray packets, and the sender's synchronous round
        # trip times out and NACKs the coordinator.
        net, coord, agents = build_rig(tmp_path, ack_timeout=0.5)
        try:
            agents[0].store.put(9, b"x" * 128)
            net.send(COORD, 0, SendCommand(9, 0, 1, 64))
            ack = coord.inbox.get(timeout=10)
            assert isinstance(ack, RepairAck)
            assert not ack.ok
            assert ack.key == (9, 0)
            assert "WriteComplete" in ack.detail
            # Neither agent recorded a local error: the failure was
            # reported where it can be acted on.
            assert not agents[0].errors
            assert not agents[1].errors
        finally:
            stop_all(agents)

    def test_duplicate_receive_command_nacked(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            cmd = ReceiveCommand(3, 0, 128, 64, sources={0: 1})
            net.send(COORD, 1, cmd)
            net.send(COORD, 1, cmd)
            ack = coord.inbox.get(timeout=10)
            assert not ack.ok
            assert ack.key == (3, 0)
            assert "duplicate" in ack.detail
            assert not agents[1].errors
        finally:
            stop_all(agents)

    def test_send_of_missing_chunk_nacked(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            net.send(COORD, 1, ReceiveCommand(4, 0, 128, 64, sources={0: 1}))
            net.send(COORD, 0, SendCommand(4, 0, 1, 64))
            ack = coord.inbox.get(timeout=10)
            assert not ack.ok
            assert ack.key == (4, 0)
            assert ack.node_id == 0
            assert not agents[0].errors
        finally:
            stop_all(agents)

    def test_dispatcher_survives_bad_message(self, tmp_path):
        net, coord, agents = build_rig(tmp_path)
        try:
            net.endpoint(1).inbox.put(object())  # garbage
            payload = b"ok" * 64
            agents[0].store.put(8, payload)
            transfer(net, 0, 1, 8, payload, packet_size=32)
            assert coord.inbox.get(timeout=10).key == (8, 0)
            assert any("unknown message" in str(e) for e in agents[1].errors)
        finally:
            stop_all(agents)
