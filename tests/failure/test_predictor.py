"""Tests for the failure predictors and their evaluation."""

import numpy as np
import pytest

from repro.failure.predictor import (
    LogisticPredictor,
    PredictionMetrics,
    ThresholdPredictor,
    evaluate,
    first_alarm_day,
    window_features,
)
from repro.failure.smart import DiskTrace, SmartSample, SmartTraceGenerator


def flat_trace(disk_id=0, days=20, level=0.0, failure_day=None):
    trace = DiskTrace(disk_id=disk_id, failure_day=failure_day)
    for day in range(days):
        values = {
            "smart_5_reallocated_sectors": level,
            "smart_187_reported_uncorrectable": 0.0,
            "smart_188_command_timeout": 0.0,
            "smart_197_pending_sectors": 0.0,
            "smart_198_offline_uncorrectable": 0.0,
            "smart_194_temperature": 30.0,
            "smart_9_power_on_hours": 1000.0 + day,
        }
        trace.samples.append(SmartSample(disk_id, day, values))
    return trace


@pytest.fixture(scope="module")
def fleet():
    return SmartTraceGenerator(
        400, horizon_days=120, annual_failure_rate=0.25, seed=11
    ).generate()


class TestWindowFeatures:
    def test_shape(self):
        trace = flat_trace()
        features = window_features(trace.window(6, 7))
        assert features.shape == (10,)  # 5 attributes x (level, slope)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            window_features([])

    def test_slope_detected(self):
        trace = DiskTrace(disk_id=0)
        for day in range(5):
            values = {
                "smart_5_reallocated_sectors": 10.0 * day,
                "smart_187_reported_uncorrectable": 0.0,
                "smart_188_command_timeout": 0.0,
                "smart_197_pending_sectors": 0.0,
                "smart_198_offline_uncorrectable": 0.0,
                "smart_194_temperature": 30.0,
                "smart_9_power_on_hours": 0.0,
            }
            trace.samples.append(SmartSample(0, day, values))
        features = window_features(trace.samples)
        assert features[1] == pytest.approx(10.0)  # slope of attribute 5


class TestThresholdPredictor:
    def test_flags_above_threshold(self):
        predictor = ThresholdPredictor(threshold=20.0)
        high = flat_trace(level=25.0)
        low = flat_trace(level=5.0)
        assert predictor.predict(high.window(0, 1))
        assert not predictor.predict(low.window(0, 1))

    def test_empty_window(self):
        assert not ThresholdPredictor().predict([])

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ThresholdPredictor(threshold=0)

    def test_score_is_binary(self):
        predictor = ThresholdPredictor(threshold=20.0)
        assert predictor.score(flat_trace(level=25.0).window(0, 1)) == 1.0


class TestLogisticPredictor:
    def test_requires_fit(self):
        trace = flat_trace()
        with pytest.raises(RuntimeError):
            LogisticPredictor().score(trace.window(6, 7))

    def test_requires_both_classes(self):
        healthy_only = [flat_trace(disk_id=i, days=30) for i in range(5)]
        with pytest.raises(ValueError):
            LogisticPredictor().fit(healthy_only)

    def test_high_accuracy_on_synthetic_fleet(self, fleet):
        train, test = fleet[:250], fleet[250:]
        predictor = LogisticPredictor(seed=0).fit(train)
        metrics = evaluate(predictor, test)
        # The prediction literature reports >=95% accuracy; the
        # synthetic fleet is learnable to at least this level.
        assert metrics.recall >= 0.9
        assert metrics.precision >= 0.9
        assert metrics.false_alarm_rate <= 0.05
        assert metrics.mean_lead_days > 1.0

    def test_beats_threshold_on_noisy_disks(self, fleet):
        train, test = fleet[:250], fleet[250:]
        logistic = LogisticPredictor(seed=0).fit(train)
        threshold = ThresholdPredictor(threshold=20.0)
        m_log = evaluate(logistic, test)
        m_thr = evaluate(threshold, test)
        assert m_log.false_alarm_rate <= m_thr.false_alarm_rate

    def test_healthy_disk_not_flagged(self, fleet):
        predictor = LogisticPredictor(seed=0).fit(fleet[:250])
        healthy = flat_trace(days=30)
        assert first_alarm_day(predictor, healthy) is None


class TestMetrics:
    def test_derived_rates(self):
        metrics = PredictionMetrics(
            true_positives=9,
            false_positives=1,
            false_negatives=3,
            true_negatives=87,
            mean_lead_days=5.0,
        )
        assert metrics.precision == pytest.approx(0.9)
        assert metrics.recall == pytest.approx(0.75)
        assert metrics.false_alarm_rate == pytest.approx(1 / 88)

    def test_zero_denominators(self):
        metrics = PredictionMetrics(0, 0, 0, 0, 0.0)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.false_alarm_rate == 0.0

    def test_alarm_after_failure_is_not_tp(self):
        # An alarm on the failure day itself gives no repair lead time.
        trace = flat_trace(days=10, level=25.0, failure_day=0)
        predictor = ThresholdPredictor(threshold=20.0)
        metrics = evaluate(predictor, [trace])
        assert metrics.true_positives == 0
        assert metrics.false_negatives == 1


class TestFirstAlarmDay:
    def test_finds_first_day(self):
        trace = DiskTrace(disk_id=0)
        for day in range(10):
            level = 30.0 if day >= 6 else 0.0
            trace.samples.append(
                SmartSample(
                    0,
                    day,
                    {
                        "smart_5_reallocated_sectors": level,
                        "smart_187_reported_uncorrectable": 0.0,
                        "smart_188_command_timeout": 0.0,
                        "smart_197_pending_sectors": 0.0,
                        "smart_198_offline_uncorrectable": 0.0,
                        "smart_194_temperature": 30.0,
                        "smart_9_power_on_hours": 0.0,
                    },
                )
            )
        predictor = ThresholdPredictor(threshold=20.0, window_days=1)
        assert first_alarm_day(predictor, trace) == 6
