"""Ablation: FastPR vs repair pipelining (related work [20], ATC'17).

The paper positions FastPR against repair-efficient *techniques* like
repair pipelining, which chains helpers into partial-sum pipelines so
the repairing node ingests one chunk instead of k.  Both are
implemented here; this bench compares them (and their combination) on
the emulated testbed at a bandwidth-constrained operating point:

* pipelining collapses reconstruction's k-fold ingest, slashing
  reconstruction-only repair time;
* FastPR's migration/reconstruction coupling composes with it —
  pipelined FastPR is at least as fast as pipelined reconstruction.
"""

from conftest import run_once

from repro.bench.harness import Experiment, Panel
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
)
from repro.ec import make_codec
from repro.runtime.testbed import EmulatedTestbed
from repro.sim.workload import SimulationConfig, fixed_stf_chunk_count


def run_pipelining_ablation(runs: int = 1) -> Experiment:
    exp = Experiment(
        "repair_pipelining",
        "Star vs pipelined reconstruction on the emulated testbed",
    )
    panel = Panel(
        "RS(9,6), 21 nodes, bn/bd = 1.5 (network-constrained)",
        "strategy",
    )
    acc = {}
    for run in range(runs):
        cfg = SimulationConfig(
            num_nodes=21,
            num_stripes=28,
            n=9,
            k=6,
            num_hot_standby=3,
            chunk_size=1024 * 1024,
            disk_bandwidth=20e6,
            network_bandwidth=30e6,
            seed=31 + 97 * run,
        )
        cluster, stf = fixed_stf_chunk_count(cfg, 8)
        codec = make_codec("rs(9,6)")
        strategies = [
            ("migration", MigrationOnlyPlanner()),
            ("recon_star", ReconstructionOnlyPlanner(seed=run)),
            ("recon_pipelined", ReconstructionOnlyPlanner(seed=run, pipelined=True)),
            ("fastpr_star", FastPRPlanner(seed=run)),
            ("fastpr_pipelined", FastPRPlanner(seed=run, pipelined=True)),
        ]
        with EmulatedTestbed(
            cluster, codec, packet_size=64 * 1024
        ) as testbed:
            testbed.load_random_data(seed=cfg.seed)
            for label, planner in strategies:
                plan = planner.plan(cluster, stf)
                result = testbed.execute(plan)
                testbed.verify_plan(plan)
                acc.setdefault(label, []).append(result.time_per_chunk)
    panel.add_point(
        "per-chunk", {label: sum(v) / len(v) for label, v in acc.items()}
    )
    exp.panels.append(panel)
    return exp


def test_repair_pipelining(benchmark, save_result):
    exp = run_once(benchmark, run_pipelining_ablation)
    save_result(exp)
    panel = exp.panels[0]
    values = {s.label: s.values[0] for s in panel.series}
    # Pipelining slashes star reconstruction at this operating point.
    assert values["recon_pipelined"] < values["recon_star"] * 0.75
    # FastPR composes with pipelining: no slower than pipelined recon.
    assert values["fastpr_pipelined"] <= values["recon_pipelined"] * 1.10
    # And pipelined FastPR is the best (or ties best) overall.
    best = min(values.values())
    assert values["fastpr_pipelined"] <= best * 1.10
