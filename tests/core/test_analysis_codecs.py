"""Tests for the codec-parameterized analysis (RS vs LRC vs MSR)."""

import pytest

from repro.core.analysis import AnalyticalModel, PAPER_DEFAULT_PROFILE
from repro.ec import make_codec


class TestTrafficFraction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=100, k=6, traffic_fraction=0.0)
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=100, k=6, traffic_fraction=1.5)

    def test_fraction_scales_transmission(self):
        full = AnalyticalModel(num_nodes=100, k=6)
        half = AnalyticalModel(num_nodes=100, k=6, traffic_fraction=0.5)
        p = PAPER_DEFAULT_PROFILE
        assert full.reconstruction_time() - half.reconstruction_time() == (
            pytest.approx(3 * p.network_time)
        )

    def test_default_matches_eq5(self):
        model = AnalyticalModel(num_nodes=100, k=6, traffic_fraction=1.0)
        p = PAPER_DEFAULT_PROFILE
        assert model.reconstruction_time() == pytest.approx(
            2 * p.disk_time + 6 * p.network_time
        )


class TestForCodec:
    def test_rs_model(self):
        model = AnalyticalModel.for_codec(make_codec("rs(9,6)"), num_nodes=100)
        baseline = AnalyticalModel(num_nodes=100, k=6)
        assert model.reconstruction_time() == pytest.approx(
            baseline.reconstruction_time()
        )
        assert model.max_groups() == baseline.max_groups()

    def test_lrc_model(self):
        model = AnalyticalModel.for_codec(
            make_codec("lrc(12,2,2)"), num_nodes=100
        )
        assert model.repair_fanin == 6  # k' = k/l
        assert model.traffic_fraction == pytest.approx(1.0)
        assert model.max_groups() == 99 // 6

    def test_msr_model(self):
        codec = make_codec("msr(11,6)")
        model = AnalyticalModel.for_codec(codec, num_nodes=100)
        assert model.repair_fanin == 10  # d = 2k - 2
        assert model.traffic_fraction == pytest.approx(1 / 5)  # 1/alpha
        # Transmission term: d * (1/alpha) = 2 chunks' worth.
        p = PAPER_DEFAULT_PROFILE
        assert model.reconstruction_time() == pytest.approx(
            2 * p.disk_time + 2 * p.network_time
        )

    def test_msr_repairs_cheaper_than_rs_per_round(self):
        rs = AnalyticalModel.for_codec(make_codec("rs(14,10)"), num_nodes=100)
        msr = AnalyticalModel.for_codec(make_codec("msr(19,10)"), num_nodes=100)
        # Per-round reconstruction is far cheaper for MSR (2 chunks of
        # traffic vs 10)...
        assert msr.reconstruction_time() < rs.reconstruction_time() / 2
        # ...but MSR's d = 18 helpers reduce the per-round parallelism.
        assert msr.max_groups() < rs.max_groups()

    def test_reduction_ordering_at_paper_defaults(self):
        """Predictive repair helps most where repair traffic is worst."""
        rs = AnalyticalModel.for_codec(make_codec("rs(16,12)"), num_nodes=100)
        lrc = AnalyticalModel.for_codec(
            make_codec("lrc(12,2,2)"), num_nodes=100
        )
        assert rs.reduction_over_reactive() > lrc.reduction_over_reactive()

    def test_hot_standby_for_codec(self):
        model = AnalyticalModel.for_codec(
            make_codec("msr(11,6)"), num_nodes=100, hot_standby=3
        )
        assert model.is_hot_standby
        assert model.reconstruction_time(groups=3) < model.reconstruction_time(
            groups=9
        )
