"""repro — reproduction of "Fast Predictive Repair in Erasure-Coded Storage".

The package reimplements, in pure Python, the complete FastPR system
from Shen, Li and Lee (DSN 2019): the erasure-coding substrate, the
cluster model, the reconstruction-set and repair-scheduling algorithms,
the Section-III analytical model, a discrete-event simulator, an
emulated coordinator/agent testbed runtime, and a disk-failure
prediction substrate.

Quickstart::

    from repro import make_codec, StorageCluster, FastPRPlanner
    from repro.sim import RepairSimulator

See ``examples/quickstart.py`` for a runnable tour.
"""

from .ec import (
    ErasureCodec,
    LocalReconstructionCodec,
    MsrCodec,
    ReedSolomonCodec,
    make_codec,
)
from .cluster import StorageCluster, Stripe, ChunkLocation
from .core import (
    AnalyticalModel,
    BandwidthProfile,
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairPlan,
    RepairRound,
    RepairScenario,
    find_reconstruction_sets,
)

__version__ = "1.0.0"

__all__ = [
    "ErasureCodec",
    "LocalReconstructionCodec",
    "MsrCodec",
    "ReedSolomonCodec",
    "make_codec",
    "StorageCluster",
    "Stripe",
    "ChunkLocation",
    "AnalyticalModel",
    "BandwidthProfile",
    "FastPRPlanner",
    "MigrationOnlyPlanner",
    "ReconstructionOnlyPlanner",
    "RepairPlan",
    "RepairRound",
    "RepairScenario",
    "find_reconstruction_sets",
    "__version__",
]
