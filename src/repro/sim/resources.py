"""Per-node bandwidth resources for the repair simulator.

Each storage node owns three serial devices, mirroring the paper's
cost model (Section III):

* a disk with sequential bandwidth ``b_d`` shared by reads and writes,
* a NIC egress at ``b_n``,
* a NIC ingress at ``b_n``.

A chunk transfer occupies the sender's egress and the receiver's
ingress simultaneously for ``size / b_n`` — which is what yields the
``k * c / b_n`` receive serialization of reconstruction (Eq. 5) and
the hot-standby ingest bottleneck (Eq. 6) without hard-coding either
equation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cluster.chunk import NodeId
from .events import Acquire, Delay, Process, Release, Resource


@dataclass
class NodeDevices:
    """The three serial devices of one node."""

    node_id: NodeId
    disk_bandwidth: float
    network_bandwidth: float
    disk: Resource = field(init=False)
    nic_in: Resource = field(init=False)
    nic_out: Resource = field(init=False)

    def __post_init__(self):
        if self.disk_bandwidth <= 0 or self.network_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.disk = Resource(f"disk[{self.node_id}]")
        self.nic_in = Resource(f"nic_in[{self.node_id}]")
        self.nic_out = Resource(f"nic_out[{self.node_id}]")

    def read_time(self, size: int) -> float:
        return size / self.disk_bandwidth

    def write_time(self, size: int) -> float:
        return size / self.disk_bandwidth

    def transfer_time(self, size: int) -> float:
        return size / self.network_bandwidth


class DeviceMap:
    """Lazily builds :class:`NodeDevices` for a cluster's nodes."""

    def __init__(self, cluster):
        self._cluster = cluster
        self._devices: Dict[NodeId, NodeDevices] = {}
        #: traffic accounting in bytes
        self.bytes_read: int = 0
        self.bytes_transferred: int = 0
        self.bytes_written: int = 0

    def __getitem__(self, node_id: NodeId) -> NodeDevices:
        devices = self._devices.get(node_id)
        if devices is None:
            node = self._cluster.node(node_id)
            devices = NodeDevices(
                node_id=node_id,
                disk_bandwidth=node.disk_bandwidth or self._cluster.disk_bandwidth,
                network_bandwidth=(
                    node.network_bandwidth or self._cluster.network_bandwidth
                ),
            )
            self._devices[node_id] = devices
        return devices

    # -- composite process steps ----------------------------------------

    def read_chunk(self, node_id: NodeId, size: int) -> Process:
        """Process fragment: read ``size`` bytes from a node's disk."""
        devices = self[node_id]
        self.bytes_read += size
        yield Acquire(devices.disk)
        yield Delay(devices.read_time(size))
        yield Release(devices.disk)

    def write_chunk(self, node_id: NodeId, size: int) -> Process:
        """Process fragment: write ``size`` bytes to a node's disk."""
        devices = self[node_id]
        self.bytes_written += size
        yield Acquire(devices.disk)
        yield Delay(devices.write_time(size))
        yield Release(devices.disk)

    #: packets per chunk transfer (see :meth:`transfer_chunk`)
    TRANSFER_PACKETS = 8

    def transfer_chunk(self, src: NodeId, dst: NodeId, size: int) -> Process:
        """Process fragment: move ``size`` bytes from ``src`` to ``dst``.

        The transfer is split into :data:`TRANSFER_PACKETS` packets;
        each packet holds the sender's egress and the receiver's
        ingress for its duration.  Packetization approximates the fair
        bandwidth sharing of real NICs: when many flows converge on one
        receiver (the hot-standby ingest bottleneck), they interleave
        packet-by-packet instead of queueing whole chunks FCFS —
        without it, a single migration chunk would wait behind an
        entire round of reconstruction traffic.
        """
        self.bytes_transferred += size
        src_dev = self[src]
        dst_dev = self[dst]
        rate = min(src_dev.network_bandwidth, dst_dev.network_bandwidth)
        packets = max(1, self.TRANSFER_PACKETS)
        packet_time = size / rate / packets
        for _ in range(packets):
            yield Acquire(src_dev.nic_out)
            yield Acquire(dst_dev.nic_in)
            yield Delay(packet_time)
            yield Release(dst_dev.nic_in)
            yield Release(src_dev.nic_out)
