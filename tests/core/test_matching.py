"""Tests for bipartite matching and max-flow solvers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    DinicMaxFlow,
    IncrementalStripeMatcher,
    hopcroft_karp,
    match_one_per_target,
    stripe_helper_flow,
)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        # 3x3 complete bipartite graph.
        adjacency = [[0, 1, 2]] * 3
        size, match_left, match_right = hopcroft_karp(adjacency, 3)
        assert size == 3
        assert sorted(match_left) == [0, 1, 2]
        assert sorted(match_right) == [0, 1, 2]

    def test_no_edges(self):
        size, match_left, _ = hopcroft_karp([[], []], 2)
        assert size == 0
        assert match_left == [-1, -1]

    def test_bottleneck(self):
        # Both left vertices only reach right vertex 0.
        adjacency = [[0], [0]]
        size, _, _ = hopcroft_karp(adjacency, 1)
        assert size == 1

    def test_augmenting_path_needed(self):
        # Greedy would match 0-0 and leave 1 unmatched; HK must reroute.
        adjacency = [[0, 1], [0]]
        size, match_left, _ = hopcroft_karp(adjacency, 2)
        assert size == 2
        assert match_left[1] == 0
        assert match_left[0] == 1

    def test_consistency_of_matches(self):
        adjacency = [[0, 1], [1, 2], [2, 3], [0, 3]]
        size, match_left, match_right = hopcroft_karp(adjacency, 4)
        assert size == 4
        for u, v in enumerate(match_left):
            assert match_right[v] == u


class TestDinic:
    def test_simple_path(self):
        flow = DinicMaxFlow(3)
        flow.add_edge(0, 1, 5)
        flow.add_edge(1, 2, 3)
        assert flow.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        flow = DinicMaxFlow(4)
        flow.add_edge(0, 1, 2)
        flow.add_edge(0, 2, 2)
        flow.add_edge(1, 3, 2)
        flow.add_edge(2, 3, 2)
        assert flow.max_flow(0, 3) == 4

    def test_edge_flow_readback(self):
        flow = DinicMaxFlow(3)
        e1 = flow.add_edge(0, 1, 4)
        e2 = flow.add_edge(1, 2, 2)
        flow.max_flow(0, 2)
        assert flow.edge_flow(e1) == 2
        assert flow.edge_flow(e2) == 2

    def test_disconnected(self):
        flow = DinicMaxFlow(4)
        flow.add_edge(0, 1, 1)
        flow.add_edge(2, 3, 1)
        assert flow.max_flow(0, 3) == 0

    def test_classic_flow_network(self):
        # CLRS-style example.
        flow = DinicMaxFlow(6)
        flow.add_edge(0, 1, 16)
        flow.add_edge(0, 2, 13)
        flow.add_edge(1, 3, 12)
        flow.add_edge(2, 1, 4)
        flow.add_edge(2, 4, 14)
        flow.add_edge(3, 2, 9)
        flow.add_edge(3, 5, 20)
        flow.add_edge(4, 3, 7)
        flow.add_edge(4, 5, 4)
        assert flow.max_flow(0, 5) == 23


class TestStripeHelperFlow:
    def test_feasible(self):
        assignment = stripe_helper_flow(
            {"s1": ["a", "b", "c"], "s2": ["c", "d", "e"]}, k=2
        )
        assert assignment is not None
        used = [n for nodes in assignment.values() for n in nodes]
        assert len(used) == len(set(used)) == 4
        assert set(assignment["s1"]) <= {"a", "b", "c"}

    def test_infeasible(self):
        assert (
            stripe_helper_flow({"s1": ["a", "b"], "s2": ["a", "b"]}, k=2)
            is None
        )

    def test_exact_fit(self):
        assignment = stripe_helper_flow(
            {"s1": ["a", "b"], "s2": ["c", "d"]}, k=2
        )
        assert assignment == {"s1": ["a", "b"], "s2": ["c", "d"]}


class TestIncrementalMatcher:
    def test_add_and_assignment(self):
        matcher = IncrementalStripeMatcher(2)
        assert matcher.try_add("s1", ["a", "b", "c"])
        assert matcher.try_add("s2", ["c", "d", "e"])
        assignment = matcher.assignment()
        used = [n for nodes in assignment.values() for n in nodes]
        assert len(set(used)) == 4

    def test_rejects_infeasible_and_rolls_back(self):
        matcher = IncrementalStripeMatcher(2)
        assert matcher.try_add("s1", ["a", "b"])
        before = matcher.assignment()
        assert not matcher.try_add("s2", ["a", "b"])
        assert matcher.assignment() == before
        assert matcher.stripes == ["s1"]

    def test_rerouting_on_add(self):
        matcher = IncrementalStripeMatcher(1)
        assert matcher.try_add("s1", ["a", "b"])
        # s2 only reaches 'a'; the matcher must reroute s1 if needed.
        assert matcher.try_add("s2", ["a"])
        assignment = matcher.assignment()
        assert assignment["s2"] == ["a"]
        assert assignment["s1"] == ["b"]

    def test_too_few_candidates(self):
        matcher = IncrementalStripeMatcher(3)
        assert not matcher.try_add("s1", ["a", "b"])

    def test_duplicate_candidates_deduped(self):
        matcher = IncrementalStripeMatcher(2)
        assert not matcher.try_add("s1", ["a", "a"])
        assert matcher.try_add("s2", ["a", "a", "b"])

    def test_duplicate_stripe_rejected(self):
        matcher = IncrementalStripeMatcher(1)
        matcher.try_add("s1", ["a"])
        with pytest.raises(ValueError):
            matcher.try_add("s1", ["b"])

    def test_would_fit_does_not_mutate(self):
        matcher = IncrementalStripeMatcher(2)
        matcher.try_add("s1", ["a", "b", "c"])
        assert matcher.would_fit("s2", ["c", "d"])
        assert matcher.stripes == ["s1"]
        assert len(matcher) == 1

    def test_remove(self):
        matcher = IncrementalStripeMatcher(2)
        matcher.try_add("s1", ["a", "b"])
        matcher.try_add("s2", ["c", "d"])
        matcher.remove("s1")
        assert matcher.stripes == ["s2"]
        # Freed nodes are usable again.
        assert matcher.try_add("s3", ["a", "b"])

    def test_remove_unknown(self):
        matcher = IncrementalStripeMatcher(1)
        with pytest.raises(KeyError):
            matcher.remove("nope")

    def test_clone_is_independent(self):
        matcher = IncrementalStripeMatcher(1)
        matcher.try_add("s1", ["a", "b"])
        twin = matcher.clone()
        twin.try_add("s2", ["b", "c"])
        assert matcher.stripes == ["s1"]
        assert twin.stripes == ["s1", "s2"]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_failed_add_restores_state_exactly(self, seed):
        """The undo trail must leave no trace of a failed probe."""
        import random

        rng = random.Random(seed)
        k = rng.randint(1, 3)
        nodes = list(range(rng.randint(k, 8)))
        matcher = IncrementalStripeMatcher(k)
        for i in range(12):
            helpers = rng.sample(nodes, rng.randint(1, len(nodes)))
            before_assignment = matcher.assignment()
            before_stripes = matcher.stripes
            ok = matcher.try_add(f"s{i}", helpers)
            if not ok:
                assert matcher.assignment() == before_assignment
                assert matcher.stripes == before_stripes
            else:
                chosen = matcher.assignment()[f"s{i}"]
                assert len(chosen) == k
                assert set(chosen) <= set(helpers)
        # Global invariant: every node serves at most one slot.
        used = [n for nodes_ in matcher.assignment().values() for n in nodes_]
        assert len(used) == len(set(used))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_agrees_with_flow_solver(self, seed):
        """The incremental matcher and max-flow agree on feasibility."""
        import random

        rng = random.Random(seed)
        k = rng.randint(1, 3)
        nodes = list(range(rng.randint(k, 10)))
        stripes = {
            f"s{i}": rng.sample(nodes, rng.randint(k, len(nodes)))
            for i in range(rng.randint(1, 4))
        }
        flow_result = stripe_helper_flow(stripes, k)
        matcher = IncrementalStripeMatcher(k)
        incremental_ok = all(
            matcher.try_add(s, helpers) for s, helpers in stripes.items()
        )
        assert (flow_result is not None) == incremental_ok


class TestMatchOnePerTarget:
    def test_basic(self):
        result = match_one_per_target({"x": [1, 2], "y": [2, 3]})
        assert result is not None
        assert len(set(result.values())) == 2

    def test_infeasible(self):
        assert match_one_per_target({"x": [1], "y": [1]}) is None

    def test_forced_assignment(self):
        result = match_one_per_target({"x": [1, 2], "y": [1]})
        assert result == {"x": 2, "y": 1}

    def test_empty(self):
        assert match_one_per_target({}) == {}
