"""FastPR core: matching, Algorithms 1-2, analysis, planners."""

from .analysis import (
    AnalyticalModel,
    BandwidthProfile,
    PAPER_DEFAULT_PROFILE,
    gbit_per_s,
    mb_per_s,
    mib,
)
from .matching import (
    DinicMaxFlow,
    IncrementalStripeMatcher,
    hopcroft_karp,
    match_one_per_target,
    stripe_helper_flow,
)
from .placement import (
    HotStandbyPlacer,
    PlacementError,
    assign_scattered_destinations,
)
from .plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)
from .planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairPlanner,
    apply_plan,
    model_for,
    plan_predictive_repair,
    profile_from_cluster,
)
from .lrc_support import (
    LrcFastPRPlanner,
    LrcReconstructionOnlyPlanner,
    build_lrc_cluster,
    lrc_helper_candidates,
    split_by_repair_locality,
)
from .precompute import (
    CacheStats,
    PrecomputedFastPRPlanner,
    ReconstructionSetCache,
)
from .reactive import (
    MultiFailureRepairPlanner,
    UnrecoverableStripeError,
    plan_failed_node_repair,
    repair_after_failures,
    replan_after_midrepair_failure,
)
from .reconstruction_sets import (
    Algorithm1Stats,
    ReconstructionSetFinder,
    find_reconstruction_sets,
    helper_assignment,
)
from .scheduling import (
    RoundComposition,
    migration_quota,
    schedule_migration_only,
    schedule_reconstruction_only,
    schedule_repair_rounds,
)

__all__ = [
    "Algorithm1Stats",
    "AnalyticalModel",
    "BandwidthProfile",
    "ChunkRepairAction",
    "DinicMaxFlow",
    "FastPRPlanner",
    "HotStandbyPlacer",
    "IncrementalStripeMatcher",
    "LrcFastPRPlanner",
    "LrcReconstructionOnlyPlanner",
    "MigrationOnlyPlanner",
    "build_lrc_cluster",
    "lrc_helper_candidates",
    "split_by_repair_locality",
    "MultiFailureRepairPlanner",
    "PAPER_DEFAULT_PROFILE",
    "PrecomputedFastPRPlanner",
    "CacheStats",
    "ReconstructionSetCache",
    "UnrecoverableStripeError",
    "plan_failed_node_repair",
    "repair_after_failures",
    "replan_after_midrepair_failure",
    "PlacementError",
    "ReconstructionOnlyPlanner",
    "ReconstructionSetFinder",
    "RepairMethod",
    "RepairPlan",
    "RepairPlanner",
    "RepairRound",
    "RepairScenario",
    "RoundComposition",
    "apply_plan",
    "assign_scattered_destinations",
    "find_reconstruction_sets",
    "gbit_per_s",
    "helper_assignment",
    "hopcroft_karp",
    "match_one_per_target",
    "mb_per_s",
    "mib",
    "migration_quota",
    "model_for",
    "plan_predictive_repair",
    "profile_from_cluster",
    "schedule_migration_only",
    "schedule_reconstruction_only",
    "schedule_repair_rounds",
    "stripe_helper_flow",
]
