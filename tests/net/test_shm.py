"""Multi-process repair over shared-memory rings (DESIGN.md §13).

The same acceptance bar as tests/net/test_multiprocess.py, but every
frame crosses a ``multiprocessing.shared_memory`` ring instead of a
socket: agents and the coordinator are separate OS processes launched
through the actual CLI entry points (``fastpr agent --transport shm`` /
``fastpr repair --transport shm``), no peer spec anywhere — the whole
topology derives from the shared ``--workdir``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.net import shm_available, shm_ring_name
from repro.runtime import COORDINATOR_ID

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="needs POSIX shm + flock"
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

NODES = 8
STRIPES = 3
SEED = 11
STF = 2


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args):
    return [sys.executable, "-m", "repro.cli", *args]


def test_ring_names_deterministic_per_workdir(tmp_path):
    """Every process must derive the same names from the same workdir."""
    a = shm_ring_name(tmp_path, 0)
    assert a == shm_ring_name(tmp_path, 0)
    assert a != shm_ring_name(tmp_path, 1)
    assert a != shm_ring_name(tmp_path / "other", 0)
    assert shm_ring_name(tmp_path, COORDINATOR_ID).endswith("-c")


@pytest.mark.parametrize(
    "pipelining",
    ["off", "chain"],
    ids=["star", "chained-sliced"],
)
def test_multiprocess_shm_repair(tmp_path, pipelining):
    """RS(5,3) repair, one process per node, zero sockets.

    The ``chained-sliced`` variant routes every reconstruction through
    an ordered helper chain in 4-slice granularity — the same frames,
    the same rings, and the repaired bytes must still come out
    byte-identical.
    """
    extra_repair_args = ()
    if pipelining == "chain":
        extra_repair_args = ("--pipelining", "chain", "--slices", "4")
    snap = tmp_path / "cluster.json"
    work = tmp_path / "work"
    work.mkdir()
    subprocess.run(
        _cli(
            "snapshot", "--nodes", str(NODES), "--stripes", str(STRIPES),
            "--code", "rs(5,3)", "--hot-standby", "0",
            "--chunk-size", str(1 << 16), "--seed", str(SEED),
            "-o", str(snap),
        ),
        env=_env(), check=True, capture_output=True, timeout=60,
    )
    agents = [
        subprocess.Popen(
            _cli(
                "agent", "--snapshot", str(snap), "--node", str(node_id),
                "--transport", "shm", "--workdir", str(work),
                "--seed", str(SEED),
            ),
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        for node_id in range(NODES)
    ]
    try:
        repair = subprocess.run(
            _cli(
                "repair", "--snapshot", str(snap), "--stf", str(STF),
                "--seed", str(SEED), "--transport", "shm",
                "--workdir", str(work),
                "--journal", str(tmp_path / "repair.journal"),
                "--metrics-out", str(tmp_path / "metrics.json"),
                "-o", str(tmp_path / "summary.json"),
                *extra_repair_args,
            ),
            env=_env(), capture_output=True, text=True, timeout=240,
        )
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        assert "over shared memory" in repair.stdout
        if pipelining == "chain":
            assert "pipelining=chain slices=4" in repair.stdout

        # The coordinator's Shutdown broadcast must end every agent.
        deadline = time.monotonic() + 30
        for proc in agents:
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, out.decode()

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["transport"] == "shm"
        assert summary["pipelining"] == pipelining
        if pipelining == "chain":
            # Every chained reconstruction assembles all 4 slices.
            assert summary["slices_completed"] > 0
            assert summary["slices_completed"] % 4 == 0
        assert summary["chunks_repaired"] >= 1
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        assert summary["nacks"] == 0

        assert (tmp_path / "repair.journal").stat().st_size > 0
        metrics = (tmp_path / "metrics.json").read_text()
        assert "net_frames_sent_total" in metrics
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
