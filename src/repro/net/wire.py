"""Versioned binary framing for runtime messages.

Every message crossing a socket is one length-prefixed frame::

    +--------+---------+-----------+-------+----------+-------------+-------+
    | magic  | version | type code | epoch | meta len | payload len | crc32 |
    | 4s     | u16     | u16       | u32   | u32      | u32         | u32   |
    +--------+---------+-----------+-------+----------+-------------+-------+
    | meta: UTF-8 JSON envelope {version, src, dst, msg}                    |
    | payload: raw chunk bytes (DataPacket only; empty otherwise)           |
    +-----------------------------------------------------------------------+

All header integers are little-endian.  The CRC32 covers meta and
payload together, so a flipped bit anywhere in the body is rejected at
the receiver before any JSON parsing happens.  The ``epoch`` is copied
from the message (0 for epoch-less messages like heartbeats) so a
zombie coordinator's traffic is identifiable on the wire without
decoding the body.

Control fields travel as schema-validated JSON (the per-message
:class:`~repro.core.serde.Schema` installed by
:func:`~repro.runtime.messages.wire_message`); a
:class:`~repro.runtime.messages.DataPacket` payload travels as raw
bytes after the JSON — no base64 blow-up on the hot path.

The codec is transport-agnostic: :class:`repro.net.tcp.TcpNetwork`
rides on it, and tests feed it hand-corrupted buffers to prove the
rejection paths.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Tuple

from ..cluster.chunk import NodeId
from ..core.serde import Schema, SerdeError
from ..runtime.messages import WIRE_CODES

#: first bytes of every frame; a connection that does not start with
#: them is not speaking this protocol
MAGIC = b"FPR1"

#: bump on any incompatible frame-layout or envelope change
WIRE_VERSION = 1

#: magic, version, type code, epoch, meta length, payload length, crc32
HEADER = struct.Struct("<4sHHIIII")

#: refuse absurd frames before allocating buffers for them
MAX_META = 1 << 20  # 1 MiB of JSON control fields
MAX_PAYLOAD = 1 << 30  # 1 GiB chunk payload

#: the envelope wrapping every message's control fields
ENVELOPE_SCHEMA = Schema(
    kind="wire envelope",
    version=WIRE_VERSION,
    fields=("src", "dst", "msg"),
    required=("src", "dst", "msg"),
)


class WireError(ValueError):
    """A frame that must not be trusted (bad magic/version/CRC/schema)."""


def encode_frame_parts(src: NodeId, dst: NodeId, message) -> Tuple[bytes, bytes]:
    """Encode one routed message as an iovec of two wire buffers.

    Returns ``(head, payload)`` where ``head`` is the packed header
    plus JSON meta and ``payload`` is the message's own payload buffer,
    *not* copied — a ``DataPacket``'s chunk bytes go out exactly as the
    sender holds them (bytes, memoryview or numpy-backed view).  The
    caller hands both buffers to a scatter-gather write; the payload
    must not be mutated after this call (the transport may still
    reference it from its send queue).

    Raises:
        WireError: if the message type is not wire-registered.
    """
    cls = type(message)
    code = getattr(cls, "WIRE_CODE", None)
    if code is None or WIRE_CODES.get(code) is not cls:
        raise WireError(f"{cls.__name__} is not a wire-registered message")
    payload = b""
    if cls.WIRE_PAYLOAD_FIELD is not None:
        payload = getattr(message, cls.WIRE_PAYLOAD_FIELD)
    meta = json.dumps(
        ENVELOPE_SCHEMA.dump(
            {"src": src, "dst": dst, "msg": message.to_dict()}
        ),
        separators=(",", ":"),
    ).encode("utf-8")
    crc = zlib.crc32(meta)
    if len(payload):
        crc = zlib.crc32(payload, crc)
    header = HEADER.pack(
        MAGIC,
        WIRE_VERSION,
        code,
        getattr(message, "epoch", 0),
        len(meta),
        len(payload),
        crc,
    )
    return header + meta, payload


def encode_frame(src: NodeId, dst: NodeId, message) -> bytes:
    """Encode one routed message as a complete contiguous frame.

    Convenience join of :func:`encode_frame_parts` for tests and
    loopback paths; the socket hot path writes the parts directly.

    Raises:
        WireError: if the message type is not wire-registered.
    """
    return b"".join(encode_frame_parts(src, dst, message))


def parse_header(header: bytes) -> Tuple[int, int, int, int, int]:
    """Validate a frame header; returns (code, epoch, meta_len, payload_len, crc).

    Raises:
        WireError: on bad magic, unsupported version, unknown type code
            or implausible lengths — all cases where the byte stream
            can no longer be trusted and the connection should drop.
    """
    magic, version, code, epoch, meta_len, payload_len, crc = HEADER.unpack(
        header
    )
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (expected {WIRE_VERSION})"
        )
    if code not in WIRE_CODES:
        raise WireError(f"unknown message type code {code}")
    if meta_len > MAX_META:
        raise WireError(f"meta length {meta_len} exceeds {MAX_META}")
    if payload_len > MAX_PAYLOAD:
        raise WireError(f"payload length {payload_len} exceeds {MAX_PAYLOAD}")
    return code, epoch, meta_len, payload_len, crc


def decode_body(
    code: int, crc: int, meta: bytes, payload: bytes
) -> Tuple[NodeId, NodeId, object]:
    """Decode a frame body; returns ``(src, dst, message)``.

    ``meta`` and ``payload`` may be any bytes-like buffers (the socket
    path passes ``memoryview`` slices into its receive buffer); the
    payload view is handed to the message verbatim, so a ``DataPacket``
    carries a zero-copy view of the received frame.

    Raises:
        WireError: on CRC mismatch, malformed JSON, envelope/schema
            violations, or a type-code/envelope disagreement.
    """
    actual = zlib.crc32(meta)
    if len(payload):
        actual = zlib.crc32(payload, actual)
    if actual != crc:
        raise WireError("frame CRC mismatch (corrupted in flight)")
    try:
        envelope = ENVELOPE_SCHEMA.load(json.loads(str(meta, "utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame meta: {exc}") from None
    except SerdeError as exc:
        raise WireError(str(exc)) from None
    cls = WIRE_CODES[code]
    try:
        message = cls.from_dict(envelope["msg"], payload=payload)
    except SerdeError as exc:
        raise WireError(str(exc)) from None
    except TypeError as exc:
        raise WireError(f"malformed {cls.__name__} body: {exc}") from None
    return envelope["src"], envelope["dst"], message


def decode_frame(frame: bytes) -> Tuple[NodeId, NodeId, object]:
    """Decode one complete frame buffer (tests and loopback paths).

    Raises:
        WireError: on any framing violation, including trailing bytes.
    """
    if len(frame) < HEADER.size:
        raise WireError(f"short frame: {len(frame)} < {HEADER.size} bytes")
    code, _epoch, meta_len, payload_len, crc = parse_header(
        frame[: HEADER.size]
    )
    body = frame[HEADER.size :]
    if len(body) != meta_len + payload_len:
        raise WireError(
            f"frame length mismatch: {len(body)} body bytes, header "
            f"declares {meta_len} + {payload_len}"
        )
    return decode_body(code, crc, body[:meta_len], body[meta_len:])
