#!/usr/bin/env python3
"""Quickstart: plan and simulate a predictive repair with FastPR.

Builds the paper's default simulation setup (100 nodes, 1,000 RS(9,6)
stripes, 64 MB chunks, 100 MB/s disks, 1 Gb/s network), flags one node
as soon-to-fail, and compares FastPR against the paper's two baselines
and the analytical optimum.

Run:
    python examples/quickstart.py
"""

from repro import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairScenario,
)
from repro.core import model_for
from repro.sim import (
    PAPER_SIM_CONFIG,
    build_cluster_with_stf,
    evaluate_plan,
)


def main() -> None:
    config = PAPER_SIM_CONFIG.with_(seed=42)  # 1,000 stripes, RS(9,6)
    cluster, stf_node = build_cluster_with_stf(config)
    chunks = cluster.load_of(stf_node)
    print(f"cluster: {cluster}")
    print(f"soon-to-fail node: {stf_node} storing {chunks} chunks")
    print()

    planners = [
        FastPRPlanner(seed=1, group_size=64),
        ReconstructionOnlyPlanner(seed=1, group_size=64),
        MigrationOnlyPlanner(),
    ]
    print(f"{'approach':16s} {'rounds':>6s} {'migrated':>9s} "
          f"{'reconstructed':>14s} {'total (s)':>10s} {'s/chunk':>8s}")
    results = {}
    for planner in planners:
        plan = planner.plan(cluster, stf_node)
        plan.validate(cluster)  # raises if any invariant is broken
        result = evaluate_plan(cluster, plan)
        results[planner.name] = result
        print(
            f"{planner.name:16s} {plan.num_rounds:>6d} "
            f"{plan.migrated_chunks:>9d} {plan.reconstructed_chunks:>14d} "
            f"{result.total_time:>10.1f} {result.time_per_chunk:>8.3f}"
        )

    model = model_for(cluster, RepairScenario.SCATTERED, k=config.k)
    optimum = model.predictive_time_per_chunk()
    print(f"{'optimum (Eq. 2)':16s} {'-':>6s} {'-':>9s} {'-':>14s} "
          f"{optimum * chunks:>10.1f} {optimum:>8.3f}")
    print()

    fast = results["fastpr"]
    recon = results["reconstruction"]
    mig = results["migration"]
    print(
        f"FastPR cuts reconstruction-only by "
        f"{1 - fast.total_time / recon.total_time:.1%} and migration-only "
        f"by {1 - fast.total_time / mig.total_time:.1%} "
        f"(paper, RS(9,6) scattered: similar double-digit reductions)."
    )
    print(
        f"FastPR is {fast.time_per_chunk / optimum - 1:.1%} above the "
        f"analytical optimum (paper: +11.4% on average)."
    )


if __name__ == "__main__":
    main()
