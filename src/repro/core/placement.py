"""Destination selection for repaired chunks (Fig. 4(c)).

Scattered repair must place each repaired chunk on a healthy node that
stores no chunk of the same stripe, and — within a round — every
repaired chunk on a distinct node, so writes parallelize.  The paper
solves this as a bipartite maximum matching (stripes x nodes) and notes
that with ``M - n >= c_m + c_r`` Hall's theorem guarantees a perfect
matching.

Hot-standby repair simply spreads repaired chunks evenly over the ``h``
standby nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cluster.chunk import ChunkLocation, NodeId
from ..cluster.cluster import StorageCluster
from .matching import match_one_per_target

ChunkKey = Tuple[int, int]  # (stripe_id, chunk_index)


class PlacementError(RuntimeError):
    """Raised when no valid destination assignment exists."""


def assign_scattered_destinations(
    cluster: StorageCluster,
    stf_node: NodeId,
    chunks: Sequence[ChunkLocation],
    allow_reuse_fallback: bool = True,
    stripe_reservations: Optional[Dict[int, set]] = None,
) -> Dict[ChunkKey, NodeId]:
    """Choose one destination node per repaired chunk of a round.

    Args:
        cluster: cluster metadata.
        stf_node: the STF node (never a destination).
        chunks: the round's repaired chunks (migrations + reconstructions).
        allow_reuse_fallback: if the strict one-node-per-chunk matching
            is infeasible (small clusters violating ``M - n >= c_m+c_r``),
            fall back to least-loaded placement that may reuse a
            destination within the round.
        stripe_reservations: stripe_id -> nodes already promised a
            repaired chunk of that stripe by a concurrent plan (used by
            multi-failure repair so two plans never co-locate two
            chunks of one stripe).

    Returns:
        (stripe_id, chunk_index) -> destination node id.

    Raises:
        PlacementError: if some stripe has no eligible destination at
            all (fault tolerance could not be preserved).
    """
    reservations = stripe_reservations or {}
    candidates: Dict[ChunkKey, List[NodeId]] = {}
    for chunk in chunks:
        reserved = reservations.get(chunk.stripe_id, set())
        eligible = [
            node
            for node in cluster.eligible_destinations(
                chunk.stripe_id, exclude={stf_node}
            )
            if node not in reserved
        ]
        if not eligible:
            raise PlacementError(
                f"no eligible destination for stripe {chunk.stripe_id}: "
                "every healthy node already stores one of its chunks"
            )
        candidates[(chunk.stripe_id, chunk.chunk_index)] = eligible
    matched = match_one_per_target(candidates)
    if matched is not None:
        return dict(matched)
    if not allow_reuse_fallback:
        raise PlacementError(
            f"cannot place {len(chunks)} repaired chunks on distinct nodes; "
            f"cluster too small (Hall condition violated)"
        )
    # Fallback: greedy least-loaded, allowing intra-round reuse.
    assignment: Dict[ChunkKey, NodeId] = {}
    extra_load: Dict[NodeId, int] = {}
    for key, eligible in candidates.items():
        best = min(
            eligible,
            key=lambda nid: (cluster.load_of(nid) + extra_load.get(nid, 0), nid),
        )
        assignment[key] = best
        extra_load[best] = extra_load.get(best, 0) + 1
    return assignment


class HotStandbyPlacer:
    """Round-robin spreader over the hot-standby nodes.

    Keeps a cursor across rounds so the total distribution stays even
    (the paper: "we simply evenly distribute the repaired chunks to all
    h hot-standby nodes").
    """

    def __init__(self, cluster: StorageCluster, standby_ids: Optional[Iterable[NodeId]] = None):
        ids = list(standby_ids) if standby_ids is not None else cluster.hot_standby_ids()
        if not ids:
            raise PlacementError("hot-standby repair requires standby nodes")
        self._ids = sorted(ids)
        self._cursor = 0

    def assign(self, chunks: Sequence[ChunkLocation]) -> Dict[ChunkKey, NodeId]:
        assignment: Dict[ChunkKey, NodeId] = {}
        for chunk in chunks:
            node = self._ids[self._cursor % len(self._ids)]
            self._cursor += 1
            assignment[(chunk.stripe_id, chunk.chunk_index)] = node
        return assignment
