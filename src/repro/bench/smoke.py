"""One instrumented repair, summarized as ``BENCH_repair_rounds.json``.

CI's ``bench-smoke`` job runs this module against a small synthetic
cluster and uploads the result as an artifact, so every commit carries
a machine-readable record of what one repair round actually costs on
the emulated testbed: per-round durations, the migration versus
reconstruction split, and the headline transport/agent counters.  The
document rides on :class:`repro.core.serde.Schema`, and the generated
file is schema-validated before it is written — an empty or malformed
run fails the job instead of uploading garbage.

The module also measures the socket transport itself: a loopback
:class:`~repro.net.TcpNetwork` streams DataPacket frames at 64 KiB and
1 MiB payloads, and the frames/s + MB/s land in
``BENCH_net_throughput.json`` — so a wire-codec or event-loop
regression shows up as a number, not a hunch.

The hot-path sweep (``--hotpath``) goes further: GF(256) kernel GB/s,
plus single-stream and parallel DataPacket throughput on *every*
transport backend (in-memory, TCP, shared-memory rings), with the
pre-PR loopback TCP numbers embedded as a fixed baseline so the
committed ``BENCH_hotpath.json`` carries its own speedup evidence.
``--fail-on-regression`` turns the committed documents into a gate:
re-running against a schema-identical config that comes out more than
the tolerance slower exits non-zero (``make bench-smoke``).

Usage::

    python -m repro.bench.smoke -o BENCH_repair_rounds.json \
        --net-output BENCH_net_throughput.json \
        --hotpath BENCH_hotpath.json --fail-on-regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from ..core.serde import Schema

#: Counters copied verbatim into the bench document.  A short, stable
#: list — the full registry goes to ``--metrics-out`` on real runs; the
#: bench file only tracks the totals worth eyeballing across commits.
_HEADLINE_COUNTERS = (
    "repair_actions_total",
    "repair_retries_total",
    "repair_replans_total",
    "agent_bytes_sent_total",
    "agent_bytes_received_total",
    "transport_bytes_sent_total",
)

BENCH_SCHEMA = Schema(
    "bench-repair-rounds",
    version=1,
    fields=("config", "result", "rounds", "counters"),
    required=("config", "result", "rounds", "counters"),
)


def run_smoke(seed: int = 7) -> dict:
    """Run one small instrumented repair and return the bench document.

    The cluster shape matches the test fixtures (12 nodes, RS(5,3),
    64 KiB chunks) but with enough stripes that the repair spans
    multiple rounds, so the per-round breakdown is never trivial.
    """
    from ..cluster import StorageCluster
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner
    from ..ec import make_codec
    from ..obs import MetricsRegistry, Tracer, breakdown_from_trace
    from ..runtime.testbed import EmulatedTestbed

    nodes, stripes, stf = 12, 20, 2
    codec = make_codec("rs(5,3)")
    cluster = StorageCluster.random(
        nodes, stripes, codec.n, codec.k, seed=seed, chunk_size=1 << 16
    )
    cluster.node(stf).mark_soon_to_fail()
    plan = FastPRPlanner(
        scenario=RepairScenario.SCATTERED, seed=seed
    ).plan(cluster, stf)
    plan.validate(cluster)

    metrics = MetricsRegistry()
    tracer = Tracer()
    with EmulatedTestbed(
        cluster, codec, metrics=metrics, tracer=tracer
    ) as testbed:
        testbed.load_random_data(seed=seed)
        result = testbed.execute(plan)
        testbed.verify_plan(plan, result)

    breakdown = breakdown_from_trace(tracer.to_dict())
    counters = {
        metric.name: metric.total()
        for metric in metrics
        if metric.name in _HEADLINE_COUNTERS
    }
    body = {
        "config": {
            "nodes": nodes,
            "stripes": stripes,
            "code": f"rs({codec.n},{codec.k})",
            "chunk_size": cluster.chunk_size,
            "seed": seed,
            "stf": stf,
            "scenario": RepairScenario.SCATTERED.value,
        },
        "result": {
            "chunks_repaired": result.chunks_repaired,
            "total_time_s": result.total_time,
            "bytes_transferred": result.bytes_transferred,
            "retries": result.retries,
            "replans": result.replans,
        },
        "rounds": [r.to_dict() for r in breakdown.rounds],
        "counters": counters,
    }
    return BENCH_SCHEMA.dump(body)


def validate(document: dict) -> dict:
    """Schema-check a bench document; reject empty-round runs."""
    body = BENCH_SCHEMA.load(document)
    if not body["rounds"]:
        raise ValueError("bench document has no repair rounds")
    if body["result"]["chunks_repaired"] <= 0:
        raise ValueError("bench repair recovered no chunks")
    return body


NET_BENCH_SCHEMA = Schema(
    "bench-net-throughput",
    version=1,
    fields=("transport", "runs", "pipelining"),
    required=("transport", "runs"),
)

#: payload sizes the throughput sweep always covers
_NET_PAYLOAD_SIZES = (1 << 16, 1 << 20)  # 64 KiB, 1 MiB


def run_net_throughput(
    sizes: Sequence[int] = _NET_PAYLOAD_SIZES, frames: int = 32
) -> dict:
    """Stream frames over a loopback TCP socket; return the bench doc.

    Endpoints attach unthrottled (``bandwidth=None``), so the numbers
    measure the wire codec + asyncio socket path, not the emulated NIC.
    """
    from ..net import TcpNetwork
    from ..runtime.messages import DataPacket

    runs = []
    for size in sizes:
        net = TcpNetwork(send_queue_capacity=128)
        try:
            net.attach(0, None)
            net.attach(1, None)
            host, port = net.listen()
            net.add_peer(1, host, port)
            payload = bytes(size)
            inbox = net.endpoint(1).inbox
            # one warm-up frame establishes the connection off the clock
            net.send(0, 1, DataPacket(0, 0, 0, 0, payload))
            inbox.get(timeout=60)
            started = time.perf_counter()
            for i in range(frames):
                net.send(0, 1, DataPacket(0, 0, 0, i * size, payload))
            for _ in range(frames):
                inbox.get(timeout=60)
            elapsed = time.perf_counter() - started
        finally:
            net.close()
        runs.append(
            {
                "payload_bytes": size,
                "frames": frames,
                "seconds": elapsed,
                "frames_per_s": frames / elapsed,
                "mb_per_s": frames * size / elapsed / 1e6,
            }
        )
    return NET_BENCH_SCHEMA.dump({"transport": "tcp-loopback", "runs": runs})


def validate_net(document: dict) -> dict:
    """Schema-check a net-throughput document; reject empty sweeps."""
    body = NET_BENCH_SCHEMA.load(document)
    if not body["runs"]:
        raise ValueError("net bench document has no runs")
    for run in body["runs"]:
        if run["frames"] <= 0 or run["mb_per_s"] <= 0:
            raise ValueError(f"degenerate net bench run: {run}")
    pipelining = body.get("pipelining")
    if pipelining is not None:
        for mode in ("star", "chain"):
            if pipelining[mode]["seconds"] <= 0:
                raise ValueError(f"degenerate pipelining {mode} run")
        if pipelining["chunks"] <= 0:
            raise ValueError("pipelining bench repaired no chunks")
    return body


#: the chained-repair latency gate: chain must finish in at most this
#: fraction of the star (store-and-forward) run on the same plan
_MAX_CHAIN_RATIO = 0.5


def run_pipelining_bench(
    slices: int = 16,
    seed: int = 7,
    chunk_bytes: int = 4 << 20,
    network_mb_s: float = 40.0,
    stripes: int = 4,
) -> dict:
    """Chained versus store-and-forward repair on a bandwidth-bound rig.

    An in-memory RS(9,6) testbed with the NIC as the bottleneck
    (4 MiB chunks at 40 MB/s links, disks an order of magnitude
    faster) runs the *same* reconstruction plan twice through
    :class:`repro.RepairSession`: once star (every helper fans in to
    the destination, whose ingest serializes ``k`` uploads) and once
    chained with slice-granular streaming (each helper adds its
    coefficient-scaled slice and forwards one stream).  Repair
    pipelining bounds the chained time by roughly ``1/k`` of the
    fan-in time plus the pipeline fill; the committed gate only
    demands ``chain <= 0.5 * star``, loose enough for scheduler noise
    and strict enough that losing the overlap (the whole point of the
    chain) fails the bench.
    """
    from ..cluster import StorageCluster
    from ..core.planner import ReconstructionOnlyPlanner
    from ..ec import make_codec
    from ..session import RepairSession

    codec = make_codec("rs(9,6)")
    cluster = StorageCluster.random(
        12,
        stripes,
        codec.n,
        codec.k,
        seed=seed,
        disk_bandwidth=10 * network_mb_s * 1e6,
        network_bandwidth=network_mb_s * 1e6,
        chunk_size=chunk_bytes,
    )
    stf = max(cluster.storage_node_ids(), key=cluster.load_of)
    cluster.node(stf).mark_soon_to_fail()
    plan = ReconstructionOnlyPlanner(seed=seed).plan(cluster, stf)
    summaries = {}
    for mode, num_slices in (("off", 0), ("chain", slices)):
        session = RepairSession(
            cluster,
            codec,
            plan,
            pipelining=mode,
            slices=num_slices,
            seed=seed,
        )
        summaries[mode] = session.run()
    star, chain = summaries["off"], summaries["chain"]
    return {
        "code": f"rs({codec.n},{codec.k})",
        "chunk_bytes": cluster.chunk_size,
        "chunks": star.chunks_repaired,
        "slices": slices,
        "network_mb_s": network_mb_s,
        "star": {"seconds": star.total_time},
        "chain": {"seconds": chain.total_time},
        # "speedup" in the name keeps the ratio out of the exact-match
        # comparability check (it varies run to run); the hard latency
        # gate below is what enforces the bound.
        "chain_vs_star_speedup": star.total_time / chain.total_time,
        "max_chain_ratio": _MAX_CHAIN_RATIO,
    }


def check_pipelining_gate(pipelining: dict) -> Optional[str]:
    """The chained-latency acceptance bar; a problem string or None."""
    ratio = pipelining["chain"]["seconds"] / pipelining["star"]["seconds"]
    limit = pipelining["max_chain_ratio"]
    if ratio > limit:
        return (
            f"chained repair ran at {ratio:.2f}x of store-and-forward "
            f"(gate: <= {limit:.2f}x); the chain lost its overlap"
        )
    return None


# ----------------------------------------------------------------------
# hot-path bench: GF kernels + per-transport repair-stream throughput
# ----------------------------------------------------------------------

HOTPATH_SCHEMA = Schema(
    "bench-hotpath",
    version=1,
    fields=("kernels", "transports", "baseline"),
    required=("kernels", "transports", "baseline"),
)

#: loopback TCP MB/s measured at the commit before the hot-path PR
#: (per-frame queue round-trips, payload joins, per-row GF loops) —
#: the fixed reference the committed speedups are computed against.
_PRE_PR_TCP_MB_S = {"65536": 83.5, "1048576": 163.1}

#: transports the hot-path sweep covers
_HOTPATH_TRANSPORTS = ("memory", "tcp", "shm")


def run_gf_kernels(buffer_bytes: int = 8 << 20, repeats: int = 3) -> dict:
    """Time the vectorized GF(256) kernels; returns GB/s figures.

    Reported rates are input bytes over best-of-``repeats`` wall time:
    ``gf_mul_gb_s``/``gf_addmul_gb_s`` stream one flat buffer,
    ``gf_matmul_gb_s`` is the input rate of a parity-shaped (3, 6)
    coefficient matrix over six 1 MiB shards — the decode-side product
    the repair pipeline runs per stripe group.
    """
    import numpy as np

    from ..ec.galois import gf_addmul_bytes, gf_matmul_bytes, gf_mul_bytes

    def best(fn) -> float:
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    data = np.tile(np.arange(256, dtype=np.uint8), buffer_bytes // 256)
    out = np.empty_like(data)
    acc = np.zeros_like(data)
    t_mul = best(lambda: gf_mul_bytes(37, data, out=out))
    t_addmul = best(lambda: gf_addmul_bytes(acc, 91, data))
    rows, shards_n, length = 3, 6, 1 << 20
    shards = np.tile(
        np.arange(256, dtype=np.uint8), shards_n * length // 256
    ).reshape(shards_n, length)
    matrix = np.arange(1, rows * shards_n + 1, dtype=np.uint8).reshape(
        rows, shards_n
    )
    t_matmul = best(lambda: gf_matmul_bytes(matrix, shards))
    return {
        "buffer_bytes": buffer_bytes,
        "gf_mul_gb_s": buffer_bytes / t_mul / 1e9,
        "gf_addmul_gb_s": buffer_bytes / t_addmul / 1e9,
        "matmul_shape": [rows, shards_n, length],
        "gf_matmul_gb_s": shards_n * length / t_matmul / 1e9,
    }


def _make_loopback(transport: str, num_nodes: int):
    """A wired loopback network with nodes ``0..num_nodes-1`` attached.

    Odd node ids are registered as peers (tcp/shm), so every frame for
    them crosses the real backend; even ids send.  The in-memory fabric
    needs no wiring.
    """
    if transport == "memory":
        from ..runtime.transport import Network

        net = Network()
        for i in range(num_nodes):
            net.attach(i, None)
        return net
    if transport == "tcp":
        from ..net import TcpNetwork

        net = TcpNetwork(send_queue_capacity=128)
        for i in range(num_nodes):
            net.attach(i, None)
        host, port = net.listen()
        for i in range(1, num_nodes, 2):
            net.add_peer(i, host, port)
        return net
    if transport == "shm":
        from ..net import ShmNetwork

        net = ShmNetwork(ring_capacity=32 << 20)
        for i in range(num_nodes):
            net.attach(i, None)
        name = net.listen()
        for i in range(1, num_nodes, 2):
            net.add_peer(i, name)
        return net
    raise ValueError(f"unknown transport {transport!r}")


def _stream(net, src: int, dst: int, size: int, frames: int) -> float:
    """Send ``frames`` DataPackets src->dst and drain them; seconds."""
    from ..runtime.messages import DataPacket

    payload = bytes(size)
    inbox = net.endpoint(dst).inbox
    # one warm-up frame establishes the connection off the clock
    net.send(src, dst, DataPacket(0, 0, 0, 0, payload))
    inbox.get(timeout=120)
    started = time.perf_counter()
    for i in range(frames):
        net.send(src, dst, DataPacket(0, 0, 0, i * size, payload))
    for _ in range(frames):
        inbox.get(timeout=120)
    return time.perf_counter() - started


def run_transport_throughput(
    transport: str,
    sizes: Sequence[int] = _NET_PAYLOAD_SIZES,
    frames: int = 32,
    parallel_streams: int = 4,
    parallel_frames: int = 16,
    parallel_size: int = 1 << 20,
    repeats: int = 3,
) -> dict:
    """One transport's single-stream and parallel repair throughput.

    Single-stream replays ``run_net_throughput``'s shape per payload
    size; the parallel figure runs ``parallel_streams`` concurrent
    sender threads on disjoint node pairs of the *same* network —
    loopback TCP shares one event loop, shm shares one ring — and
    reports aggregate MB/s over wall time, which is what a multi-chunk
    repair round actually pushes through the backend.

    These figures gate commits (``--fail-on-regression``), so they are
    measured best-of-``repeats`` and small payloads stream at least
    8 MiB — scheduler hiccups must not read as regressions.
    """
    import threading as threading_mod

    single = []
    for size in sizes:
        n_frames = max(frames, (8 << 20) // size)
        net = _make_loopback(transport, 2)
        try:
            elapsed = min(
                _stream(net, 0, 1, size, n_frames) for _ in range(repeats)
            )
        finally:
            if hasattr(net, "close"):
                net.close()
        single.append(
            {
                "payload_bytes": size,
                "frames": n_frames,
                "seconds": elapsed,
                "frames_per_s": n_frames / elapsed,
                "mb_per_s": n_frames * size / elapsed / 1e6,
            }
        )
    net = _make_loopback(transport, 2 * parallel_streams)
    errors: list = []

    def worker(pair: int) -> None:
        try:
            _stream(net, 2 * pair, 2 * pair + 1, parallel_size, parallel_frames)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    try:
        threads = [
            threading_mod.Thread(target=worker, args=(pair,))
            for pair in range(parallel_streams)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        if hasattr(net, "close"):
            net.close()
    if errors:
        raise errors[0]
    total = parallel_streams * parallel_frames * parallel_size
    return {
        "transport": transport,
        "single": single,
        "parallel": {
            "streams": parallel_streams,
            "payload_bytes": parallel_size,
            "frames": parallel_frames,
            "seconds": elapsed,
            "mb_per_s": total / elapsed / 1e6,
        },
    }


def run_hotpath(frames: int = 32, parallel_streams: int = 4) -> dict:
    """The hot-path bench document (``BENCH_hotpath.json``).

    GF kernel GB/s plus single-stream and parallel DataPacket
    throughput on every transport backend, with the pre-PR loopback TCP
    numbers embedded as the fixed baseline and the measured speedup
    computed against them.
    """
    from ..net import shm_available

    kernels = run_gf_kernels()
    transports = []
    for transport in _HOTPATH_TRANSPORTS:
        if transport == "shm" and not shm_available():
            continue
        transports.append(
            run_transport_throughput(
                transport, frames=frames, parallel_streams=parallel_streams
            )
        )
    tcp = next(t for t in transports if t["transport"] == "tcp")
    speedup = {}
    for run in tcp["single"]:
        key = str(run["payload_bytes"])
        if key in _PRE_PR_TCP_MB_S:
            speedup[key] = run["mb_per_s"] / _PRE_PR_TCP_MB_S[key]
    return HOTPATH_SCHEMA.dump(
        {
            "kernels": kernels,
            "transports": transports,
            "baseline": {
                "pre_pr_tcp_mb_per_s": dict(_PRE_PR_TCP_MB_S),
                "tcp_speedup": speedup,
            },
        }
    )


def validate_hotpath(document: dict) -> dict:
    """Schema-check a hot-path document; reject degenerate sweeps."""
    body = HOTPATH_SCHEMA.load(document)
    for key in ("gf_mul_gb_s", "gf_addmul_gb_s", "gf_matmul_gb_s"):
        if body["kernels"].get(key, 0) <= 0:
            raise ValueError(f"degenerate kernel rate {key}")
    if not body["transports"]:
        raise ValueError("hotpath document covers no transports")
    for entry in body["transports"]:
        if not entry["single"] or entry["parallel"]["mb_per_s"] <= 0:
            raise ValueError(
                f"degenerate throughput for {entry['transport']!r}"
            )
        for run in entry["single"]:
            if run["mb_per_s"] <= 0:
                raise ValueError(f"degenerate single-stream run: {run}")
    if not body["baseline"].get("tcp_speedup"):
        raise ValueError("hotpath document computed no baseline speedup")
    return body


# ----------------------------------------------------------------------
# regression gate: committed bench documents must not get slower
# ----------------------------------------------------------------------

#: leaf suffixes that are performance figures (higher is better)
_PERF_SUFFIXES = ("mb_per_s", "frames_per_s", "_gb_s")

#: path components that vary run-to-run and are neither config nor a
#: gated performance figure
_VOLATILE_COMPONENTS = ("seconds", "speedup", "total_time")


def _numeric_leaves(node, path="") -> dict:
    out = {}
    if isinstance(node, dict):
        for key in node:
            out.update(_numeric_leaves(node[key], f"{path}.{key}"))
    elif isinstance(node, (list, tuple)):
        for i, item in enumerate(node):
            out.update(_numeric_leaves(item, f"{path}[{i}]"))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[path] = float(node)
    return out


def check_regressions(
    old: dict, new: dict, tolerance: float = 0.30
) -> list:
    """Compare two bench documents; list perf figures that regressed.

    Only *schema-identical configs* gate: the documents must carry the
    same schema version, and every shared non-volatile, non-perf
    numeric leaf (payload sizes, frame counts, matrix shapes, embedded
    baselines) must match exactly — otherwise the sweep measured
    something else and the result is ``[]`` (not comparable, not a
    failure).  A perf leaf regresses when the new value drops more than
    ``tolerance`` below the committed one.
    """

    def is_perf(path: str) -> bool:
        return path.endswith(_PERF_SUFFIXES)

    def is_volatile(path: str) -> bool:
        return any(part in path for part in _VOLATILE_COMPONENTS)

    if old.get("version") != new.get("version"):
        return []
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    shared = set(old_leaves) & set(new_leaves)
    for path in shared:
        if is_perf(path) or is_volatile(path):
            continue
        if old_leaves[path] != new_leaves[path]:
            return []  # different config: not comparable
    problems = []
    for path in sorted(shared):
        if not is_perf(path):
            continue
        committed, measured = old_leaves[path], new_leaves[path]
        if committed > 0 and measured < committed * (1 - tolerance):
            problems.append(
                f"{path}: {measured:.2f} is more than {tolerance:.0%} "
                f"below the committed {committed:.2f}"
            )
    return problems


DURABILITY_SCHEMA = Schema(
    "bench-durability",
    version=1,
    fields=("config", "processes"),
    required=("config", "processes"),
)


def run_durability(trials: int = 50, years: float = 1.0, seed: int = 7) -> dict:
    """Monte-Carlo durability study; returns ``BENCH_durability.json``.

    CI's ``lifetime-sim`` job runs this with the defaults: 50 trials of
    one simulated year on an RS(9,6) cluster under two failure
    processes — Weibull renewals and SMART-trace replay through the
    threshold predictor — each with predictive repair on and off, plus
    latent sector errors surfaced by a 14-day scrub cycle.  The
    acceptance bar (:func:`validate_durability`) is zero lost stripes
    across every predictive-mode trial.
    """
    from ..failure.predictor import ThresholdPredictor
    from ..failure.smart import SmartTraceGenerator
    from ..sim.lifetime import (
        LifetimeConfig,
        TraceReplayProcess,
        WeibullFailureProcess,
        durability_study,
    )

    config = LifetimeConfig(
        num_disks=30,
        num_stripes=120,
        n=9,
        k=6,
        years=years,
        repair_concurrency=2,
        latent_errors_per_disk_year=0.3,
        scrub_interval_days=14.0,
    )
    traces = SmartTraceGenerator(
        num_disks=60, annual_failure_rate=0.12, seed=seed
    ).generate()
    processes = [
        WeibullFailureProcess(annual_failure_rate=0.08),
        TraceReplayProcess(traces, ThresholdPredictor()),
    ]
    entries = durability_study(processes, config, trials=trials, seed=seed)
    return DURABILITY_SCHEMA.dump(
        {
            "config": {
                "trials": trials,
                "years": years,
                "seed": seed,
                "disks": config.num_disks,
                "stripes": config.num_stripes,
                "code": f"rs({config.n},{config.k})",
                "repair_concurrency": config.repair_concurrency,
                "latent_errors_per_disk_year": (
                    config.latent_errors_per_disk_year
                ),
                "scrub_interval_days": config.scrub_interval_days,
            },
            "processes": entries,
        }
    )


def validate_durability(document: dict, require_zero_loss: bool = True) -> dict:
    """Schema-check a durability document; enforce the zero-loss bar.

    Args:
        require_zero_loss: assert that every process shows zero lost
            stripes with predictive repair on (the CI acceptance bar).
    """
    body = DURABILITY_SCHEMA.load(document)
    if not body["processes"]:
        raise ValueError("durability document covers no failure processes")
    for entry in body["processes"]:
        for mode in ("predictive", "reactive"):
            if mode not in entry:
                raise ValueError(
                    f"process {entry.get('process')!r} lacks a {mode} run"
                )
            if entry[mode]["trials"] <= 0:
                raise ValueError(
                    f"process {entry.get('process')!r} {mode} ran no trials"
                )
        if entry["predictive"]["disk_failures"] <= 0:
            raise ValueError(
                f"process {entry.get('process')!r} produced no disk "
                "failures; the study measured nothing"
            )
        if (
            require_zero_loss
            and entry["predictive"]["lost_stripe_probability"] > 0
        ):
            raise ValueError(
                f"process {entry.get('process')!r} lost stripes with "
                "predictive repair on: P(loss)="
                f"{entry['predictive']['lost_stripe_probability']:.4f}"
            )
    return body


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="cluster/data RNG seed"
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_repair_rounds.json",
        help="where to write the bench document",
    )
    parser.add_argument(
        "--net-output",
        default="BENCH_net_throughput.json",
        help="where to write the loopback TCP throughput document "
        "('' skips the sweep)",
    )
    parser.add_argument(
        "--net-frames",
        type=int,
        default=32,
        help="frames streamed per payload size in the throughput sweep",
    )
    parser.add_argument(
        "--pipelining",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="measure chained vs store-and-forward repair latency on a "
        "bandwidth-bound RS(9,6) rig and embed the section in the net "
        "throughput document (--no-pipelining skips it)",
    )
    parser.add_argument(
        "--pipelining-slices",
        type=int,
        default=16,
        help="slices per chunk in the chained pipelining bench",
    )
    parser.add_argument(
        "--durability-output",
        default="",
        help="where to write the Monte-Carlo durability document "
        "('' skips the study)",
    )
    parser.add_argument(
        "--durability-trials",
        type=int,
        default=50,
        help="lifetime trials per (process, mode) cell of the study",
    )
    parser.add_argument(
        "--durability-years",
        type=float,
        default=1.0,
        help="simulated years per lifetime trial",
    )
    parser.add_argument(
        "--durability-only",
        action="store_true",
        help="run only the durability study (skip repair + net benches)",
    )
    parser.add_argument(
        "--hotpath",
        nargs="?",
        const="BENCH_hotpath.json",
        default="",
        metavar="PATH",
        help="write the hot-path bench (GF kernel GB/s, per-transport "
        "single-stream + parallel throughput, pre-PR baseline speedup); "
        "default path BENCH_hotpath.json",
    )
    parser.add_argument(
        "--profile-out",
        default="",
        metavar="PREFIX",
        help="profile the instrumented repair under cProfile; writes "
        "PREFIX.prof (binary, flamegraph-able) and PREFIX.txt (pstats "
        "top functions by cumulative time)",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="before overwriting a committed bench document, compare "
        "perf figures on schema-identical configs and exit non-zero "
        "when any drops more than --regression-tolerance",
    )
    parser.add_argument(
        "--regression-tolerance",
        type=float,
        default=0.30,
        help="fractional slowdown tolerated by --fail-on-regression",
    )
    args = parser.parse_args(argv)
    if args.durability_only and not args.durability_output:
        args.durability_output = "BENCH_durability.json"
    if args.durability_output:
        durability = run_durability(
            trials=args.durability_trials,
            years=args.durability_years,
            seed=args.seed,
        )
        validate_durability(durability)
        with open(args.durability_output, "w") as f:
            json.dump(durability, f, indent=2, sort_keys=True)
            f.write("\n")
        for entry in durability["processes"]:
            print(
                f"wrote {args.durability_output}: {entry['process']} "
                f"P(loss) predictive="
                f"{entry['predictive']['lost_stripe_probability']:.4f} "
                f"reactive="
                f"{entry['reactive']['lost_stripe_probability']:.4f}, "
                "chunk-days at risk "
                f"{entry['predictive']['mean_chunk_days_at_risk']:.1f} vs "
                f"{entry['reactive']['mean_chunk_days_at_risk']:.1f}"
            )
        if args.durability_only:
            return 0
    regressions = []

    def gate(path: str, new_doc: dict) -> None:
        """Collect regressions against the committed document at path."""
        if not args.fail_on_regression:
            return
        try:
            with open(path) as f:
                committed = json.load(f)
        except (OSError, json.JSONDecodeError):
            return  # nothing committed yet, or unreadable: nothing to gate
        for problem in check_regressions(
            committed, new_doc, tolerance=args.regression_tolerance
        ):
            regressions.append(f"{path}: {problem}")

    if args.profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        document = run_smoke(seed=args.seed)
        profiler.disable()
        profiler.dump_stats(args.profile_out + ".prof")
        with open(args.profile_out + ".txt", "w") as f:
            stats = pstats.Stats(profiler, stream=f)
            stats.sort_stats("cumulative").print_stats(60)
        print(
            f"wrote profile to {args.profile_out}.prof and "
            f"{args.profile_out}.txt"
        )
    else:
        document = run_smoke(seed=args.seed)
    validate(document)
    with open(args.output, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    rounds = document["rounds"]
    print(
        f"wrote {args.output}: {document['result']['chunks_repaired']} "
        f"chunks over {len(rounds)} rounds, "
        f"{document['result']['total_time_s']:.2f}s total"
    )
    if args.net_output:
        net_doc = run_net_throughput(frames=args.net_frames)
        if args.pipelining:
            net_doc["pipelining"] = run_pipelining_bench(
                slices=args.pipelining_slices, seed=args.seed
            )
        validate_net(net_doc)
        gate(args.net_output, net_doc)
        if args.fail_on_regression and "pipelining" in net_doc:
            problem = check_pipelining_gate(net_doc["pipelining"])
            if problem is not None:
                regressions.append(f"{args.net_output}: {problem}")
        with open(args.net_output, "w") as f:
            json.dump(net_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        for run in net_doc["runs"]:
            print(
                f"wrote {args.net_output}: {run['payload_bytes']} B frames "
                f"at {run['frames_per_s']:.0f} frames/s, "
                f"{run['mb_per_s']:.1f} MB/s"
            )
        if "pipelining" in net_doc:
            section = net_doc["pipelining"]
            print(
                f"wrote {args.net_output}: pipelining {section['code']} "
                f"{section['chunks']} chunks of "
                f"{section['chunk_bytes'] >> 20} MiB — star "
                f"{section['star']['seconds']:.2f}s, chain "
                f"{section['chain']['seconds']:.2f}s "
                f"({section['chain_vs_star_speedup']:.1f}x, gate "
                f"<= {section['max_chain_ratio']:.2f}x of star)"
            )
    if args.hotpath:
        hotpath_doc = run_hotpath(frames=args.net_frames)
        validate_hotpath(hotpath_doc)
        gate(args.hotpath, hotpath_doc)
        with open(args.hotpath, "w") as f:
            json.dump(hotpath_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        kernels = hotpath_doc["kernels"]
        print(
            f"wrote {args.hotpath}: gf_mul {kernels['gf_mul_gb_s']:.2f} "
            f"GB/s, gf_matmul {kernels['gf_matmul_gb_s']:.2f} GB/s"
        )
        for entry in hotpath_doc["transports"]:
            best = max(run["mb_per_s"] for run in entry["single"])
            print(
                f"  {entry['transport']}: single-stream up to "
                f"{best:.1f} MB/s, {entry['parallel']['streams']} streams "
                f"{entry['parallel']['mb_per_s']:.1f} MB/s aggregate"
            )
        for size, factor in sorted(
            hotpath_doc["baseline"]["tcp_speedup"].items(), key=lambda i: int(i[0])
        ):
            print(f"  tcp speedup vs pre-PR @{size} B: {factor:.2f}x")
    if regressions:
        for problem in regressions:
            print(f"bench regression: {problem}", file=sys.stderr)
        print(
            f"{len(regressions)} bench figure(s) regressed beyond "
            f"{args.regression_tolerance:.0%}; failing",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
