"""Figure 12 / Experiment B.2: impact of the chunk size (testbed).

Paper claims reproduced here:

* repair time per chunk grows with the chunk size for every approach;
* FastPR stays the fastest across all chunk sizes (paper: 31.1-47.9%
  below migration-only and 10.0-28.3% below reconstruction-only).
"""

from conftest import run_once

from repro.bench.experiments import fig12_chunk_size

RUNS = 1


def test_fig12_chunk_size(benchmark, save_result):
    exp = run_once(benchmark, fig12_chunk_size, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        for label in ("fastpr", "reconstruction", "migration"):
            values = panel.values_of(label)
            assert values[-1] > values[0], (
                f"{panel.title}/{label}: per-chunk time should grow with "
                "chunk size"
            )
        fastpr = panel.values_of("fastpr")
        for i in range(len(panel.xticks)):
            assert fastpr[i] <= panel.values_of("reconstruction")[i] * 1.10
            assert fastpr[i] <= panel.values_of("migration")[i] * 1.10
