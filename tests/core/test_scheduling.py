"""Tests for Algorithm 2 (repair scheduling)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.chunk import ChunkLocation
from repro.core.analysis import AnalyticalModel, BandwidthProfile
from repro.core.scheduling import (
    migration_quota,
    schedule_migration_only,
    schedule_reconstruction_only,
    schedule_repair_rounds,
)


def fake_sets(sizes, start_stripe=0):
    """Build reconstruction sets of the given sizes with unique chunks."""
    sets = []
    stripe = start_stripe
    for size in sizes:
        chunk_set = []
        for _ in range(size):
            chunk_set.append(ChunkLocation(stripe, 0, 99))
            stripe += 1
        sets.append(chunk_set)
    return sets


def quota_model(quota):
    """A scattered model whose migration quota is exactly ``quota``.

    With b_d = 2 * b_n, t_m = 2 * c/b_n and t_r = (1 + k) * c/b_n, so
    t_r / t_m = (1 + k) / 2; choosing k = 2 * quota - 1 puts the ratio
    exactly at ``quota``, which "nearest" rounding preserves.
    """
    profile = BandwidthProfile(
        chunk_size=1 << 20,
        disk_bandwidth=2e8,
        network_bandwidth=1e8,
    )
    return AnalyticalModel(
        num_nodes=20 * quota, k=2 * quota - 1, profile=profile
    )


def all_chunks(rounds):
    out = []
    for r in rounds:
        out.extend(r.reconstruction)
        out.extend(r.migration)
    return out


class TestMigrationQuota:
    def test_matches_model_ratio(self):
        model = AnalyticalModel(num_nodes=100, k=6)
        ratio = model.reconstruction_time() / model.migration_time()
        assert migration_quota(model, cr=5) == int(ratio + 0.5)
        assert migration_quota(model, cr=5, rounding="floor") == int(ratio)

    def test_zero_for_empty_round(self):
        model = AnalyticalModel(num_nodes=100, k=6)
        assert migration_quota(model, cr=0) == 0

    def test_hot_standby_quota_grows_with_cr(self):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=3)
        assert migration_quota(model, 16) >= migration_quota(model, 2)

    def test_floor_never_straggles(self):
        # floor() guarantees c_m * t_m <= t_r for the round.
        model = AnalyticalModel(num_nodes=100, k=6)
        for cr in (1, 4, 16):
            cm = migration_quota(model, cr, rounding="floor")
            assert cm * model.migration_time() <= model.reconstruction_time(
                groups=cr
            ) * (1 + 1e-9)

    def test_nearest_straggles_at_most_half_tm(self):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=3)
        for cr in (1, 4, 16):
            cm = migration_quota(model, cr)
            t_m = model.migration_time()
            assert cm * t_m <= model.reconstruction_time(groups=cr) + t_m / 2 + 1e-9

    def test_nearest_nonzero_when_tr_close_to_tm(self):
        # Small clusters: t_r(G=1) slightly below t_m must still give
        # c_m = 1 (this is why "nearest" is the default).
        profile = BandwidthProfile(
            chunk_size=1 << 20,
            disk_bandwidth=10e6,
            network_bandwidth=44e6,
        )
        model = AnalyticalModel(
            num_nodes=21, k=10, hot_standby=3, profile=profile
        )
        assert migration_quota(model, 1) >= 1
        assert migration_quota(model, 1, rounding="floor") == 0

    def test_unknown_rounding(self):
        model = AnalyticalModel(num_nodes=100, k=6)
        with pytest.raises(ValueError):
            migration_quota(model, 4, rounding="ceil")


class TestPaperFigure6:
    """Sets of sizes [9,7,6,4,3,2,1] with c_m = 4 finish in 3 rounds."""

    def test_three_rounds(self):
        sets = fake_sets([9, 7, 6, 4, 3, 2, 1])
        rounds = schedule_repair_rounds(sets, quota_model(4), seed=0)
        assert len(rounds) == 3
        assert [r.cr for r in rounds] == [9, 7, 6]
        assert [r.cm for r in rounds] == [4, 4, 2]

    def test_round1_takes_smallest_sets(self):
        sets = fake_sets([9, 7, 6, 4, 3, 2, 1])
        rounds = schedule_repair_rounds(sets, quota_model(4), seed=0)
        migrated_round1 = {c.stripe_id for c in rounds[0].migration}
        # R6 (2 chunks) and R7 (1 chunk) migrate whole; 1 chunk from R5.
        sizes = [9, 7, 6, 4, 3, 2, 1]
        r6_r7 = set()
        offset = sum(sizes[:5])
        r6_r7.update(range(offset, offset + 3))
        assert r6_r7 <= migrated_round1
        assert len(migrated_round1) == 4

    def test_all_chunks_once(self):
        sets = fake_sets([9, 7, 6, 4, 3, 2, 1])
        rounds = schedule_repair_rounds(sets, quota_model(4), seed=1)
        chunks = all_chunks(rounds)
        assert len(chunks) == 32
        assert len({c.stripe_id for c in chunks}) == 32


class TestScheduleRepairRounds:
    def test_single_set(self):
        rounds = schedule_repair_rounds(fake_sets([5]), quota_model(3))
        assert len(rounds) == 1
        assert rounds[0].cr == 5
        assert rounds[0].cm == 0

    def test_everything_fits_one_round(self):
        rounds = schedule_repair_rounds(fake_sets([5, 2, 1]), quota_model(4))
        assert len(rounds) == 1
        assert rounds[0].cm == 3

    def test_empty_input(self):
        assert schedule_repair_rounds([], quota_model(2)) == []
        assert schedule_repair_rounds([[]], quota_model(2)) == []

    def test_sorted_descending_reconstruction(self):
        rounds = schedule_repair_rounds(
            fake_sets([2, 9, 5, 1]), quota_model(2), seed=0
        )
        crs = [r.cr for r in rounds if r.cr]
        assert crs == sorted(crs, reverse=True)

    def test_migration_respects_quota(self):
        model = quota_model(3)
        rounds = schedule_repair_rounds(
            fake_sets([8, 7, 6, 5, 4, 3, 2]), model, seed=2
        )
        for r in rounds[:-1]:  # last round may carry fewer
            assert r.cm <= migration_quota(model, r.cr)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(1, 12), min_size=1, max_size=8),
        st.integers(2, 8),
        st.integers(0, 1000),
    )
    def test_cover_exactly_once_property(self, sizes, quota, seed):
        sets = fake_sets(sizes)
        rounds = schedule_repair_rounds(sets, quota_model(quota), seed=seed)
        chunks = all_chunks(rounds)
        assert len(chunks) == sum(sizes)
        assert len({c.stripe_id for c in chunks}) == sum(sizes)
        # Reconstructed sets remain subsets of original sets.
        originals = [
            {c.stripe_id for c in s} for s in fake_sets(sizes)
        ]
        for r in rounds:
            if not r.reconstruction:
                continue
            recon_ids = {c.stripe_id for c in r.reconstruction}
            assert any(recon_ids <= orig for orig in originals)


class TestBaselines:
    def test_reconstruction_only_one_round_per_set(self):
        rounds = schedule_reconstruction_only(fake_sets([3, 5, 1]))
        assert [r.cr for r in rounds] == [5, 3, 1]
        assert all(r.cm == 0 for r in rounds)

    def test_reconstruction_only_skips_empty(self):
        assert schedule_reconstruction_only([[], []]) == []

    def test_migration_only_single_batch(self):
        chunks = [c for s in fake_sets([4]) for c in s]
        rounds = schedule_migration_only(chunks)
        assert len(rounds) == 1
        assert rounds[0].cm == 4
        assert rounds[0].cr == 0

    def test_migration_only_empty(self):
        assert schedule_migration_only([]) == []
