"""Metrics registry: instruments, concurrency, exposition formats."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import (
    METRICS_SCHEMA_VERSION,
    MetricError,
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_inc_and_total(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.total() == 5

    def test_labels_are_independent_series(self):
        counter = MetricsRegistry().counter("actions_total")
        counter.inc(2, method="migration")
        counter.inc(3, method="reconstruction")
        assert counter.value(method="migration") == 2
        assert counter.value(method="reconstruction") == 3
        assert counter.total() == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("inbox_depth")
        gauge.set(10, node=1)
        gauge.inc(5, node=1)
        gauge.dec(3, node=1)
        assert gauge.value(node=1) == 12


class TestHistogram:
    def test_cumulative_bucket_counts(self):
        hist = MetricsRegistry().histogram(
            "latency_seconds", buckets=[0.1, 0.5, 1.0]
        )
        for value in (0.05, 0.1, 0.3, 0.9, 4.0):
            hist.observe(value)
        counts = hist.bucket_counts()
        # Buckets are cumulative upper bounds: 0.1 catches 0.05 and the
        # boundary value 0.1 itself; +Inf catches everything.
        assert counts[0.1] == 2
        assert counts[0.5] == 3
        assert counts[1.0] == 4
        assert counts[math.inf] == 5
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(5.35)

    def test_per_label_series(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0])
        hist.observe(0.5, device="disk")
        hist.observe(2.0, device="nic_in")
        assert hist.count(device="disk") == 1
        assert hist.bucket_counts(device="nic_in")[1.0] == 0
        assert hist.bucket_counts(device="nic_in")[math.inf] == 1

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=[1.0, 1.0])

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        hist = registry.histogram("h", buckets=[0.5])
        threads, per_thread = 8, 1000

        def worker(tid):
            for _ in range(per_thread):
                counter.inc(node=tid % 2)
                hist.observe(0.25)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.total() == threads * per_thread
        assert hist.count() == threads * per_thread
        assert hist.bucket_counts()[0.5] == threads * per_thread


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repair_actions_total").inc(3, method="migration")
    registry.counter("repair_actions_total").inc(2, method="reconstruction")
    registry.gauge("coordinator_epoch").set(1)
    hist = registry.histogram("repair_round_seconds", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.7)
    return registry


class TestExposition:
    def test_json_document_shape(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.json"
        registry.save(path)
        doc = json.loads(path.read_text())
        assert doc["version"] == METRICS_SCHEMA_VERSION
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["repair_actions_total"]["type"] == "counter"
        samples = by_name["repair_actions_total"]["samples"]
        assert {s["labels"]["method"]: s["value"] for s in samples} == {
            "migration": 3,
            "reconstruction": 2,
        }

    def test_prometheus_output_parses(self):
        text = _populated_registry().render_prometheus()
        parsed = parse_prometheus(text)
        assert parsed["repair_actions_total"]['{method="migration"}'] == 3
        assert parsed["coordinator_epoch"][""] == 1
        buckets = parsed["repair_round_seconds_bucket"]
        assert buckets['{le="0.1"}'] == 1
        assert buckets['{le="1"}'] == 2
        assert buckets['{le="+Inf"}'] == 2
        assert parsed["repair_round_seconds_count"][""] == 2

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, path='a"b\\c\nd')
        parsed = parse_prometheus(registry.render_prometheus())
        assert sum(parsed["c"].values()) == 1

    def test_parser_rejects_garbage(self):
        with pytest.raises(MetricError):
            parse_prometheus("not a metric line at all!")
