"""CSV import/export of SMART traces (Backblaze-style layout).

The disk-failure prediction literature the paper builds on trains on
daily per-drive CSV dumps (one row per disk-day with SMART columns and
a ``failure`` flag on a drive's final day).  This module reads and
writes that layout so synthetic fleets can be persisted, inspected
with standard tooling, or swapped for real dumps where available.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .smart import SMART_ATTRIBUTES, DiskTrace, SmartSample

#: fixed leading columns; SMART attributes follow in canonical order
HEADER = ("disk_id", "day", "failure") + SMART_ATTRIBUTES


class TraceFormatError(ValueError):
    """Raised on malformed trace CSV files."""


def save_traces(traces: Sequence[DiskTrace], path: Union[str, Path]) -> None:
    """Write traces as one CSV row per disk-day.

    The ``failure`` column is 1 only on a failing disk's last observed
    day, matching the Backblaze convention.
    """
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(HEADER)
        for trace in traces:
            for sample in trace.samples:
                is_failure_day = (
                    trace.will_fail and sample.day == trace.samples[-1].day
                )
                writer.writerow(
                    [trace.disk_id, sample.day, int(is_failure_day)]
                    + [sample.values.get(a, 0.0) for a in SMART_ATTRIBUTES]
                )


def load_traces(path: Union[str, Path]) -> List[DiskTrace]:
    """Read traces written by :func:`save_traces`.

    Returns traces ordered by disk id, with ``failure_day`` set to the
    day of the row flagged ``failure=1`` (if any).

    Raises:
        TraceFormatError: on header or row problems.
    """
    by_disk: Dict[int, DiskTrace] = {}
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}: empty file") from None
        if tuple(header) != HEADER:
            raise TraceFormatError(
                f"{path}: unexpected header {header[:4]}...; expected "
                f"{list(HEADER[:4])}..."
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(HEADER):
                raise TraceFormatError(
                    f"{path}:{line_no}: {len(row)} columns, expected "
                    f"{len(HEADER)}"
                )
            try:
                disk_id = int(row[0])
                day = int(row[1])
                failed = bool(int(row[2]))
                values = {
                    attr: float(row[3 + i])
                    for i, attr in enumerate(SMART_ATTRIBUTES)
                }
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{line_no}: {exc}") from exc
            trace = by_disk.setdefault(disk_id, DiskTrace(disk_id=disk_id))
            trace.samples.append(SmartSample(disk_id, day, values))
            if failed:
                if trace.failure_day is not None:
                    raise TraceFormatError(
                        f"{path}:{line_no}: disk {disk_id} flagged failed "
                        "twice"
                    )
                trace.failure_day = day
    traces = [by_disk[disk_id] for disk_id in sorted(by_disk)]
    for trace in traces:
        trace.samples.sort(key=lambda s: s.day)
        if trace.failure_day is not None and (
            trace.failure_day != trace.samples[-1].day
        ):
            raise TraceFormatError(
                f"disk {trace.disk_id}: failure flagged on day "
                f"{trace.failure_day}, but samples continue to "
                f"{trace.samples[-1].day}"
            )
    return traces
