"""One instrumented repair, summarized as ``BENCH_repair_rounds.json``.

CI's ``bench-smoke`` job runs this module against a small synthetic
cluster and uploads the result as an artifact, so every commit carries
a machine-readable record of what one repair round actually costs on
the emulated testbed: per-round durations, the migration versus
reconstruction split, and the headline transport/agent counters.  The
document rides on :class:`repro.core.serde.Schema`, and the generated
file is schema-validated before it is written — an empty or malformed
run fails the job instead of uploading garbage.

Usage::

    python -m repro.bench.smoke -o BENCH_repair_rounds.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..core.serde import Schema

#: Counters copied verbatim into the bench document.  A short, stable
#: list — the full registry goes to ``--metrics-out`` on real runs; the
#: bench file only tracks the totals worth eyeballing across commits.
_HEADLINE_COUNTERS = (
    "repair_actions_total",
    "repair_retries_total",
    "repair_replans_total",
    "agent_bytes_sent_total",
    "agent_bytes_received_total",
    "transport_bytes_sent_total",
)

BENCH_SCHEMA = Schema(
    "bench-repair-rounds",
    version=1,
    fields=("config", "result", "rounds", "counters"),
    required=("config", "result", "rounds", "counters"),
)


def run_smoke(seed: int = 7) -> dict:
    """Run one small instrumented repair and return the bench document.

    The cluster shape matches the test fixtures (12 nodes, RS(5,3),
    64 KiB chunks) but with enough stripes that the repair spans
    multiple rounds, so the per-round breakdown is never trivial.
    """
    from ..cluster import StorageCluster
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner
    from ..ec import make_codec
    from ..obs import MetricsRegistry, Tracer, breakdown_from_trace
    from ..runtime.testbed import EmulatedTestbed

    nodes, stripes, stf = 12, 20, 2
    codec = make_codec("rs(5,3)")
    cluster = StorageCluster.random(
        nodes, stripes, codec.n, codec.k, seed=seed, chunk_size=1 << 16
    )
    cluster.node(stf).mark_soon_to_fail()
    plan = FastPRPlanner(
        scenario=RepairScenario.SCATTERED, seed=seed
    ).plan(cluster, stf)
    plan.validate(cluster)

    metrics = MetricsRegistry()
    tracer = Tracer()
    with EmulatedTestbed(
        cluster, codec, metrics=metrics, tracer=tracer
    ) as testbed:
        testbed.load_random_data(seed=seed)
        result = testbed.execute(plan)
        testbed.verify_plan(plan, result)

    breakdown = breakdown_from_trace(tracer.to_dict())
    counters = {
        metric.name: metric.total()
        for metric in metrics
        if metric.name in _HEADLINE_COUNTERS
    }
    body = {
        "config": {
            "nodes": nodes,
            "stripes": stripes,
            "code": f"rs({codec.n},{codec.k})",
            "chunk_size": cluster.chunk_size,
            "seed": seed,
            "stf": stf,
            "scenario": RepairScenario.SCATTERED.value,
        },
        "result": {
            "chunks_repaired": result.chunks_repaired,
            "total_time_s": result.total_time,
            "bytes_transferred": result.bytes_transferred,
            "retries": result.retries,
            "replans": result.replans,
        },
        "rounds": [r.to_dict() for r in breakdown.rounds],
        "counters": counters,
    }
    return BENCH_SCHEMA.dump(body)


def validate(document: dict) -> dict:
    """Schema-check a bench document; reject empty-round runs."""
    body = BENCH_SCHEMA.load(document)
    if not body["rounds"]:
        raise ValueError("bench document has no repair rounds")
    if body["result"]["chunks_repaired"] <= 0:
        raise ValueError("bench repair recovered no chunks")
    return body


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="cluster/data RNG seed"
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_repair_rounds.json",
        help="where to write the bench document",
    )
    args = parser.parse_args(argv)
    document = run_smoke(seed=args.seed)
    validate(document)
    with open(args.output, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    rounds = document["rounds"]
    print(
        f"wrote {args.output}: {document['result']['chunks_repaired']} "
        f"chunks over {len(rounds)} rounds, "
        f"{document['result']['total_time_s']:.2f}s total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
