"""Tests for repaired-chunk destination selection (Fig. 4(c))."""

import pytest

from repro.cluster import StorageCluster
from repro.core.placement import (
    HotStandbyPlacer,
    PlacementError,
    assign_scattered_destinations,
)


@pytest.fixture
def cluster():
    c = StorageCluster(10, num_hot_standby=3)
    for i in range(6):
        c.add_stripe(5, 3, [0, 1 + (i % 3), 4 + (i % 3), 7, 8])
    c.node(0).mark_soon_to_fail()
    return c


class TestScatteredDestinations:
    def test_distinct_destinations(self, cluster):
        chunks = cluster.chunks_on_node(0)
        assignment = assign_scattered_destinations(cluster, 0, chunks[:3])
        assert len(set(assignment.values())) == 3

    def test_destination_eligibility(self, cluster):
        chunks = cluster.chunks_on_node(0)
        assignment = assign_scattered_destinations(cluster, 0, chunks)
        for (stripe_id, _), node in assignment.items():
            stripe = cluster.stripe(stripe_id)
            assert not stripe.stores_on(node)
            assert node != 0
            assert not cluster.node(node).is_standby

    def test_no_eligible_destination_raises(self):
        # Stripe spans every storage node: nowhere to put the repair.
        c = StorageCluster(5)
        c.add_stripe(5, 3, [0, 1, 2, 3, 4])
        c.node(0).mark_soon_to_fail()
        with pytest.raises(PlacementError, match="no eligible destination"):
            assign_scattered_destinations(c, 0, c.chunks_on_node(0))

    def test_fallback_allows_reuse(self):
        # 6 nodes, stripes of width 4 through node 0: only 2 eligible
        # destinations for 3 repairs -> perfect matching impossible.
        c = StorageCluster(6)
        for _ in range(3):
            c.add_stripe(4, 2, [0, 1, 2, 3])
        c.node(0).mark_soon_to_fail()
        chunks = c.chunks_on_node(0)
        assignment = assign_scattered_destinations(c, 0, chunks)
        assert set(assignment.values()) <= {4, 5}

    def test_strict_mode_raises_when_hall_violated(self):
        c = StorageCluster(6)
        for _ in range(3):
            c.add_stripe(4, 2, [0, 1, 2, 3])
        c.node(0).mark_soon_to_fail()
        with pytest.raises(PlacementError, match="distinct nodes"):
            assign_scattered_destinations(
                c, 0, c.chunks_on_node(0), allow_reuse_fallback=False
            )

    def test_empty_input(self, cluster):
        assert assign_scattered_destinations(cluster, 0, []) == {}


class TestHotStandbyPlacer:
    def test_round_robin_even_spread(self, cluster):
        placer = HotStandbyPlacer(cluster)
        chunks = cluster.chunks_on_node(0)
        assignment = placer.assign(chunks)
        counts = {}
        for node in assignment.values():
            counts[node] = counts.get(node, 0) + 1
        assert set(counts) == {10, 11, 12}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_cursor_persists_across_rounds(self, cluster):
        placer = HotStandbyPlacer(cluster)
        chunks = cluster.chunks_on_node(0)
        first = placer.assign(chunks[:2])
        second = placer.assign(chunks[2:4])
        used = list(first.values()) + list(second.values())
        assert used == [10, 11, 12, 10]

    def test_requires_standbys(self):
        c = StorageCluster(5)
        with pytest.raises(PlacementError):
            HotStandbyPlacer(c)

    def test_explicit_ids(self, cluster):
        placer = HotStandbyPlacer(cluster, standby_ids=[11])
        chunks = cluster.chunks_on_node(0)[:2]
        assert set(placer.assign(chunks).values()) == {11}
