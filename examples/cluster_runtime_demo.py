#!/usr/bin/env python3
"""Run FastPR on the emulated testbed: real bytes, real verification.

This is the offline counterpart of the paper's EC2 deployment: every
node is an agent with an on-disk chunk store and emulated disk/NIC
bandwidths; the coordinator drives repair rounds, chunks travel as
packets, destinations decode with GF(2^8) streaming coefficients, and
every repaired chunk's bytes are checked against the originals.

Run:
    python examples/cluster_runtime_demo.py
"""

from repro import (
    EmulatedTestbed,
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairScenario,
    make_codec,
)
from repro.cluster import StorageCluster


def main() -> None:
    # Scaled-down EC2 setup: 12 storage nodes + 3 hot-standbys,
    # RS(9,6), 1 MiB chunks, 10 MB/s disks, 44 MB/s network (the EC2
    # bn/bd ratio).
    cluster = StorageCluster.random(
        num_nodes=12,
        num_stripes=24,
        n=9,
        k=6,
        num_hot_standby=3,
        seed=5,
        disk_bandwidth=10e6,
        network_bandwidth=44e6,
        chunk_size=1024 * 1024,
    )
    stf = max(cluster.storage_node_ids(), key=cluster.load_of)
    cluster.node(stf).mark_soon_to_fail()
    codec = make_codec("rs(9,6)")
    print(f"{cluster}; STF node {stf} stores {cluster.load_of(stf)} chunks")

    with EmulatedTestbed(cluster, codec, packet_size=64 * 1024) as testbed:
        print("encoding and loading stripes onto the agents' stores...")
        testbed.load_random_data(seed=6)
        for scenario in (RepairScenario.SCATTERED, RepairScenario.HOT_STANDBY):
            print(f"\n--- {scenario.value} repair ---")
            for planner in (
                FastPRPlanner(scenario=scenario, seed=1),
                ReconstructionOnlyPlanner(scenario=scenario, seed=1),
                MigrationOnlyPlanner(scenario=scenario),
            ):
                plan = planner.plan(cluster, stf)
                result = testbed.execute(plan)
                testbed.verify_plan(plan)  # byte-exact check
                print(
                    f"{planner.name:16s} rounds={plan.num_rounds:2d} "
                    f"wall={result.total_time:6.2f}s "
                    f"per-chunk={result.time_per_chunk:6.3f}s "
                    f"traffic={result.bytes_transferred / 2**20:7.1f} MiB "
                    "(verified)"
                )
    print("\nall repaired chunks matched their original bytes.")


if __name__ == "__main__":
    main()
