"""repro.net — versioned wire protocol + TCP transport (DESIGN.md §10).

The runtime's messages travel either over the in-memory fabric
(:class:`repro.runtime.transport.Network`) or, via this package, over
real sockets between separate OS processes: :mod:`repro.net.wire`
defines the length-prefixed CRC-checked frame format and
:class:`repro.net.tcp.TcpNetwork` implements the shared
:class:`~repro.runtime.transport.Transport` interface on asyncio TCP.
:mod:`repro.net.launch` holds the process-per-node drivers behind
``fastpr agent`` and ``fastpr repair --transport tcp``.

The per-transport repair drivers (``run_tcp_repair`` and friends) are
internal to :mod:`repro.net.launch` since the one-release deprecation
shims were removed; drive repairs through
:class:`repro.RepairSession` instead.
"""

from .launch import (
    COORDINATOR_ALIAS,
    PeerSpecError,
    allocate_ports,
    format_peer_spec,
    load_node_data,
    parse_peer_spec,
    run_agent_process,
    run_shm_agent_process,
    sharded_peer_spec,
    shm_ring_name,
    stripe_checksums,
)
from .shm import ShmNetwork, ShmRing, shm_available
from .tcp import TcpNetwork
from .wire import (
    HEADER,
    MAGIC,
    MAX_META,
    MAX_PAYLOAD,
    WIRE_VERSION,
    WireError,
    decode_frame,
    encode_frame,
    encode_frame_parts,
)

__all__ = [
    "COORDINATOR_ALIAS",
    "HEADER",
    "MAGIC",
    "MAX_META",
    "MAX_PAYLOAD",
    "PeerSpecError",
    "ShmNetwork",
    "ShmRing",
    "TcpNetwork",
    "WIRE_VERSION",
    "WireError",
    "allocate_ports",
    "decode_frame",
    "encode_frame",
    "encode_frame_parts",
    "shm_available",
    "format_peer_spec",
    "load_node_data",
    "parse_peer_spec",
    "run_agent_process",
    "run_shm_agent_process",
    "sharded_peer_spec",
    "shm_ring_name",
    "stripe_checksums",
]
