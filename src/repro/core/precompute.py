"""Precomputed reconstruction sets (Section IV-D, option 2).

Algorithm 1's polynomial complexity "incurs high running time for
large |C| and M".  Besides chunk grouping, the paper suggests running
"Algorithm 1 for each possible STF node in advance and store the
results when they are required".  This module implements that cache:

* :class:`ReconstructionSetCache` — per-node memoization of the
  reconstruction sets, keyed by the cluster's ``metadata_version`` so
  any placement change (a repair, a rebalance move) invalidates stale
  entries automatically;
* :class:`PrecomputedFastPRPlanner` — a FastPR planner that consults
  the cache in its planning path, turning the on-alarm latency into a
  lookup when the warm-up ran ahead of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..cluster.chunk import ChunkLocation, NodeId
from ..cluster.cluster import StorageCluster
from .planner import FastPRPlanner, model_for
from .reconstruction_sets import ReconstructionSetFinder
from .scheduling import schedule_repair_rounds


@dataclass
class _CacheEntry:
    version: int
    sets: List[List[ChunkLocation]]


@dataclass
class CacheStats:
    """Hit/miss accounting (observable behavior for tests and ops)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0


class ReconstructionSetCache:
    """Per-node cache of Algorithm 1's output.

    Args:
        cluster: cluster whose ``metadata_version`` keys validity.
        optimize / group_size / seed: Algorithm 1 parameters, fixed for
            the cache's lifetime (entries computed with different
            parameters would not be interchangeable).
    """

    def __init__(
        self,
        cluster: StorageCluster,
        optimize: bool = True,
        group_size: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        self.cluster = cluster
        self.optimize = optimize
        self.group_size = group_size
        self.seed = seed
        self._entries: Dict[NodeId, _CacheEntry] = {}
        self.stats = CacheStats()

    def get(self, node_id: NodeId) -> List[List[ChunkLocation]]:
        """Reconstruction sets for ``node_id`` (computed if stale/missing)."""
        entry = self._entries.get(node_id)
        if entry is not None:
            if entry.version == self.cluster.metadata_version:
                self.stats.hits += 1
                return entry.sets
            self.stats.invalidations += 1
        self.stats.misses += 1
        return self._compute(node_id)

    def warm(self, nodes: Optional[Iterable[NodeId]] = None) -> int:
        """Precompute sets for ``nodes`` (default: every storage node).

        Returns the number of entries computed.  This is the offline
        phase the paper describes; run it from a background job.
        """
        if nodes is None:
            nodes = self.cluster.storage_node_ids()
        computed = 0
        for node_id in nodes:
            entry = self._entries.get(node_id)
            if entry is not None and entry.version == self.cluster.metadata_version:
                continue
            self._compute(node_id)
            computed += 1
        return computed

    def _compute(self, node_id: NodeId) -> List[List[ChunkLocation]]:
        finder = ReconstructionSetFinder(
            self.cluster,
            node_id,
            optimize=self.optimize,
            group_size=self.group_size,
            seed=self.seed,
        )
        sets = finder.find_all()
        self._entries[node_id] = _CacheEntry(
            version=self.cluster.metadata_version, sets=sets
        )
        return sets

    def __len__(self) -> int:
        return len(self._entries)


class PrecomputedFastPRPlanner(FastPRPlanner):
    """FastPR planner backed by a :class:`ReconstructionSetCache`.

    The Algorithm 1 work happens at :meth:`ReconstructionSetCache.warm`
    time; planning an actual repair only runs Algorithm 2 plus helper
    and destination matching.
    """

    name = "fastpr-precomputed"

    def __init__(self, cache: ReconstructionSetCache, **kwargs):
        kwargs.setdefault("optimize", cache.optimize)
        kwargs.setdefault("group_size", cache.group_size)
        kwargs.setdefault("seed", cache.seed)
        super().__init__(**kwargs)
        self.cache = cache

    def compose_rounds(self, cluster, stf_node, chunks):
        if cluster is not self.cache.cluster:
            raise ValueError("cache was built for a different cluster")
        expected = {(c.stripe_id, c.chunk_index) for c in chunks}
        sets = self.cache.get(stf_node)
        covered = {
            (c.stripe_id, c.chunk_index) for s in sets for c in s
        }
        if covered != expected:
            # The caller restricted the chunk list; recompute exactly.
            finder = ReconstructionSetFinder(
                cluster,
                stf_node,
                optimize=self.optimize,
                group_size=self.group_size,
                seed=self.seed,
            )
            sets = finder.find_all(chunks)
        k = self._uniform_k(cluster, chunks)
        model = model_for(
            cluster, self.scenario, k, profile=self.profile, k_prime=self.k_prime
        )
        return schedule_repair_rounds(
            sets, model, seed=self.seed, rounding=self.rounding
        )
