"""Tests for the cluster failure monitor and the predict->repair loop."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, apply_plan
from repro.failure.monitor import ClusterFailureMonitor, MonitorReport
from repro.failure.predictor import LogisticPredictor, ThresholdPredictor
from repro.failure.smart import DiskTrace, SmartSample, SmartTraceGenerator


@pytest.fixture(scope="module")
def predictor():
    fleet = SmartTraceGenerator(
        250, horizon_days=120, annual_failure_rate=0.25, seed=31
    ).generate()
    return LogisticPredictor(seed=0).fit(fleet)


def make_setup(num_nodes=15, failure_rate=0.4, seed=33):
    cluster = StorageCluster.random(
        num_nodes, 40, 5, 3, num_hot_standby=2, seed=seed
    )
    traces = SmartTraceGenerator(
        num_nodes,
        horizon_days=120,
        annual_failure_rate=failure_rate,
        seed=seed,
    ).generate()
    return cluster, traces


class TestMonitor:
    def test_flags_before_failure(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        report = monitor.run()
        for event in report.predicted_failures:
            assert event.day < event.actual_failure_day
            assert event.lead_days > 0

    def test_marks_nodes_stf(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        report = monitor.run()
        if report.stf_events:
            # Events fire once per disk, and the node state reflects it
            # unless the disk later actually failed.
            node_events = {e.node_id for e in report.stf_events}
            for node_id in node_events:
                assert not cluster.node(node_id).is_healthy

    def test_one_event_per_disk(self, predictor):
        cluster, traces = make_setup()
        report = ClusterFailureMonitor(cluster, traces, predictor).run()
        disks = [e.disk_id for e in report.stf_events]
        assert len(disks) == len(set(disks))

    def test_callback_receives_events_and_stores_plans(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        seen = []

        def on_stf(event):
            seen.append(event)
            planner = FastPRPlanner(seed=0)
            plan = planner.plan(cluster, event.node_id)
            apply_plan(cluster, plan)
            return plan

        report = monitor.run(on_stf=on_stf)
        assert len(seen) == len(report.stf_events)
        for event in report.stf_events:
            assert cluster.load_of(event.node_id) == 0
            assert report.plans[event.node_id].stf_node == event.node_id

    def test_false_alarms_still_repaired(self, predictor):
        # Paper assumption 2: false alarms trigger the full repair too.
        cluster, traces = make_setup(seed=35)
        threshold = ThresholdPredictor(threshold=8.0, window_days=1)
        monitor = ClusterFailureMonitor(cluster, traces, threshold)
        repaired = []
        report = monitor.run(on_stf=lambda e: repaired.append(e.node_id) or None)
        for event in report.false_alarms:
            assert event.node_id in repaired

    def test_missed_failure_recorded(self):
        cluster, traces = make_setup(seed=36)
        # A predictor that never fires: every actual failure is missed.
        class NeverPredictor(ThresholdPredictor):
            def predict(self, window):
                return False

        report = ClusterFailureMonitor(
            cluster, traces, NeverPredictor()
        ).run()
        failing = sum(t.will_fail for t in traces)
        assert len(report.missed_failures) == failing
        assert report.stf_events == []
        for miss in report.missed_failures:
            assert cluster.node(miss.node_id).is_failed

    def test_too_many_traces_rejected(self, predictor):
        cluster, _ = make_setup(num_nodes=5)
        traces = SmartTraceGenerator(10, seed=1).generate()
        with pytest.raises(ValueError):
            ClusterFailureMonitor(cluster, traces, predictor)

    def test_explicit_bindings(self, predictor):
        cluster, traces = make_setup()
        bindings = {t.disk_id: (t.disk_id + 1) % 15 for t in traces}
        monitor = ClusterFailureMonitor(
            cluster, traces, predictor, node_bindings=bindings
        )
        report = monitor.run()
        for event in report.stf_events:
            assert event.node_id == bindings[event.disk_id]


# ----------------------------------------------------------------------
# alarm dedupe while a repair is in flight
# ----------------------------------------------------------------------


def hot_trace(disk_id, alarm_day, horizon=30, failure_day=None):
    """A trace whose reallocated-sector count crosses 50 at alarm_day."""
    samples = [
        SmartSample(
            disk_id,
            day,
            {"smart_5_reallocated_sectors": 100.0 if day >= alarm_day else 0.0},
        )
        for day in range(horizon)
    ]
    return DiskTrace(disk_id, samples, failure_day=failure_day)


class TestAlarmDedupe:
    """Satellite: one node under repair must not spawn a second repair.

    Two degrading disks bound to the same node (JBOD-style multi-disk
    nodes), or a re-alarm before ``complete_repair``, dedupe into
    ``MonitorReport.suppressed_alarms``.
    """

    def setup_monitor(self, alarm_days=(3, 5), same_node=True):
        cluster = StorageCluster.random(6, 10, 5, 3, seed=13)
        traces = [
            hot_trace(i, alarm_day) for i, alarm_day in enumerate(alarm_days)
        ]
        bindings = {0: 0, 1: 0 if same_node else 1}
        monitor = ClusterFailureMonitor(
            cluster,
            traces,
            ThresholdPredictor(threshold=50.0),
            node_bindings=bindings,
        )
        return cluster, monitor

    def test_second_disk_on_same_node_suppressed(self):
        cluster, monitor = self.setup_monitor()
        report = monitor.run()
        assert [e.disk_id for e in report.stf_events] == [0]
        assert [e.disk_id for e in report.suppressed_alarms] == [1]

    def test_suppressed_once_per_disk_not_per_day(self):
        cluster, monitor = self.setup_monitor()
        report = monitor.run()  # disk 1 stays hot for ~25 days
        assert len(report.suppressed_alarms) == 1

    def test_distinct_nodes_both_alarm(self):
        cluster, monitor = self.setup_monitor(same_node=False)
        report = monitor.run()
        assert [e.disk_id for e in report.stf_events] == [0, 1]
        assert report.suppressed_alarms == []

    def test_complete_repair_rearms_node(self):
        cluster, monitor = self.setup_monitor()
        report = MonitorReport()
        for day in range(4):
            monitor.observe_day(day, report)
        assert [e.disk_id for e in report.stf_events] == [0]
        assert monitor.active_repairs == {0}

        monitor.complete_repair(0)
        cluster.node(0).mark_healthy()
        assert monitor.active_repairs == set()

        for day in range(4, 10):
            monitor.observe_day(day, report)
        # disk 1's alarm, swallowed while disk 0's repair was active,
        # fires as a fresh event once the node is repaired
        assert [e.disk_id for e in report.stf_events] == [0, 1]

    def test_suppressed_alarm_keeps_event_details(self):
        cluster, monitor = self.setup_monitor(alarm_days=(2, 2))
        report = monitor.run()
        (suppressed,) = report.suppressed_alarms
        assert suppressed.node_id == 0
        assert suppressed.disk_id == 1
        assert suppressed.day == 2
