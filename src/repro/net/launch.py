"""Process-per-node launch: standalone agents and the TCP repair driver.

This module is the glue behind ``fastpr agent`` and
``fastpr repair --transport tcp``: it turns a cluster snapshot plus a
peer map into real OS processes talking :mod:`repro.net.wire` frames
over :class:`~repro.net.tcp.TcpNetwork`.

Peer specs name every process's listen address::

    0=127.0.0.1:9100,1=127.0.0.1:9101,coordinator=127.0.0.1:9099

or, equivalently, ``@peers.json`` pointing at a JSON object with the
same keys.  ``coordinator`` (or ``-1``) is the coordinator's address;
integer keys are storage nodes.

Data loading is deterministic and *distributed*: every agent process
walks the same :func:`~repro.runtime.testbed.iter_encoded_stripes`
stream — one sequential RNG seeded identically everywhere — and keeps
only its own node's chunks.  The driver recomputes the same stream's
checksums, so after the repair it can prove, from the shared
``--workdir`` filesystem, that every repaired chunk is byte-identical
to the original without any chunk ever crossing a non-repair channel.
"""

from __future__ import annotations

import hashlib
import json
import socket
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.plan import RepairPlan
from ..ec.codec import ErasureCodec
from ..gateway.store import CLIENT_ID, GATEWAY_ID
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..cluster.topology import RackTopology
from ..runtime.agent import Agent
from ..runtime.config import DEFAULT_CONFIG, RuntimeConfig
from ..runtime.coordinator import (
    COORDINATOR_ID,
    Coordinator,
    RuntimeResult,
    shard_coordinator_id,
)
from ..runtime.datanode import ChunkStore
from ..runtime.faults import FaultInjector, FaultPlan
from ..runtime.journal import RepairJournal
from ..runtime.messages import Shutdown
from ..runtime.multicoord import MultiCoordinator, MultiRepairResult
from ..runtime.testbed import (
    ChunkMismatch,
    VerificationError,
    iter_encoded_stripes,
    mismatch_error,
)
from ..runtime.throttle import RateLimiter
from .shm import ShmNetwork
from .tcp import TcpNetwork

#: peer-spec alias for the coordinator's node id
COORDINATOR_ALIAS = "coordinator"
#: peer-spec alias for the object gateway's endpoint
GATEWAY_ALIAS = "gateway"
#: peer-spec alias for the object client's endpoint
CLIENT_ALIAS = "client"

PeerMap = Dict[NodeId, Tuple[str, int]]


# ----------------------------------------------------------------------
# shared-memory topology: ring names derived from the workdir
# ----------------------------------------------------------------------


def shm_ring_name(workdir: Path, node_id: NodeId) -> str:
    """Deterministic ring name for a node's process under a workdir.

    Every process of one repair shares the ``--workdir``, so hashing
    its absolute path gives all of them the same namespace without any
    peer spec: node ``n`` listens on ``fpr<hash>-<n>``, the coordinator
    on ``fpr<hash>-c`` (shard ``k`` on ``fpr<hash>-c<k>``), the object
    gateway on ``fpr<hash>-g`` and the object client on
    ``fpr<hash>-u``.
    """
    digest = hashlib.sha1(
        str(Path(workdir).resolve()).encode("utf-8")
    ).hexdigest()[:10]
    if node_id == COORDINATOR_ID:
        key = "c"
    elif node_id == GATEWAY_ID:
        key = "g"
    elif node_id == CLIENT_ID:
        key = "u"
    elif node_id < 0:
        key = f"c{-node_id - 1}"
    else:
        key = str(node_id)
    return f"fpr{digest}-{key}"


class PeerSpecError(ValueError):
    """A malformed ``--peers`` value."""


def parse_peer_spec(spec: str) -> PeerMap:
    """Parse ``--peers`` into ``{node_id: (host, port)}``.

    Accepts a comma-separated list of ``node=host:port`` entries (with
    ``coordinator`` aliasing :data:`COORDINATOR_ID` and
    ``coordinator<k>`` aliasing shard ``k``'s endpoint ``-(k+1)`` —
    ``coordinator0`` is the plain ``coordinator``) or ``@file.json``
    naming a JSON object of the same shape.
    """
    entries: Dict[str, str] = {}
    if spec.startswith("@"):
        try:
            document = json.loads(Path(spec[1:]).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PeerSpecError(f"cannot read peer file {spec[1:]}: {exc}")
        if not isinstance(document, dict):
            raise PeerSpecError("peer file must hold a JSON object")
        entries = {str(k): str(v) for k, v in document.items()}
    else:
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise PeerSpecError(
                    f"peer entry {item!r} is not node=host:port"
                )
            name, address = item.split("=", 1)
            entries[name.strip()] = address.strip()
    peers: PeerMap = {}
    for name, address in entries.items():
        if name == COORDINATOR_ALIAS:
            node_id = COORDINATOR_ID
        elif name == GATEWAY_ALIAS:
            node_id = GATEWAY_ID
        elif name == CLIENT_ALIAS:
            node_id = CLIENT_ID
        elif name.startswith(COORDINATOR_ALIAS):
            try:
                node_id = shard_coordinator_id(int(name[len(COORDINATOR_ALIAS):]))
            except ValueError:
                raise PeerSpecError(f"unknown peer name {name!r}")
        else:
            try:
                node_id = int(name)
            except ValueError:
                raise PeerSpecError(f"unknown peer name {name!r}")
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise PeerSpecError(f"peer address {address!r} is not host:port")
        try:
            peers[node_id] = (host, int(port))
        except ValueError:
            raise PeerSpecError(f"peer port {port!r} is not an integer")
    if not peers:
        raise PeerSpecError("empty peer spec")
    return peers


def format_peer_spec(peers: PeerMap) -> str:
    """Inverse of :func:`parse_peer_spec` (comma-list form)."""
    parts = []
    for node_id in sorted(peers):
        host, port = peers[node_id]
        if node_id == COORDINATOR_ID:
            name = COORDINATOR_ALIAS
        elif node_id == GATEWAY_ID:
            name = GATEWAY_ALIAS
        elif node_id == CLIENT_ID:
            name = CLIENT_ALIAS
        elif node_id < 0:
            name = f"{COORDINATOR_ALIAS}{-node_id - 1}"
        else:
            name = str(node_id)
        parts.append(f"{name}={host}:{port}")
    return ",".join(parts)


def sharded_peer_spec(peers: PeerMap, num_coordinators: int) -> PeerMap:
    """Extend a peer map with every shard coordinator's endpoint.

    All shard coordinators run inside the one driver process, so each
    ``coordinator<k>`` alias points at the *same* address as the plain
    ``coordinator`` entry — agents just open one connection per
    endpoint id to it.
    """
    address = peers.get(COORDINATOR_ID)
    if address is None:
        raise PeerSpecError(
            "peer spec has no coordinator address to shard"
        )
    extended = dict(peers)
    for shard in range(num_coordinators):
        extended[shard_coordinator_id(shard)] = address
    return extended


def allocate_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``count`` currently free TCP ports (test/driver helper).

    The ports are bound, recorded and released — a race with other
    processes is possible but irrelevant on a test host.
    """
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


# ----------------------------------------------------------------------
# deterministic distributed data loading
# ----------------------------------------------------------------------


def load_node_data(
    cluster: StorageCluster,
    codec: ErasureCodec,
    seed: Optional[int],
    store: ChunkStore,
    node_id: NodeId,
) -> int:
    """Store ``node_id``'s chunk of every stripe placed on it.

    Walks the full deterministic encode stream (so the bytes match the
    other agents' and the driver's view exactly) but writes only this
    node's chunks; returns how many were stored.
    """
    loaded = 0
    for stripe, coded in iter_encoded_stripes(cluster, codec, seed):
        for index, placed in enumerate(stripe.placement):
            if placed == node_id:
                store.put(stripe.stripe_id, coded[index])
                loaded += 1
    return loaded


def stripe_checksums(
    cluster: StorageCluster, codec: ErasureCodec, seed: Optional[int]
) -> Dict[Tuple[int, int], str]:
    """SHA-256 of every ``(stripe_id, chunk_index)`` in the data set."""
    checksums: Dict[Tuple[int, int], str] = {}
    for stripe, coded in iter_encoded_stripes(cluster, codec, seed):
        for index in range(len(coded)):
            checksums[(stripe.stripe_id, index)] = hashlib.sha256(
                coded[index]
            ).hexdigest()
    return checksums


def verify_actions(
    actions: Iterable,
    checksums: Dict[Tuple[int, int], str],
    workdir: Path,
) -> int:
    """Prove repaired chunks byte-identical via the shared filesystem.

    Reads each executed action's destination store directory
    (``workdir/node_<id>``) and compares against the deterministic
    originals; raises :class:`VerificationError` on any mismatch,
    collecting every failing chunk (not just the first) into the
    error's ``mismatches``.  Returns the number of chunks verified.
    """
    verified = 0
    mismatches = []
    for action in actions:
        path = (
            Path(workdir)
            / f"node_{action.destination}"
            / f"stripe_{action.stripe_id}.chunk"
        )
        if not path.exists():
            mismatches.append(
                ChunkMismatch(
                    action.stripe_id,
                    action.chunk_index,
                    action.destination,
                    "missing",
                )
            )
            continue
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        expected = checksums[(action.stripe_id, action.chunk_index)]
        if digest != expected:
            mismatches.append(
                ChunkMismatch(
                    action.stripe_id,
                    action.chunk_index,
                    action.destination,
                    "mismatch",
                )
            )
            continue
        verified += 1
    if mismatches:
        raise mismatch_error(mismatches)
    return verified


# ----------------------------------------------------------------------
# standalone agent process
# ----------------------------------------------------------------------


def node_store(
    cluster: StorageCluster, workdir: Path, node_id: NodeId
) -> ChunkStore:
    """Build ``node_id``'s chunk store under the shared workdir."""
    node = cluster.node(node_id)
    disk = RateLimiter(
        node.disk_bandwidth or cluster.disk_bandwidth,
        name=f"disk[{node_id}]",
    )
    return ChunkStore(Path(workdir) / f"node_{node_id}", node_id, disk)


def run_agent_process(
    cluster: StorageCluster,
    codec: ErasureCodec,
    node_id: NodeId,
    listen: Tuple[str, int],
    peers: PeerMap,
    workdir: Path,
    seed: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    load_data: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
) -> int:
    """Run one standalone repair agent until the coordinator shuts it down.

    Blocks until a :class:`~repro.runtime.messages.Shutdown` frame
    arrives (``fastpr repair --transport tcp`` broadcasts one after the
    run).  Returns the number of chunks the agent loaded at startup.

    ``faults`` injects the same declarative
    :class:`~repro.runtime.faults.FaultPlan` the in-memory testbed
    takes; packet-level faults apply on this process's *sending* side,
    so the whole cluster running one shared plan injects each fault
    exactly once.
    """
    cfg = config or DEFAULT_CONFIG
    node = cluster.node(node_id)
    injector = None
    agent_box: list = []
    if faults is not None:
        def _on_crash(victim: NodeId) -> None:
            if victim == node_id and agent_box:
                agent_box[0].crash()

        injector = FaultInjector(faults, on_crash=_on_crash)
    network = TcpNetwork(
        faults=injector,
        metrics=metrics,
        inbox_capacity=cfg.inbox_capacity,
        send_queue_capacity=cfg.send_queue_capacity,
        connect_timeout=cfg.connect_timeout,
        drain_timeout=cfg.drain_timeout,
    )
    network.attach(
        node_id, node.network_bandwidth or cluster.network_bandwidth
    )
    network.listen(*listen)
    for peer_id, (host, port) in peers.items():
        if peer_id != node_id:
            network.add_peer(peer_id, host, port)
    store = node_store(cluster, Path(workdir), node_id)
    loaded = 0
    if load_data:
        loaded = load_node_data(cluster, codec, seed, store, node_id)
    agent = Agent(
        node_id,
        store,
        network,
        coordinator_id=COORDINATOR_ID,
        config=cfg,
        metrics=metrics,
    )
    agent_box.append(agent)
    if injector is not None:
        injector.start()
    agent.start(heartbeat=True)
    try:
        agent.done.wait()
    finally:
        agent.stop()
        network.close()
    return loaded


def run_shm_agent_process(
    cluster: StorageCluster,
    codec: ErasureCodec,
    node_id: NodeId,
    workdir: Path,
    seed: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    load_data: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
) -> int:
    """Shared-memory twin of :func:`run_agent_process`.

    No peer spec: the topology is derived entirely from the shared
    ``workdir`` via :func:`shm_ring_name` — this agent listens on its
    node's ring and registers every other node plus the coordinator as
    a peer.  Rings attach lazily, so processes may start in any order.
    """
    cfg = config or DEFAULT_CONFIG
    node = cluster.node(node_id)
    injector = None
    agent_box: list = []
    if faults is not None:
        def _on_crash(victim: NodeId) -> None:
            if victim == node_id and agent_box:
                agent_box[0].crash()

        injector = FaultInjector(faults, on_crash=_on_crash)
    network = ShmNetwork(
        faults=injector,
        metrics=metrics,
        inbox_capacity=cfg.inbox_capacity,
        connect_timeout=cfg.connect_timeout,
    )
    network.attach(
        node_id, node.network_bandwidth or cluster.network_bandwidth
    )
    network.listen(shm_ring_name(workdir, node_id))
    # Rings attach lazily, so the gateway/client endpoints are
    # registered unconditionally — chunk RPC replies reach them when a
    # gateway happens to share the workdir, and cost nothing otherwise.
    peer_ids = list(cluster.nodes) + [COORDINATOR_ID, GATEWAY_ID, CLIENT_ID]
    for peer_id in peer_ids:
        if peer_id != node_id:
            network.add_peer(peer_id, shm_ring_name(workdir, peer_id))
    store = node_store(cluster, Path(workdir), node_id)
    loaded = 0
    if load_data:
        loaded = load_node_data(cluster, codec, seed, store, node_id)
    agent = Agent(
        node_id,
        store,
        network,
        coordinator_id=COORDINATOR_ID,
        config=cfg,
        metrics=metrics,
    )
    agent_box.append(agent)
    if injector is not None:
        injector.start()
    agent.start(heartbeat=True)
    try:
        agent.done.wait()
    finally:
        agent.stop()
        network.close()
    return loaded


# ----------------------------------------------------------------------
# coordinator-side TCP repair driver
# ----------------------------------------------------------------------


def build_coordinator_network(
    peers: PeerMap,
    config: RuntimeConfig,
    metrics: Optional[MetricsRegistry] = None,
    listen: Optional[Tuple[str, int]] = None,
    faults: Optional[FaultInjector] = None,
) -> TcpNetwork:
    """The coordinator's transport: local coordinator, every node a peer."""
    network = TcpNetwork(
        faults=faults,
        metrics=metrics,
        inbox_capacity=config.inbox_capacity,
        send_queue_capacity=config.send_queue_capacity,
        connect_timeout=config.connect_timeout,
        drain_timeout=config.drain_timeout,
    )
    if listen is not None:
        network.listen(*listen)
    for node_id, (host, port) in peers.items():
        if node_id >= 0:  # coordinator endpoints (< 0) are local
            network.add_peer(node_id, host, port)
    return network


def wait_for_agents(
    coordinator: Coordinator, nodes: Iterable[NodeId], timeout: float = 60.0
) -> None:
    """Block until every agent answers a ping (or raise on timeout)."""
    pending = set(nodes) - {COORDINATOR_ID}
    deadline = time.monotonic() + timeout
    while pending:
        pending -= coordinator._probe(set(pending))
        if not pending:
            return
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"agents never came up: {sorted(pending)} unreachable "
                f"after {timeout}s"
            )
        time.sleep(0.2)


def shutdown_agents(network: TcpNetwork, nodes: Iterable[NodeId]) -> None:
    """Broadcast Shutdown so standalone agent processes exit cleanly."""
    for node_id in sorted(n for n in set(nodes) if n >= 0):
        try:
            network.send(COORDINATOR_ID, node_id, Shutdown())
        except KeyError:
            pass  # already detached/dead


def run_tcp_repair(
    cluster: StorageCluster,
    codec: ErasureCodec,
    plan: RepairPlan,
    peers: PeerMap,
    workdir: Path,
    seed: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    packet_size: Optional[int] = None,
    journal_path: Optional[Path] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    resume: bool = False,
    agent_timeout: float = 60.0,
    faults: Optional[FaultPlan] = None,
) -> Tuple[RuntimeResult, int]:
    """Drive one multi-process repair from the coordinator's side.

    The agent processes must (come up to) listen at the addresses in
    ``peers``; connection backoff absorbs startup races, and an
    explicit ping sweep gates command issue on every agent being
    reachable.  After the run the repaired chunks are verified
    byte-identical through the shared ``workdir`` and every agent is
    told to shut down.

    With ``resume=True`` the journal at ``journal_path`` is replayed
    instead of starting fresh: the successor coordinator (epoch + 1)
    reconciles agent inventories over TCP and re-issues only the
    unfinished actions — the kill-one-coordinator walkthrough.

    Returns ``(result, chunks_verified)``.
    """
    cfg = config or DEFAULT_CONFIG
    listen = peers.get(COORDINATOR_ID)
    # Coordinator-side injector covers control traffic and time-based
    # triggers; each agent process runs the same plan for data packets.
    # It attaches to the network only once every agent has answered a
    # ping, so fault time zero is the start of the repair, not of the
    # probe sweep.
    injector = FaultInjector(faults) if faults is not None else None
    network = build_coordinator_network(
        peers, cfg, metrics=metrics, listen=listen
    )
    return _drive_repair(
        network,
        cluster,
        codec,
        plan,
        peers,
        workdir,
        seed=seed,
        cfg=cfg,
        packet_size=packet_size,
        journal_path=journal_path,
        metrics=metrics,
        tracer=tracer,
        resume=resume,
        agent_timeout=agent_timeout,
        injector=injector,
    )


def run_shm_repair(
    cluster: StorageCluster,
    codec: ErasureCodec,
    plan: RepairPlan,
    workdir: Path,
    seed: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    packet_size: Optional[int] = None,
    journal_path: Optional[Path] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    resume: bool = False,
    agent_timeout: float = 60.0,
    faults: Optional[FaultPlan] = None,
) -> Tuple[RuntimeResult, int]:
    """Shared-memory twin of :func:`run_tcp_repair`.

    Same driver contract — the agents are
    :func:`run_shm_agent_process` processes on this host, and every
    frame crosses a ``multiprocessing.shared_memory`` ring instead of a
    socket.  No peer spec: the topology derives from the shared
    ``workdir`` (see :func:`shm_ring_name`).
    """
    cfg = config or DEFAULT_CONFIG
    injector = FaultInjector(faults) if faults is not None else None
    network = ShmNetwork(
        faults=None,
        metrics=metrics,
        inbox_capacity=cfg.inbox_capacity,
        connect_timeout=cfg.connect_timeout,
    )
    network.listen(shm_ring_name(workdir, COORDINATOR_ID))
    for node_id in cluster.nodes:
        network.add_peer(node_id, shm_ring_name(workdir, node_id))
    return _drive_repair(
        network,
        cluster,
        codec,
        plan,
        {node_id: None for node_id in cluster.nodes},
        workdir,
        seed=seed,
        cfg=cfg,
        packet_size=packet_size,
        journal_path=journal_path,
        metrics=metrics,
        tracer=tracer,
        resume=resume,
        agent_timeout=agent_timeout,
        injector=injector,
    )


def _drive_repair(
    network,
    cluster: StorageCluster,
    codec: ErasureCodec,
    plan: RepairPlan,
    peers,
    workdir: Path,
    seed: Optional[int],
    cfg: RuntimeConfig,
    packet_size: Optional[int],
    journal_path: Optional[Path],
    metrics: Optional[MetricsRegistry],
    tracer: Optional[Tracer],
    resume: bool,
    agent_timeout: float,
    injector: Optional[FaultInjector],
) -> Tuple[RuntimeResult, int]:
    """Transport-agnostic single-coordinator repair driver body.

    ``network`` must already listen and know every agent as a peer;
    ``peers`` is only consulted for the shutdown broadcast's node ids.
    """
    packet = packet_size or max(cluster.chunk_size // 16, 4096)
    journal = None
    if journal_path is not None and not resume:
        journal = RepairJournal(
            journal_path, fsync=cfg.journal_fsync, metrics=metrics
        )
    try:
        if resume:
            if journal_path is None:
                raise ValueError("resume needs a journal path")
            coordinator = Coordinator.recover(
                journal_path,
                network,
                cluster,
                codec,
                config=cfg,
                packet_size=packet,
                metrics=metrics,
                tracer=tracer,
            )
        else:
            coordinator = Coordinator(
                network,
                cluster,
                codec,
                packet,
                config=cfg,
                journal=journal,
                metrics=metrics,
                tracer=tracer,
            )
        involved = sorted(
            {a.destination for a in plan.actions()}
            | {s for a in plan.actions() for s in a.sources}
        )
        wait_for_agents(coordinator, involved, timeout=agent_timeout)
        if injector is not None:
            network.faults = injector
            injector.start()
        try:
            if resume:
                result = coordinator.resume()
            else:
                result = coordinator.execute(plan)
        finally:
            coordinator.close()
        checksums = stripe_checksums(cluster, codec, seed)
        verified = verify_actions(
            result.executed_actions or plan.actions(), checksums, workdir
        )
        return result, verified
    finally:
        shutdown_agents(network, peers)
        network.close()


def run_tcp_multicoord_repair(
    cluster: StorageCluster,
    codec: ErasureCodec,
    plan: RepairPlan,
    peers: PeerMap,
    workdir: Path,
    num_coordinators: int = 2,
    seed: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    packet_size: Optional[int] = None,
    journal_dir: Optional[Path] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    agent_timeout: float = 60.0,
    faults: Optional[FaultPlan] = None,
    topology: Optional[RackTopology] = None,
) -> Tuple[MultiRepairResult, int]:
    """Drive a sharded repair over TCP from one driver process.

    Every shard coordinator lives in this process on one shared
    :class:`~repro.net.tcp.TcpNetwork`; agents reach shard ``k``
    through the ``coordinator<k>`` alias in their peer map (same
    address as the driver, distinct endpoint id — see
    :func:`sharded_peer_spec`).  Each shard keeps its own journal
    under ``journal_dir`` (default ``workdir/shards``) and a crashed
    shard hands off to a survivor exactly as in-memory: recover at the
    same endpoint with a bumped epoch, replay the journal, resume only
    the unfinished actions.

    ``faults`` may carry :class:`~repro.runtime.faults.DomainCrashFault`
    entries when ``topology`` is given; a domain crash that names
    coordinators kills those shards mid-run through the injector.

    Returns ``(result, chunks_verified)``.
    """
    cfg = config or DEFAULT_CONFIG
    packet = packet_size or max(cluster.chunk_size // 16, 4096)
    listen = peers.get(COORDINATOR_ID)
    if faults is not None and faults.domain_crashes:
        if topology is None:
            raise ValueError(
                "fault plan has domain crashes but no topology was given"
            )
        faults = faults.resolve_domains(topology)
    multi_box: list = []

    def _kill_shard(shard: int) -> None:
        if multi_box:
            multi_box[0].kill_shard(shard)

    # As in run_tcp_repair, the injector attaches only after the probe
    # sweep so fault time zero is the start of the sharded repair.
    injector = (
        FaultInjector(faults, on_kill_coordinator=_kill_shard)
        if faults is not None
        else None
    )
    network = build_coordinator_network(
        peers, cfg, metrics=metrics, listen=listen
    )
    try:
        involved = sorted(
            {a.destination for a in plan.actions()}
            | {s for a in plan.actions() for s in a.sources}
        )
        # Probe through a throwaway coordinator at the default endpoint,
        # then free it so shard 0 can claim the same id.
        probe = Coordinator(network, cluster, codec, packet, config=cfg)
        try:
            wait_for_agents(probe, involved, timeout=agent_timeout)
        finally:
            probe.close()
            try:
                network.detach(COORDINATOR_ID)
            except KeyError:
                pass
        multi = MultiCoordinator(
            network,
            cluster,
            codec,
            packet,
            journal_dir=journal_dir or Path(workdir) / "shards",
            num_shards=num_coordinators,
            config=cfg,
            metrics=metrics,
            tracer=tracer,
        )
        multi_box.append(multi)
        if injector is not None:
            network.faults = injector
            injector.start()
        try:
            result = multi.execute(plan, packet_size=packet)
        finally:
            multi.close()
        checksums = stripe_checksums(cluster, codec, seed)
        verified = verify_actions(
            result.executed_actions or plan.actions(), checksums, workdir
        )
        return result, verified
    finally:
        shutdown_agents(network, peers)
        network.close()
