"""Asyncio TCP transport: the socket-backed ``Transport`` backend.

:class:`TcpNetwork` moves the same runtime messages as the in-memory
:class:`~repro.runtime.transport.Network`, but across real sockets
between OS processes, framed by :mod:`repro.net.wire`.  It satisfies
the same :class:`~repro.runtime.transport.Transport` protocol, so the
coordinator, agents, journal and epoch fencing run on it unchanged.

Topology model: each process attaches its *local* node(s) — an agent
process attaches its own node id, the coordinator process attaches
``COORDINATOR_ID`` — and registers every remote node as a *peer*
(``node id -> host:port``).  A send to a peer is framed and queued to
that peer's connection; a send between two local nodes takes the
in-memory path with full NIC emulation.  A node may be both local and
a peer pointing at this process's own listen port ("loopback wiring"),
in which case the peer route wins and every message crosses a real
socket — that is how the conformance suite exercises the socket path
inside one process.

Concurrency: agent worker threads call :meth:`send` synchronously; a
single background thread runs an asyncio event loop owning all
sockets.  Per peer there is one bounded frame queue and one writer
task with reconnect/backoff — a full queue blocks the *sending
thread* (backpressure), mirroring a full kernel socket buffer.  The
server side validates every frame header and CRC before decoding;
an unparseable *header* increments ``net_frames_rejected_total`` and
drops the connection (a stream whose framing lied cannot be resynced),
while a frame whose *body* fails its CRC is skipped individually — the
validated header's length fields keep the stream aligned.  A received
``DataPacket`` whose payload passed the frame CRC is delivered with
``checksum=None``: the bytes were just validated, so the runtime skips
its redundant per-payload crc32.

Emulated bandwidth still holds: a :class:`DataPacket` send reserves
the local sender's egress NIC limiter before the frame is queued, and
delivery reserves the local receiver's ingress limiter before the
message reaches the inbox — so a bandwidth cap configured on the
cluster binds on both backends.  Fault injection applies on the
sending side exactly as in memory (tick, crash black-holes, packet
drop/dup/corrupt/delay); the receiving side additionally drops
traffic involving locally known crashed nodes.  Byte-count crash
triggers fire on the sending process only — the receiver never
re-counts, so a trigger fires exactly once per plan.
"""

from __future__ import annotations

import asyncio
import queue
import random
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from ..cluster.chunk import NodeId
from ..runtime.faults import FaultInjector
from ..runtime.messages import DataPacket
from ..runtime.throttle import sleep_until
from ..runtime.transport import Endpoint, Network
from .wire import HEADER, WireError, decode_body, encode_frame_parts, parse_header

#: queue sentinel: flush what precedes it, then shut the writer down
_CLOSE = object()

#: first reconnect backoff (seconds); doubles up to _BACKOFF_CAP
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


def reconnect_delay(backoff: float, rng: random.Random) -> float:
    """Equal-jitter sleep for one reconnect attempt.

    Correlated failures make every surviving peer retry the same dead
    endpoint on the same schedule; a pure exponential backoff then
    re-synchronizes them into connection storms at each doubling.
    Equal jitter keeps the exponential envelope but spreads attempts
    uniformly over ``[backoff/2, backoff]``, decorrelating the herd
    while never sleeping more than the deterministic schedule did.
    """
    if backoff <= 0:
        return 0.0
    half = backoff / 2
    return half + rng.uniform(0, half)

#: poll period while a full bounded inbox exerts backpressure
_INBOX_POLL = 0.005


class _Peer:
    """One remote node: its address, frame queue and writer task.

    The queue is a plain ``deque`` fed by sender threads and drained by
    the writer task; a counting semaphore bounds its depth (sender-side
    backpressure) and an :class:`asyncio.Event` — set via
    ``call_soon_threadsafe``, fire-and-forget — wakes the writer.  The
    old design funneled every frame through
    ``run_coroutine_threadsafe(queue.put(...)).result()``, which costs
    a full cross-thread round trip (~1 ms) per frame and dominated
    loopback throughput.
    """

    def __init__(self, node_id: NodeId, host: str, port: int, capacity: int):
        self.node_id = node_id
        self.host = host
        self.port = port
        self.queue: deque = deque()
        self.slots = threading.Semaphore(capacity)
        #: created on the event loop (events bind to the running loop)
        self.wakeup: Optional[asyncio.Event] = None
        self.task: Optional[asyncio.Task] = None
        self.writer: Optional[asyncio.StreamWriter] = None


class TcpNetwork:
    """Socket-backed transport with the in-memory ``Network`` interface.

    Args:
        faults: optional fault injector, consulted on every send (and,
            for crash black-holing, on every delivery).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; both the
            inner in-memory fabric and the socket path emit the shared
            ``net_*`` family into it.
        inbox_capacity: bound on local endpoints' inboxes (0 =
            unbounded); a full inbox blocks the delivering side.
        send_queue_capacity: bound on each peer's outgoing frame queue;
            a full queue blocks the sending thread.
        connect_timeout: total seconds of reconnect backoff before a
            frame to an unreachable peer is dropped
            (``net_frames_dropped_total``).
        drain_timeout: seconds :meth:`close` waits per peer for queued
            frames to flush before force-closing.
    """

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        metrics=None,
        inbox_capacity: int = 0,
        send_queue_capacity: int = 64,
        connect_timeout: float = 30.0,
        drain_timeout: float = 10.0,
    ):
        # Local nodes live on a private in-memory fabric: attach/endpoint/
        # local sends inherit its exact semantics (throttling, faults,
        # detach black-holes) instead of reimplementing them.
        self._inner = Network(
            faults=faults, metrics=metrics, inbox_capacity=inbox_capacity
        )
        self.metrics = metrics
        self.net = self._inner.net
        self.send_queue_capacity = send_queue_capacity
        self.connect_timeout = connect_timeout
        self.drain_timeout = drain_timeout
        #: jitters reconnect backoff (see :func:`reconnect_delay`);
        #: swap in a seeded Random for deterministic tests
        self.reconnect_rng = random.Random()
        self._peers: Dict[NodeId, _Peer] = {}
        self._detached_peers: Set[NodeId] = set()
        self._lock = threading.Lock()
        self._tcp_bytes = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closed = False

    # -- Transport interface (delegated local topology) ------------------

    @property
    def arbiter(self):
        """QoS policy shared with the local fabric (see :class:`Network`)."""
        return self._inner.arbiter

    @arbiter.setter
    def arbiter(self, arbiter) -> None:
        self._inner.arbiter = arbiter

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self._inner.faults

    @faults.setter
    def faults(self, injector: Optional[FaultInjector]) -> None:
        self._inner.faults = injector

    @property
    def bytes_transferred(self) -> int:
        """Throttled payload bytes moved (local + sent over sockets)."""
        with self._lock:
            return self._inner.bytes_transferred + self._tcp_bytes

    def attach(
        self,
        node_id: NodeId,
        bandwidth: Optional[float],
        stop: Optional[threading.Event] = None,
    ) -> Endpoint:
        """Register a node hosted by *this* process."""
        return self._inner.attach(node_id, bandwidth, stop=stop)

    def detach(self, node_id: NodeId) -> Optional[Endpoint]:
        """Remove a node from the topology (local endpoint, peer or both).

        Subsequent sends to it are silently dropped, exactly as on the
        in-memory fabric.  Returns the local endpoint if there was one.
        """
        endpoint: Optional[Endpoint] = None
        known = False
        if node_id in self._inner._endpoints:
            endpoint = self._inner.detach(node_id)
            known = True
        peer = self._peers.pop(node_id, None)
        if peer is not None:
            known = True
            self._detached_peers.add(node_id)
            if peer.wakeup is not None and self._loop is not None:
                # _CLOSE bypasses the slot semaphore: a full queue must
                # not block the detach (the writer drains it anyway).
                peer.queue.append(_CLOSE)
                try:
                    self._loop.call_soon_threadsafe(peer.wakeup.set)
                except RuntimeError:
                    pass  # loop already stopped
        if not known:
            raise KeyError(f"node {node_id} not attached")
        return endpoint

    def endpoint(self, node_id: NodeId) -> Endpoint:
        """The *local* endpoint of a node hosted by this process."""
        return self._inner.endpoint(node_id)

    def node_ids(self) -> List[NodeId]:
        """Every node this process can reach: local endpoints + peers."""
        return sorted(set(self._inner.node_ids()) | set(self._peers))

    def scale_bandwidth(self, node_id: NodeId, factor: float) -> None:
        """Degrade a *local* node's NIC rates (slow-NIC fault).

        A remote node's slowdown is ignored here: every process runs
        the same fault plan, and the slowdown binds in the process that
        hosts the node.
        """
        if node_id not in self._inner._endpoints:
            return
        self._inner.scale_bandwidth(node_id, factor)

    # -- peer wiring -----------------------------------------------------

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Accept inbound connections; returns the bound (host, port).

        ``port=0`` binds an ephemeral port (tests).  Frames received
        are decoded, validated and delivered to the local endpoint
        their envelope names; undeliverable or unparseable traffic is
        counted and dropped, never raised — a remote peer cannot crash
        this process with bytes.
        """
        future = asyncio.run_coroutine_threadsafe(
            self._start_server(host, port), self._ensure_loop()
        )
        return future.result(timeout=30)

    def add_peer(self, node_id: NodeId, host: str, port: int) -> None:
        """Register a remote node reachable at ``host:port``.

        Connections are lazy: the peer's writer dials on the first
        frame and redials with exponential backoff on failure, so peers
        may be registered before the remote process is listening.
        """
        if node_id in self._peers:
            raise ValueError(f"peer {node_id} already registered")
        peer = _Peer(node_id, host, port, self.send_queue_capacity)
        future = asyncio.run_coroutine_threadsafe(
            self._install_peer(peer), self._ensure_loop()
        )
        future.result(timeout=30)
        self._peers[node_id] = peer
        self._detached_peers.discard(node_id)

    def peers(self) -> Dict[NodeId, Tuple[str, int]]:
        """Registered remote nodes and their addresses."""
        return {p.node_id: (p.host, p.port) for p in self._peers.values()}

    # -- send ------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message) -> None:
        """Deliver a message; peers over TCP, local nodes in memory.

        Same contract as :meth:`Network.send`: DataPackets pay for the
        sender's emulated NIC and exert backpressure; crashed, closed
        or detached destinations swallow traffic silently; unknown
        destinations raise ``KeyError``.
        """
        peer = self._peers.get(dst)
        if peer is None:
            if dst in self._detached_peers and dst not in self._inner._endpoints:
                return  # dead remote peer: drop silently
            self._inner.send(src, dst, message)
            return
        faults = self.faults
        if faults is not None:
            faults.tick(self)
        sender = self._inner.endpoint(src)
        if sender.closed:
            return
        if isinstance(message, DataPacket):
            if src == dst:
                raise ValueError("loopback data transfer is not modeled")
            copies = 1
            extra_delay = 0.0
            corrupt_payload = None
            if faults is not None:
                fate = faults.on_data_packet(src, dst, message)
                if not fate.deliver:
                    return
                copies = fate.copies
                extra_delay = fate.extra_delay
                corrupt_payload = fate.payload
            nbytes = len(message.payload)
            head, payload = encode_frame_parts(src, dst, message)
            if corrupt_payload is not None:
                # Corruption happens "in flight": the frame keeps the
                # CRC of the original bytes, so the receiver's frame
                # CRC rejects it — the wire-level analogue of the
                # in-memory fabric's stale-checksum packets.
                payload = corrupt_payload
            arbiter = self.arbiter
            for _ in range(copies):
                if arbiter is not None:
                    arbiter.admit(message, nbytes, stop=sender.nic_out.stop)
                # Sender-side egress reservation only: the receiver's
                # ingress is charged in its own process at delivery.
                deadline = sender.nic_out.reserve(nbytes)
                sleep_until(deadline + extra_delay, stop=sender.nic_out.stop)
                with self._lock:
                    self._tcp_bytes += nbytes
                self.net.bytes_sent.inc(nbytes, node=src)
                self._enqueue(peer, src, (head, payload))
            return
        if faults is not None and not faults.filter_message(src, dst):
            return  # a crashed node neither sends nor receives
        self._enqueue(peer, src, encode_frame_parts(src, dst, message))

    def _enqueue(
        self, peer: _Peer, src: NodeId, parts: Tuple[bytes, bytes]
    ) -> None:
        """Queue one frame's iovec to a peer; blocks while the queue is full."""
        if self._closed or peer.wakeup is None:
            self.net.frames_dropped.inc(node=peer.node_id)
            return
        self.net.send_queue_depth.observe(len(peer.queue), node=peer.node_id)
        # Bounded queue: the semaphore is the backpressure.  Poll so a
        # sender blocked against an abandoned peer notices close().
        while not peer.slots.acquire(timeout=0.5):
            if self._closed:
                self.net.frames_dropped.inc(node=peer.node_id)
                return
        peer.queue.append(parts)
        try:
            self._loop.call_soon_threadsafe(peer.wakeup.set)
        except RuntimeError:
            peer.slots.release()
            self.net.frames_dropped.inc(node=peer.node_id)
            return  # loop stopped underneath us (late close)
        self.net.frames_sent.inc(node=src)

    # -- lifecycle -------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut the socket layer down (idempotent).

        With ``drain`` (the default), every peer queue is flushed —
        bounded by ``drain_timeout`` per peer — before connections
        close; without it, queued frames are abandoned.  Local
        endpoints are left attached: a closed TcpNetwork degrades to
        the in-memory fabric.
        """
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain), self._loop
        )
        try:
            future.result(
                timeout=self.drain_timeout * (len(self._peers) + 1) + 5
            )
        except Exception:
            pass  # a wedged drain must not wedge the caller
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    # -- event-loop side -------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._closed:
                raise RuntimeError("TcpNetwork is closed")
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="tcp-network-loop",
                    daemon=True,
                )
                self._thread.start()
            return self._loop

    async def _install_peer(self, peer: _Peer) -> None:
        # The wakeup event and task are created on the loop (an
        # asyncio.Event binds to the running loop on first use).
        peer.wakeup = asyncio.Event()
        peer.task = asyncio.ensure_future(self._peer_writer(peer))

    async def _peer_writer(self, peer: _Peer) -> None:
        """Drain one peer's frame queue into its (re)connected socket."""
        try:
            while True:
                while not peer.queue:
                    await peer.wakeup.wait()
                    peer.wakeup.clear()
                parts = peer.queue.popleft()
                if parts is _CLOSE:
                    return
                peer.slots.release()
                await self._write_frame(peer, parts)
        finally:
            await self._close_peer_socket(peer)

    async def _write_frame(self, peer: _Peer, parts: Tuple[bytes, bytes]) -> None:
        head, payload = parts
        for retry in range(2):
            if peer.writer is None and not await self._connect(peer):
                break
            try:
                # Scatter-gather: header+meta and payload go out as the
                # buffers the sender produced — no per-frame join copy.
                peer.writer.write(head)
                if len(payload):
                    peer.writer.write(payload)
                await peer.writer.drain()
                return
            except (ConnectionError, OSError):
                # Connection died mid-write; retry once on a fresh one.
                # Re-sent frames may duplicate at the receiver — the
                # runtime dedupes (packet arrived-sets, attempt tags).
                await self._close_peer_socket(peer)
        self.net.frames_dropped.inc(node=peer.node_id)

    async def _connect(self, peer: _Peer) -> bool:
        """Dial a peer with exponential backoff; False when given up."""
        backoff = _BACKOFF_BASE
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                _reader, writer = await asyncio.open_connection(
                    peer.host, peer.port
                )
            except OSError:
                delay = reconnect_delay(backoff, self.reconnect_rng)
                if time.monotonic() + delay >= deadline:
                    return False
                await asyncio.sleep(delay)
                backoff = min(backoff * 2, _BACKOFF_CAP)
                continue
            peer.writer = writer
            self.net.reconnects.inc(node=peer.node_id)
            self.net.connections.inc(direction="out")
            return True

    async def _close_peer_socket(self, peer: _Peer) -> None:
        if peer.writer is None:
            return
        writer, peer.writer = peer.writer, None
        self.net.connections.dec(direction="out")
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _start_server(self, host: str, port: int) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("already listening")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _handle_connection(self, reader, writer) -> None:
        self.net.connections.inc(direction="in")
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER.size)
                except asyncio.IncompleteReadError:
                    return  # peer closed cleanly (or mid-frame: nothing lost)
                try:
                    code, _epoch, meta_len, payload_len, crc = parse_header(
                        header
                    )
                except WireError:
                    self.net.frames_rejected.inc(reason="header")
                    return  # stream can't be resynced; drop the connection
                try:
                    body = await reader.readexactly(meta_len + payload_len)
                except asyncio.IncompleteReadError:
                    self.net.frames_rejected.inc(reason="truncated")
                    return
                view = memoryview(body)
                try:
                    src, dst, message = decode_body(
                        code, crc, view[:meta_len], view[meta_len:]
                    )
                except WireError:
                    # The header already validated, so the length
                    # fields are honest and the stream stays aligned:
                    # skip just this frame (a payload corrupted in
                    # flight) instead of dropping the connection.
                    self.net.frames_rejected.inc(reason="body")
                    continue
                if (
                    isinstance(message, DataPacket)
                    and message.checksum is not None
                ):
                    # The frame CRC validated these exact payload
                    # bytes; clearing the app-level checksum lets
                    # assemblies and relays skip an identical crc32
                    # pass per payload.  (The in-memory fabric keeps
                    # checksums: its faults corrupt packets after
                    # construction, past any wire-level check.)
                    message = replace(message, checksum=None)
                await self._deliver(src, dst, message)
        except (ConnectionError, OSError):
            pass  # remote reset: equivalent to a closed stream
        except asyncio.CancelledError:
            # Swallow the shutdown cancel: asyncio's stream-server
            # done-callback re-raises task.exception() into the loop's
            # exception handler otherwise, spamming stderr on close.
            pass
        finally:
            self._conn_tasks.discard(task)
            self.net.connections.dec(direction="in")
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _deliver(self, src: NodeId, dst: NodeId, message) -> None:
        """Hand a decoded message to the local endpoint it names."""
        faults = self.faults
        if faults is not None and not faults.filter_message(src, dst):
            return  # locally known crashed node: black hole
        try:
            endpoint = self._inner.endpoint(dst)
        except KeyError:
            self.net.frames_dropped.inc(node=dst)
            return  # misrouted or detached-here destination
        if endpoint.closed:
            return
        if isinstance(message, DataPacket):
            nbytes = len(message.payload)
            # Receiver-side ingress reservation: the emulated NIC cap
            # binds here even though the sender is another process.
            deadline = endpoint.nic_in.reserve(nbytes)
            delay = deadline - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            self.net.bytes_received.inc(nbytes, node=dst)
        while True:
            try:
                endpoint.inbox.put_nowait(message)
                break
            except queue.Full:
                # Bounded inbox: backpressure the socket by pausing this
                # connection's reads (the kernel buffer then fills and
                # stalls the remote writer). Never block the loop itself.
                await asyncio.sleep(_INBOX_POLL)
        self.net.frames_received.inc(node=dst)
        self.net.inbox_depth.set(endpoint.inbox.qsize(), node=dst)

    async def _shutdown(self, drain: bool) -> None:
        for peer in self._peers.values():
            if peer.wakeup is None or peer.task is None:
                continue
            if drain:
                peer.queue.append(_CLOSE)
                peer.wakeup.set()
                try:
                    await asyncio.wait_for(peer.task, self.drain_timeout)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    peer.task.cancel()
            else:
                peer.task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
