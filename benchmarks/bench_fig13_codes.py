"""Figure 13 / Experiment B.3: impact of different erasure codes (testbed).

Paper claims reproduced here:

* migration-only is unaffected by (n,k);
* reconstruction-only degrades sharply from RS(9,6) to RS(16,12)
  (more repair traffic);
* FastPR achieves the least repair time for every code (paper: cuts
  reconstruction-only by 71.7% at RS(16,12)).
"""

from conftest import run_once

from repro.bench.experiments import fig13_codes

RUNS = 1


def test_fig13_codes(benchmark, save_result):
    exp = run_once(benchmark, fig13_codes, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        migration = panel.values_of("migration")
        recon = panel.values_of("reconstruction")
        fastpr = panel.values_of("fastpr")
        hot = "hot-standby" in panel.title
        # Migration-only flat in (n,k).
        assert max(migration) / min(migration) < 1.4, (
            f"{panel.title}: migration-only should not depend on the code"
        )
        # Reconstruction-only grows with k.
        assert recon[-1] > recon[0] * 1.3, (
            f"{panel.title}: reconstruction-only should degrade at RS(16,12)"
        )
        # FastPR is (near-)best everywhere.  At M=21 a k=12 stripe
        # admits only singleton reconstruction sets, so hot-standby
        # FastPR degenerates to ~1:1 coupling and sits within noise of
        # migration-only — the paper's own EC2 numbers show the same
        # near-tie (Fig 13(b), RS(16,12)); allow a wider envelope there.
        migration_slack = 1.30 if hot else 1.15
        for i in range(len(panel.xticks)):
            assert fastpr[i] <= recon[i] * 1.10
            assert fastpr[i] <= migration[i] * migration_slack
