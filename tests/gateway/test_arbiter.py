"""TrafficArbiter: the DESIGN.md §15 QoS invariants, unit-level.

The arbiter's contract has three legs — client transfers are never
delayed, background classes are clamped to ``(1 - client_floor) *
rate`` while the client is busy, and idle classes lend their share
(work conservation).  The tests below pin the arithmetic with
``burst=0`` buckets (wait == nbytes / effective_rate, exactly) and a
pre-set stop event so no test actually sleeps.
"""

import threading

import pytest

from repro.gateway import CLASSES, TrafficArbiter, traffic_class
from repro.obs import MetricsRegistry
from repro.runtime.messages import (
    ChunkRead,
    ChunkWrite,
    DataPacket,
    GetRequest,
    Heartbeat,
    PutRequest,
)

RATE = 1000.0  # bytes/s; tiny on purpose so waits are large and exact


def make(client_floor=0.5, **kwargs):
    """An arbiter whose admission waits return instantly.

    ``burst=0`` removes the bucket headroom so the imposed wait is
    exactly ``nbytes / (rate * share)``; the pre-set stop event makes
    the internal ``event.wait(timeout=wait)`` a no-op, so tests read
    the returned delay without paying it in wall-clock.
    """
    stop = threading.Event()
    stop.set()
    kwargs.setdefault("burst", 0)
    kwargs.setdefault("stop", stop)
    return TrafficArbiter(RATE, client_floor=client_floor, **kwargs)


class TestTrafficClass:
    def test_gateway_messages_are_client(self):
        for message in (
            ChunkWrite(1, 0, 0, 0, b"x", nonce=1, reply_to=-1),
            ChunkRead(stripe_id=1, chunk_index=0, nonce=1, reply_to=-1),
            PutRequest(0, 0, 0, 0, b"x", key="k", nonce=1, reply_to=-1),
            GetRequest(key="k", nonce=1, reply_to=-1),
        ):
            assert traffic_class(message) == "client"

    def test_repair_traffic_is_repair(self):
        assert traffic_class(DataPacket(1, 0, 0, 0, b"x")) == "repair"

    def test_unclassified_defaults_to_repair(self):
        assert traffic_class(Heartbeat(node_id=1)) == "repair"
        assert traffic_class(object()) == "repair"

    def test_classes_are_closed(self):
        assert set(CLASSES) == {"client", "repair", "scrub"}


class TestClientNeverDelayed:
    def test_client_admit_is_free_at_any_size(self):
        arbiter = make()
        message = GetRequest(key="k", nonce=1, reply_to=-1)
        # 10^6x the per-second rate: still zero imposed latency.
        assert arbiter.admit(message, int(RATE * 1e6)) == 0.0

    def test_client_admit_is_free_under_repair_pressure(self):
        arbiter = make()
        packet = DataPacket(1, 0, 0, 0, b"x")
        request = ChunkRead(stripe_id=1, chunk_index=0, nonce=1, reply_to=-1)
        with arbiter.register("repair"):
            arbiter.admit(packet, 10_000)  # deep repair token debt
            assert arbiter.admit(request, 10_000) == 0.0


class TestBackgroundClamp:
    def test_repair_runs_at_line_rate_while_client_idle(self):
        # Idle client + idle scrub lend everything: share == 1.0.
        arbiter = make(client_floor=0.5)
        wait = arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1000)
        assert wait == pytest.approx(1000 / RATE)

    def test_repair_clamped_while_client_flow_registered(self):
        arbiter = make(client_floor=0.5)
        with arbiter.register("client"):
            wait = arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1000)
        # Scrub is idle and lends its split, so repair gets the whole
        # background budget: (1 - floor) * rate.
        assert wait == pytest.approx(1000 / (RATE * 0.5))

    def test_recent_client_admit_counts_as_busy(self):
        arbiter = make(client_floor=0.5)
        request = ChunkRead(stripe_id=1, chunk_index=0, nonce=1, reply_to=-1)
        arbiter.admit(request, 1)  # no flow object, just an admit
        wait = arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1000)
        assert wait == pytest.approx(1000 / (RATE * 0.5))

    def test_busy_scrub_halves_the_repair_share(self):
        arbiter = make(client_floor=0.5)
        with arbiter.register("client"), arbiter.register("scrub"):
            wait = arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1000)
        # Both background classes busy: each gets (1 - floor) / 2.
        assert wait == pytest.approx(1000 / (RATE * 0.25))

    def test_higher_floor_means_slower_background(self):
        waits = []
        for floor in (0.2, 0.5, 0.8):
            arbiter = make(client_floor=floor)
            with arbiter.register("client"):
                waits.append(
                    arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1000)
                )
        assert waits == sorted(waits)
        assert waits[0] < waits[-1]

    def test_burst_absorbs_small_transfers(self):
        stop = threading.Event()
        stop.set()
        arbiter = TrafficArbiter(
            RATE, client_floor=0.5, burst=4096, stop=stop
        )
        assert arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1024) == 0.0


class TestFlowsAndLifecycle:
    def test_register_counts_and_unwinds(self):
        arbiter = make()
        assert arbiter.active_flows("repair") == 0
        with arbiter.register("repair"):
            assert arbiter.active_flows("repair") == 1
            with arbiter.register("repair"):
                assert arbiter.active_flows("repair") == 2
        assert arbiter.active_flows("repair") == 0

    def test_register_unwinds_on_exception(self):
        arbiter = make()
        with pytest.raises(RuntimeError):
            with arbiter.register("scrub"):
                raise RuntimeError("boom")
        assert arbiter.active_flows("scrub") == 0

    def test_unknown_class_rejected(self):
        arbiter = make()
        with pytest.raises(ValueError):
            with arbiter.register("bulk"):
                pass  # pragma: no cover

    def test_disabled_when_rate_is_none_or_inf(self):
        for rate in (None, float("inf")):
            arbiter = TrafficArbiter(rate)
            assert arbiter.disabled
            assert arbiter.admit(DataPacket(1, 0, 0, 0, b""), 1 << 30) == 0.0

    def test_client_floor_validated(self):
        for floor in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                TrafficArbiter(RATE, client_floor=floor)

    def test_zero_byte_transfers_are_free(self):
        arbiter = make()
        assert arbiter.admit(DataPacket(1, 0, 0, 0, b""), 0) == 0.0


class TestMetrics:
    def test_bytes_wait_and_flows_recorded_per_class(self):
        registry = MetricsRegistry()
        arbiter = make(metrics=registry)
        request = ChunkRead(stripe_id=1, chunk_index=0, nonce=1, reply_to=-1)
        with arbiter.register("repair"):
            arbiter.admit(DataPacket(1, 0, 0, 0, b""), 500)
            arbiter.admit(request, 300)
        by_name = {m.name: m for m in registry}
        assert by_name["arbiter_bytes_total"].value(cls="repair") == 500
        assert by_name["arbiter_bytes_total"].value(cls="client") == 300
        assert by_name["arbiter_wait_seconds"].count(cls="repair") == 1
        assert by_name["arbiter_wait_seconds"].count(cls="client") == 1
        # flows gauge returned to zero after the context exited
        assert by_name["arbiter_active_flows"].value(cls="repair") == 0
