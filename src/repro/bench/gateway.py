"""Foreground GET latency under repair, as ``BENCH_gateway.json``.

The question the gateway exists to answer: what does a repair do to
the *client*?  This bench stands up an in-memory RS(9,6) testbed with
a :class:`~repro.gateway.ObjectStore` attached to the same emulated
network, PUTs a handful of objects, then measures GET latency in four
regimes:

- ``idle`` — no repair traffic at all (the baseline);
- ``predictive`` — a FastPR soon-to-fail repair runs concurrently,
  with the :class:`~repro.gateway.TrafficArbiter` holding the client
  bandwidth floor;
- ``predictive_unarbitrated`` — the same repair with the arbiter
  disabled, to show what the floor is worth;
- ``reactive`` — the node is already dead: the same GETs now decode
  around the hole (degraded reads) while a reconstruction-only repair
  runs.

Each regime reports p50/p99 latency, GET goodput and the degraded-read
count.  The committed document carries its own acceptance bar:
``p99(predictive) <= max_p99_ratio * p99(idle)`` — if the arbiter
stops protecting foreground reads, ``--fail-on-regression`` fails the
bench instead of shipping the regression.

Usage::

    python -m repro.bench.gateway -o BENCH_gateway.json \
        --fail-on-regression
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import List, Optional

from ..core.serde import Schema

GATEWAY_BENCH_SCHEMA = Schema(
    "bench-gateway",
    version=1,
    fields=("config", "scenarios", "max_p99_ratio"),
    required=("config", "scenarios", "max_p99_ratio"),
)

#: the acceptance bar: predictive-repair p99 within this factor of idle
_MAX_P99_RATIO = 2.0


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _summarize(latencies: List[float], payload_bytes: int) -> dict:
    total = sum(latencies)
    return {
        "gets": len(latencies),
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "mean_seconds": total / len(latencies),
        # MB/s of object bytes returned to the client; carries the
        # ``mb_per_s`` suffix so the generic bench regression gate
        # watches it across commits.
        "get_mb_per_s": (payload_bytes * len(latencies) / 1e6) / total,
    }


def run_gateway_bench(
    seed: int = 7,
    gets: int = 40,
    objects: int = 4,
    object_bytes: int = 3 << 18,
    chunk_bytes: int = 1 << 16,
    network_mb_s: float = 40.0,
    stripes: int = 96,
    client_floor: float = 0.7,
) -> dict:
    """Measure foreground GET latency idle vs under repair.

    A fresh rig is built per scenario (same seed, same placements) so
    repair state never bleeds between regimes.  The repair runs on a
    background thread through the testbed — exactly the path the
    RepairDaemon takes — while the foreground thread GETs objects
    round-robin through the gateway on the shared emulated network.
    """
    from ..cluster import StorageCluster
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner, ReconstructionOnlyPlanner
    from ..ec import make_codec
    from ..gateway import ObjectStore, TrafficArbiter
    from ..obs import MetricsRegistry
    from ..runtime.testbed import EmulatedTestbed

    codec = make_codec("rs(9,6)")
    num_nodes = 12

    def build_rig(arbitrated: bool):
        cluster = StorageCluster.random(
            num_nodes,
            stripes,
            codec.n,
            codec.k,
            seed=seed,
            disk_bandwidth=10 * network_mb_s * 1e6,
            network_bandwidth=network_mb_s * 1e6,
            chunk_size=chunk_bytes,
        )
        arbiter = (
            TrafficArbiter(network_mb_s * 1e6, client_floor=client_floor)
            if arbitrated
            else None
        )
        metrics = MetricsRegistry()
        testbed = EmulatedTestbed(
            cluster, codec, metrics=metrics, arbiter=arbiter
        )
        return cluster, testbed, metrics

    def load_objects(cluster, testbed, metrics) -> ObjectStore:
        store = ObjectStore(
            cluster,
            codec,
            testbed.network,
            bandwidth=cluster.network_bandwidth,
            chunk_size=chunk_bytes,
            metrics=metrics,
        )
        payload = bytes(
            (seed + i) % 256 for i in range(object_bytes)
        )
        for index in range(objects):
            store.put(f"bench/object-{index}", payload)
        return store

    def measure(store, count: int) -> List[float]:
        latencies = []
        for i in range(count):
            key = f"bench/object-{i % objects}"
            start = time.perf_counter()
            data = store.get(key)
            latencies.append(time.perf_counter() - start)
            if len(data) != object_bytes:
                raise RuntimeError(
                    f"GET {key} returned {len(data)} of "
                    f"{object_bytes} bytes"
                )
        return latencies

    def degraded_total(metrics) -> int:
        for metric in metrics:
            if metric.name == "gateway_degraded_reads_total":
                return int(metric.total())
        return 0

    scenarios = {}

    # -- idle baseline -------------------------------------------------
    cluster, testbed, metrics = build_rig(arbitrated=True)
    with testbed:
        testbed.load_random_data(seed=seed)
        store = load_objects(cluster, testbed, metrics)
        latencies = measure(store, gets)
        store.close()
    scenarios["idle"] = dict(
        _summarize(latencies, object_bytes),
        degraded_gets=degraded_total(metrics),
        repair_seconds=0.0,
    )

    # -- repairs: predictive (arbitrated + not) and reactive -----------
    def pick_victim(store) -> int:
        """The node holding the most object *data* chunks.

        Failing this node maximizes degraded reads, so the reactive
        scenario actually exercises decode-around-the-hole instead of
        losing only parity chunks.
        """
        counts = {}
        for key in store.keys():
            for ref in store.stat(key).stripes:
                for node in ref.placement[: codec.k]:
                    counts[node] = counts.get(node, 0) + 1
        return max(counts, key=lambda node: (counts[node], node))

    def under_repair(name: str, arbitrated: bool, reactive: bool):
        cluster, testbed, metrics = build_rig(arbitrated=arbitrated)
        with testbed:
            testbed.load_random_data(seed=seed)
            store = load_objects(cluster, testbed, metrics)
            victim = pick_victim(store)
            if reactive:
                cluster.node(victim).mark_failed()
                plan = ReconstructionOnlyPlanner(seed=seed).plan(
                    cluster, victim
                )
            else:
                cluster.node(victim).mark_soon_to_fail()
                plan = FastPRPlanner(
                    scenario=RepairScenario.SCATTERED, seed=seed
                ).plan(cluster, victim)
            repair_error = []

            def run_repair():
                started = time.perf_counter()
                try:
                    testbed.execute(plan)
                except Exception as exc:  # pragma: no cover - surfaced
                    repair_error.append(exc)
                finally:
                    repair_error.append(time.perf_counter() - started)

            worker = threading.Thread(target=run_repair, name="bench-repair")
            worker.start()
            try:
                latencies = measure(store, gets)
            finally:
                worker.join()
                store.close()
            if repair_error and isinstance(repair_error[0], Exception):
                raise repair_error[0]
        scenarios[name] = dict(
            _summarize(latencies, object_bytes),
            degraded_gets=degraded_total(metrics),
            repair_seconds=float(repair_error[-1]),
        )

    under_repair("predictive", arbitrated=True, reactive=False)
    under_repair("predictive_unarbitrated", arbitrated=False, reactive=False)
    under_repair("reactive", arbitrated=True, reactive=True)

    body = {
        "config": {
            "nodes": num_nodes,
            "stripes": stripes,
            "code": f"rs({codec.n},{codec.k})",
            "chunk_bytes": chunk_bytes,
            "object_bytes": object_bytes,
            "objects": objects,
            "gets": gets,
            "network_mb_s": network_mb_s,
            "client_floor": client_floor,
            "seed": seed,
        },
        "scenarios": scenarios,
        "max_p99_ratio": _MAX_P99_RATIO,
    }
    return GATEWAY_BENCH_SCHEMA.dump(body)


def validate_gateway(document: dict) -> dict:
    """Schema-check the bench document; reject empty scenarios."""
    body = GATEWAY_BENCH_SCHEMA.load(document)
    for name in ("idle", "predictive", "predictive_unarbitrated",
                 "reactive"):
        section = body["scenarios"].get(name)
        if not section or section["gets"] <= 0:
            raise ValueError(f"gateway bench scenario {name!r} is empty")
    if body["scenarios"]["reactive"]["degraded_gets"] <= 0:
        raise ValueError(
            "reactive scenario performed no degraded reads — the "
            "victim node held none of the objects' data chunks"
        )
    return body


def check_gateway_gate(document: dict) -> Optional[str]:
    """The QoS acceptance bar; a problem string or None.

    Evaluated within a single run (idle and predictive measured
    seconds apart on the same host), so it gates even when the config
    changed and the cross-commit comparison is skipped.
    """
    idle = document["scenarios"]["idle"]["p99_seconds"]
    repair = document["scenarios"]["predictive"]["p99_seconds"]
    limit = document["max_p99_ratio"]
    if repair > limit * idle:
        return (
            f"p99 GET under predictive repair is {repair:.3f}s, more "
            f"than {limit:.1f}x the idle p99 of {idle:.3f}s; the "
            "arbiter is no longer holding the client floor"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gateway", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "-o", "--output", default="BENCH_gateway.json",
        help="where to write the bench document",
    )
    parser.add_argument(
        "--gets", type=int, default=30,
        help="foreground GETs measured per scenario",
    )
    parser.add_argument(
        "--client-floor", type=float, default=0.7,
        help="arbiter client bandwidth floor during repair scenarios",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="enforce the in-document p99 gate and compare goodput "
        "against the committed document",
    )
    parser.add_argument(
        "--regression-tolerance", type=float, default=0.30,
        help="fractional goodput slowdown tolerated vs the committed "
        "document",
    )
    args = parser.parse_args(argv)

    document = run_gateway_bench(
        seed=args.seed, gets=args.gets, client_floor=args.client_floor
    )
    validate_gateway(document)

    problems = []
    if args.fail_on_regression:
        gate = check_gateway_gate(document)
        if gate is not None:
            problems.append(gate)
        try:
            with open(args.output) as f:
                committed = json.load(f)
        except (OSError, json.JSONDecodeError):
            committed = None
        if committed is not None:
            from .smoke import check_regressions

            problems.extend(
                check_regressions(
                    committed, document,
                    tolerance=args.regression_tolerance,
                )
            )

    with open(args.output, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    for name in ("idle", "predictive", "predictive_unarbitrated",
                 "reactive"):
        section = document["scenarios"][name]
        print(
            f"wrote {args.output}: {name} p50 "
            f"{section['p50_seconds'] * 1e3:.1f} ms, p99 "
            f"{section['p99_seconds'] * 1e3:.1f} ms, "
            f"{section['get_mb_per_s']:.1f} MB/s, "
            f"{section['degraded_gets']} degraded"
        )
    if problems:
        for problem in problems:
            print(f"gateway bench regression: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
