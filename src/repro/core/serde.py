"""One serialization protocol for every ``to_dict``/``from_dict`` pair.

Before this module, each serializable type hand-rolled its own
convention: :class:`~repro.runtime.faults.FaultPlan` rejected unknown
keys with ``TypeError``, the cluster snapshot carried a ``version``
field and raised ``SnapshotError``, :class:`~repro.core.plan.RepairPlan`
silently ignored whatever it did not recognize, and
:class:`~repro.runtime.config.RuntimeConfig` was not serializable at
all.  :class:`Schema` is the shared protocol all four now ride on:

* ``dump(body)`` stamps the document with the schema's version;
* ``load(document)`` verifies the version (documents written before a
  schema carried versions are accepted as version 1 when
  ``implicit_version`` allows), rejects unknown keys by name — typos
  in hand-written JSON surface instead of being ignored — and returns
  the body for the caller's constructor;
* the error type is configurable per schema, so existing contracts
  (``TypeError`` from ``FaultPlan.from_dict``, ``SnapshotError`` from
  snapshots) survive the port.

Round-tripping ``load(dump(body)) == body`` is a property test in
``tests/core/test_serde.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Type


class SerdeError(ValueError):
    """Default error for version mismatches and unknown keys."""


class Schema:
    """A named, versioned document schema with unknown-key rejection.

    Args:
        kind: human-readable document name (used in error messages).
        version: the schema version ``dump`` stamps and ``load`` expects.
        fields: every key the document body may carry.
        required: keys that must be present (subset of ``fields``).
        error: exception class raised on violations (defaults to
            :class:`SerdeError`; snapshot/fault-plan schemas pass their
            legacy error types).
        implicit_version: accept documents without a ``version`` key as
            this version (for formats that predate versioning, e.g.
            fault-plan JSON written by hand or plans embedded in old
            journals).  ``None`` makes the version mandatory.
    """

    VERSION_KEY = "version"

    def __init__(
        self,
        kind: str,
        version: int,
        fields: Iterable[str],
        required: Iterable[str] = (),
        error: Type[Exception] = SerdeError,
        implicit_version: Optional[int] = None,
    ):
        self.kind = kind
        self.version = version
        self.fields = frozenset(fields)
        self.required = frozenset(required)
        unknown_required = self.required - self.fields
        if unknown_required:
            raise ValueError(
                f"required keys {sorted(unknown_required)} not in fields"
            )
        if self.VERSION_KEY in self.fields:
            raise ValueError(f"{self.VERSION_KEY!r} is reserved")
        self.error = error
        self.implicit_version = implicit_version

    def dump(self, body: Dict) -> Dict:
        """Stamp a body with this schema's version."""
        return {self.VERSION_KEY: self.version, **body}

    def load(self, document: Dict) -> Dict:
        """Validate a document; returns the body (version key stripped).

        Raises:
            self.error: on a non-mapping document, version mismatch,
                unknown keys, or missing required keys.
        """
        if not isinstance(document, dict):
            raise self.error(
                f"{self.kind} document must be a mapping, "
                f"got {type(document).__name__}"
            )
        version = document.get(self.VERSION_KEY, self.implicit_version)
        if version != self.version:
            raise self.error(
                f"unsupported {self.kind} version {version!r} "
                f"(expected {self.version})"
            )
        body = {k: v for k, v in document.items() if k != self.VERSION_KEY}
        unknown = set(body) - self.fields
        if unknown:
            raise self.error(
                f"unknown {self.kind} keys: {sorted(unknown)} "
                f"(expected a subset of {sorted(self.fields)})"
            )
        missing = self.required - set(body)
        if missing:
            raise self.error(
                f"{self.kind} missing required keys: {sorted(missing)}"
            )
        return body
