"""The FastPR coordinator (Section V), as a supervised state machine.

Deployed alongside the NameNode in the paper; here it drives the
emulated testbed.  Per repair round it sends every destination a
:class:`ReceiveCommand` (with GF recovery coefficients) and every
source a :class:`SendCommand`, then supervises the round to completion:

* **deadlines** per round are derived from the Section III cost model
  (``deadline_margin`` x the estimated round time, floored at
  ``min_deadline``) instead of a magic constant;
* on a missed deadline or a NACK the coordinator **probes** the
  involved nodes (Ping/Pong, backed by passive heartbeats) to separate
  the slow from the dead;
* **transient** stalls (lost or corrupted packets, spurious NACKs) get
  bounded retries with exponential backoff — every reissue bumps the
  action's ``attempt`` so stale traffic cannot contaminate the fresh
  assembly;
* **permanent** failures are replanned via
  :func:`repro.core.planner.heal_action`: if the STF node dies
  mid-repair its unmigrated chunks fall back to pure reconstruction
  (the paper's hybrid -> reconstruction fallback), a dead helper is
  replaced by a surviving stripe peer, a dead destination is re-chosen.

The run fails loudly — :class:`RepairTimeoutError` names the pending
action keys, :class:`RepairFailedError` the unrecoverable one — rather
than hanging on a bare ``inbox.get``.

Crash recovery: when constructed with a
:class:`~repro.runtime.journal.RepairJournal`, the coordinator
journals every state transition *before* acting on it (plan commit,
round start, each ACKed action, round completion, finish).  If the
coordinator process dies, :meth:`Coordinator.recover` replays the
journal, :meth:`Coordinator.resume` queries every agent's chunk
inventory (:class:`~repro.runtime.messages.InventoryQuery`),
reconciles journal against reality, and re-executes only the actions
that never durably completed.  Each incarnation runs under a fresh
``epoch``; agents fence out commands from older epochs, so a zombie
predecessor can never mutate a store behind its successor's back.
"""

from __future__ import annotations

import contextlib
import queue
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from ..cluster.chunk import NodeId, StripeId
from ..cluster.cluster import StorageCluster
from ..core.plan import ChunkRepairAction, RepairMethod, RepairPlan
from ..core.planner import UnrecoverableChunkError, heal_action
from ..core.scheduling import HelperBudget, order_chain
from ..ec.codec import ErasureCodec
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Span, Tracer
from .config import DEFAULT_CONFIG, RuntimeConfig
from .journal import (
    ActionCompleted,
    CoordinatorCrash,
    JournalError,
    JournalRecord,
    PlanCommitted,
    RepairFinished,
    RepairJournal,
    RoundCompleted,
    RoundStarted,
    SliceCompleted,
)
from .messages import (
    ActionKey,
    Heartbeat,
    InventoryQuery,
    InventoryReply,
    Ping,
    Pong,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    SliceReport,
)
from .transport import Network

#: conventional coordinator node id (never a storage node)
COORDINATOR_ID: NodeId = -1


def shard_coordinator_id(shard: int) -> NodeId:
    """Endpoint id of shard ``shard``'s coordinator: ``-(shard + 1)``.

    Shard 0 keeps :data:`COORDINATOR_ID`, so a single-coordinator run
    is exactly the one-shard case.  The id is the shard's stable
    identity: a takeover re-attaches at the *same* endpoint under a
    bumped epoch, and the existing fencing does the rest.
    """
    return -(shard + 1)


#: stateless stand-in when no HelperBudget is configured
_NO_BUDGET = contextlib.nullcontext()


class RepairTimeoutError(RuntimeError):
    """Retries exhausted with actions still pending; names them."""

    def __init__(self, pending: Sequence[ActionKey], detail: str = ""):
        self.pending = sorted(pending)
        shown = ", ".join(map(str, self.pending[:8]))
        if len(self.pending) > 8:
            shown += f", ... ({len(self.pending)} total)"
        message = f"repair timed out with pending actions: {shown}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class RepairFailedError(RuntimeError):
    """A chunk became unrepairable (e.g. too many nodes died)."""


@dataclass
class RuntimeResult:
    """Wall-clock outcome of executing a plan on the emulated testbed."""

    total_time: float
    round_times: List[float] = field(default_factory=list)
    chunks_repaired: int = 0
    bytes_transferred: int = 0
    #: bounded reissues after transient stalls or NACKs
    retries: int = 0
    #: healing waves after a node was declared dead
    replans: int = 0
    #: NACKs received from agents
    nacks: int = 0
    #: migrations converted to reconstructions (STF died mid-repair)
    converted_migrations: int = 0
    #: nodes declared permanently dead during the run
    dead_nodes: List[NodeId] = field(default_factory=list)
    #: final (possibly healed) version of every executed action —
    #: includes actions recovered as already-complete on a resumed run
    executed_actions: List[ChunkRepairAction] = field(default_factory=list)
    #: actions found already durably complete when resuming (journal
    #: or agent inventory); ``chunks_repaired`` counts only this run's
    recovered_chunks: int = 0
    #: per-slice completions reported by destinations (chained repairs)
    slices_completed: int = 0

    @property
    def time_per_chunk(self) -> float:
        if self.chunks_repaired == 0:
            return 0.0
        return self.total_time / self.chunks_repaired

    @property
    def degraded(self) -> bool:
        """True if the repair needed any fault handling to finish."""
        return bool(self.retries or self.replans or self.dead_nodes or self.nacks)


@dataclass
class RecoveredState:
    """What :meth:`Coordinator.recover` reconstructed from the journal."""

    plan: RepairPlan
    packet_size: int
    #: journaled ActionCompleted records: key -> executed action
    completed: Dict[ActionKey, ChunkRepairAction]
    #: the journal already holds a RepairFinished record
    finished: bool


class Coordinator:
    """Issues repair commands round by round and supervises the ACKs.

    Args:
        network: the shared transport (the coordinator attaches itself
            under :data:`COORDINATOR_ID` with unthrottled control links).
        cluster: metadata for stripe lookups.
        codec: the erasure codec of the stripes (uniform).
        packet_size: packet granularity for all transfers.
        config: deadlines, retry policy and probe cadence.
        journal: optional write-ahead journal; when set, every state
            transition is journaled before it is acted on, making the
            run resumable via :meth:`recover`.
        epoch: this incarnation's epoch, stamped on every command so
            agents can fence out superseded coordinators.
        metrics: optional :class:`~repro.obs.MetricsRegistry` shared by
            the whole run; a private throwaway registry is used when
            omitted so instrumented code needs no branches.
        tracer: optional :class:`~repro.obs.Tracer`; a disabled tracer
            (records nothing) is used when omitted.
        coordinator_id: endpoint this coordinator attaches at (default
            :data:`COORDINATOR_ID`); shard coordinators attach at
            :func:`shard_coordinator_id` so several can share one
            transport and one agent fleet.
        shard: stripe-space shard this coordinator owns (``None`` for a
            single-coordinator run); labels metrics and trace spans.
        budget: optional shared :class:`~repro.core.scheduling.\
HelperBudget`; when set, each round's helper/destination node slots
            are acquired (deadline-priority queueing) before any
            command is issued and released when the round ends.
        lease_renew: optional callback invoked whenever this
            coordinator demonstrates liveness (each supervision-loop
            iteration); the multi-coordinator layer hangs its lease
            table off it.
    """

    def __init__(
        self,
        network: Network,
        cluster: StorageCluster,
        codec: ErasureCodec,
        packet_size: int,
        config: Optional[RuntimeConfig] = None,
        journal: Optional[RepairJournal] = None,
        epoch: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        coordinator_id: NodeId = COORDINATOR_ID,
        shard: Optional[int] = None,
        budget: Optional[HelperBudget] = None,
        lease_renew: Optional[Callable[[], None]] = None,
    ):
        self.network = network
        self.cluster = cluster
        self.codec = codec
        self.packet_size = packet_size
        self.config = config or DEFAULT_CONFIG
        self.journal = journal
        self.epoch = epoch
        self.coordinator_id = coordinator_id
        self.shard = shard
        self.budget = budget
        self.lease_renew = lease_renew
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = self.metrics
        self._retries_counter = m.counter(
            "repair_retries_total", "bounded reissues after transient stalls"
        )
        self._nacks_counter = m.counter(
            "repair_nacks_total", "NACKs received from agents"
        )
        self._replans_counter = m.counter(
            "repair_replans_total", "healing waves after a node died"
        )
        self._converted_counter = m.counter(
            "repair_converted_migrations_total",
            "migrations converted to reconstructions (STF died mid-repair)",
        )
        self._actions_counter = m.counter(
            "repair_actions_total",
            "chunk repair actions completed, by executed method",
        )
        self._round_hist = m.histogram(
            "repair_round_seconds", "wall-clock duration of each repair round"
        )
        self._action_hist = m.histogram(
            "repair_action_seconds",
            "issue-to-ACK latency of each completed action, by method",
        )
        epoch_gauge = m.gauge(
            "coordinator_epoch", "epoch of the current coordinator incarnation"
        )
        if shard is None:
            epoch_gauge.set(epoch)
        else:
            epoch_gauge.set(epoch, shard=shard)
        #: fault hook: die right after journaling RoundCompleted(n >= this)
        self.crash_after_round: Optional[int] = None
        self._endpoint = network.attach(self.coordinator_id, None)
        #: nodes declared permanently dead (persists across rounds)
        self._dead: Set[NodeId] = set()
        #: runtime-observed link degradation (node -> scale in (0, 1]);
        #: halved each time a node survives a probe that a stalled
        #: round triggered, so chain ordering demotes flaky-but-alive
        #: helpers to the head of subsequent chains
        self._observed_scales: Dict[NodeId, float] = {}
        self._slices_counter = m.counter(
            "repair_slices_total",
            "slices assembled at destinations (chained repairs)",
        )
        self._last_seen: Dict[NodeId, float] = {}
        self._deferred: List[object] = []
        self._nonce = 0
        self._recovered: Optional[RecoveredState] = None

    def close(self) -> None:
        """Release the journal's file handle (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    def execute(
        self, plan: RepairPlan, packet_size: Optional[int] = None
    ) -> RuntimeResult:
        """Run the plan to completion; returns wall-clock timings.

        Survives node deaths and packet-level faults per the module
        docstring; raises :class:`RepairTimeoutError` /
        :class:`RepairFailedError` when recovery is impossible.

        Args:
            plan: the repair plan.
            packet_size: per-run override of the transfer granularity
                (Experiment B.1 varies it without rebuilding the testbed).
        """
        packet = packet_size or self.packet_size
        attrs = dict(
            stf=plan.stf_node,
            scenario=plan.scenario.value,
            rounds=plan.num_rounds,
            chunks=plan.total_chunks,
            packet_size=packet,
            epoch=self.epoch,
            resumed=False,
        )
        if self.shard is not None:
            attrs["shard"] = self.shard
        with self.tracer.span("repair", **attrs):
            if self.journal is not None:
                # A fresh run owns the file: records left by a previous,
                # finished repair must not masquerade as this run's
                # progress.  (Recovery appends instead — see resume().)
                self.journal.reset()
            with self.tracer.span("plan_commit"):
                self._journal(PlanCommitted(self.epoch, plan.to_dict(), packet))
            return self._execute(plan, packet, done={})

    def _execute(
        self,
        plan: RepairPlan,
        packet: int,
        done: Dict[ActionKey, ChunkRepairAction],
    ) -> RuntimeResult:
        """Run the plan, skipping the actions already in ``done``."""
        transferred_before = self.network.bytes_transferred
        result = RuntimeResult(total_time=0.0)
        result.recovered_chunks = len(done)
        result.executed_actions.extend(done[key] for key in sorted(done))
        self._dead = set()
        start = time.monotonic()
        for round_ in plan.rounds:
            remaining = [
                action
                for action in round_.actions()
                if (action.stripe_id, action.chunk_index) not in done
            ]
            # Write-ahead: the round marker lands before any command.
            self._journal(RoundStarted(self.epoch, round_.index))
            round_span = self.tracer.start_span("round", round=round_.index)
            round_start = time.monotonic()
            try:
                if remaining:
                    slots = self._round_nodes(remaining)
                    deadline = self._round_deadline(remaining)
                    with self._budget_slots(slots, deadline):
                        self._run_round(
                            plan, round_.index, remaining, packet, result,
                            round_span,
                        )
            except BaseException:
                # Close the span at the failure point: action spans
                # completed before a coordinator crash stay reachable
                # under their round in the trace tree.
                round_span.finish(actions=len(remaining), aborted=True)
                raise
            duration = time.monotonic() - round_start
            result.round_times.append(duration)
            round_span.finish(actions=len(remaining))
            self._round_hist.observe(duration)
            self._journal(RoundCompleted(self.epoch, round_.index))
            self._maybe_crash_after_round(round_.index)
        self._journal(RepairFinished(self.epoch))
        result.total_time = time.monotonic() - start
        result.chunks_repaired = plan.total_chunks - len(done)
        result.bytes_transferred = (
            self.network.bytes_transferred - transferred_before
        )
        result.dead_nodes = sorted(self._dead)
        return result

    def _journal(self, record: JournalRecord) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _renew_lease(self) -> None:
        if self.lease_renew is not None:
            self.lease_renew()

    def _round_nodes(self, actions) -> Set[NodeId]:
        """Helper + destination node slots a round needs concurrently."""
        nodes: Set[NodeId] = set()
        for action in actions:
            nodes.update(action.sources)
            nodes.add(action.destination)
        return nodes

    def _budget_slots(self, nodes: Set[NodeId], deadline: float):
        """Acquire the shared helper budget for a round (if configured).

        Priority is the round's cost-model deadline: when shards
        oversubscribe the budget, the round that must finish soonest is
        admitted first and the rest queue instead of stampeding the
        same helpers.  Waiting still renews the shard's lease — a
        queued coordinator is alive, not wedged.
        """
        if self.budget is None:
            return _NO_BUDGET
        return self.budget.round(
            nodes,
            priority=time.monotonic() + deadline,
            renew=self._renew_lease,
        )

    def _maybe_crash_after_round(self, round_index: int) -> None:
        if (
            self.crash_after_round is not None
            and round_index >= self.crash_after_round
        ):
            records = self.journal.records_written if self.journal else 0
            self.close()
            raise CoordinatorCrash(records)

    # -- crash recovery ------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_path: Union[str, Path],
        network: Network,
        cluster: StorageCluster,
        codec: ErasureCodec,
        config: Optional[RuntimeConfig] = None,
        packet_size: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        coordinator_id: NodeId = COORDINATOR_ID,
        shard: Optional[int] = None,
        budget: Optional[HelperBudget] = None,
        lease_renew: Optional[Callable[[], None]] = None,
    ) -> "Coordinator":
        """Build a successor coordinator from a crashed run's journal.

        Replays the journal (truncating any torn tail), folds the
        records into a :class:`RecoveredState`, and returns a new
        coordinator one epoch above the highest journaled one.  Call
        :meth:`resume` on the result to finish the repair.  The old
        coordinator's endpoint must be detached first (the testbed's
        ``restart_coordinator`` does both).  In a sharded run the
        successor assumes the dead shard's identity: same
        ``coordinator_id``, same journal, bumped epoch.

        Raises:
            JournalError: if the journal holds no committed plan.
        """
        cfg = config or DEFAULT_CONFIG
        records = RepairJournal.replay(journal_path)
        plan_doc: Optional[dict] = None
        journaled_packet: Optional[int] = None
        last_epoch = 0
        completed: Dict[ActionKey, ChunkRepairAction] = {}
        finished = False
        for record in records:
            last_epoch = max(last_epoch, record.epoch)
            if isinstance(record, PlanCommitted):
                plan_doc = record.plan
                journaled_packet = record.packet_size
            elif isinstance(record, ActionCompleted):
                action = ChunkRepairAction.from_dict(record.action)
                completed[(action.stripe_id, action.chunk_index)] = action
            elif isinstance(record, RepairFinished):
                finished = True
        if plan_doc is None:
            raise JournalError(
                f"journal {journal_path} holds no committed plan; "
                "nothing to recover"
            )
        plan = RepairPlan.from_dict(plan_doc)
        journal = RepairJournal(
            journal_path, fsync=cfg.journal_fsync, metrics=metrics
        )
        coordinator = cls(
            network,
            cluster,
            codec,
            packet_size=packet_size or journaled_packet,
            config=cfg,
            journal=journal,
            epoch=last_epoch + 1,
            metrics=metrics,
            tracer=tracer,
            coordinator_id=coordinator_id,
            shard=shard,
            budget=budget,
            lease_renew=lease_renew,
        )
        coordinator._recovered = RecoveredState(
            plan=plan,
            packet_size=journaled_packet,
            completed=completed,
            finished=finished,
        )
        return coordinator

    def resume(self) -> RuntimeResult:
        """Finish a recovered repair, re-issuing only unfinished actions.

        Fences the old epoch (every agent adopts this coordinator's
        epoch while answering the inventory query), reconciles the
        journal against the agents' durable chunk inventories — an
        action is complete iff it was journaled *or* its destination
        already stores the stripe's chunk — then re-runs the plan with
        the completed actions skipped.  Resuming an already-finished
        journal performs no agent traffic at all.
        """
        if self._recovered is None:
            raise RuntimeError(
                "resume() needs Coordinator.recover(); this coordinator "
                "was not built from a journal"
            )
        state = self._recovered
        done = dict(state.completed)
        if state.finished:
            result = RuntimeResult(total_time=0.0)
            result.recovered_chunks = len(done)
            result.executed_actions.extend(done[key] for key in sorted(done))
            return result
        attrs = dict(
            stf=state.plan.stf_node,
            scenario=state.plan.scenario.value,
            rounds=state.plan.num_rounds,
            chunks=state.plan.total_chunks,
            packet_size=state.packet_size,
            epoch=self.epoch,
            resumed=True,
            journaled_complete=len(done),
        )
        if self.shard is not None:
            attrs["shard"] = self.shard
        with self.tracer.span("repair", **attrs) as repair_span:
            with self.tracer.span("inventory"):
                inventory = self._collect_inventory()
            for action in state.plan.actions():
                key = (action.stripe_id, action.chunk_index)
                if key in done:
                    continue
                if action.stripe_id in inventory.get(action.destination, ()):
                    # Destinations never previously store a chunk of the
                    # stripe (plan invariant) and promotion is atomic, so
                    # presence proves the action completed durably.
                    done[key] = action
            repair_span.annotate(recovered=len(done))
            with self.tracer.span("plan_commit"):
                self._journal(
                    PlanCommitted(
                        self.epoch, state.plan.to_dict(), state.packet_size
                    )
                )
            return self._execute(state.plan, state.packet_size, done)

    def _collect_inventory(self) -> Dict[NodeId, Set[StripeId]]:
        """Ask every attached agent which stripes it durably stores.

        Doubles as the fencing broadcast: the query carries this
        coordinator's epoch, and each agent aborts all older-epoch work
        before snapshotting its store, so the replies are exact.
        Nodes that do not answer within ``config.inventory_timeout``
        (crashed ones) are simply absent from the result.
        """
        nodes = {
            node for node in self.network.node_ids() if node >= 0
        }
        self._nonce += 1
        nonce = self._nonce
        for node in sorted(nodes):
            try:
                self.network.send(
                    self.coordinator_id,
                    node,
                    InventoryQuery(
                        self.epoch, nonce, reply_to=self.coordinator_id
                    ),
                )
            except KeyError:  # pragma: no cover - detached mid-iteration
                nodes.discard(node)
        inventory: Dict[NodeId, Set[StripeId]] = {}
        deadline = time.monotonic() + self.config.inventory_timeout
        while nodes - set(inventory) and time.monotonic() < deadline:
            self._renew_lease()
            try:
                message = self._endpoint.inbox.get(
                    timeout=max(deadline - time.monotonic(), 0.01)
                )
            except queue.Empty:
                break
            if isinstance(message, InventoryReply):
                if message.nonce == nonce:
                    inventory[message.node_id] = set(message.stripes)
            elif isinstance(message, (Heartbeat, Pong)):
                self._last_seen[message.node_id] = time.monotonic()
            elif isinstance(message, RepairAck):
                pass  # straggler from the fenced epoch; inventory wins
            else:
                self._deferred.append(message)
        return inventory

    # -- the supervised round state machine ----------------------------

    def _run_round(
        self,
        plan: RepairPlan,
        round_index: int,
        round_actions: List[ChunkRepairAction],
        packet: int,
        result: RuntimeResult,
        round_span: Optional[Span] = None,
    ) -> None:
        cfg = self.config
        actions: Dict[ActionKey, ChunkRepairAction] = {}
        attempts: Dict[ActionKey, int] = {}
        retries: Dict[ActionKey, int] = {}
        spans: Dict[ActionKey, Span] = {}
        for action in round_actions:
            healed = self._heal(plan, action, result)
            key = (action.stripe_id, action.chunk_index)
            actions[key] = healed
            attempts[key] = 0
            retries[key] = 0
            # Non-lexical span: opened at command issue, closed when
            # the matching ACK arrives (possibly after reissues).
            spans[key] = self.tracer.start_span(
                "action",
                parent=round_span,
                method=healed.method.value,
                stripe=healed.stripe_id,
                chunk=healed.chunk_index,
                destination=healed.destination,
            )
            self._issue(healed, packet, attempt=0)
        pending: Set[ActionKey] = set(actions)
        deadline = time.monotonic() + self._round_deadline(actions.values())
        while pending:
            self._renew_lease()
            now = time.monotonic()
            if now >= deadline:
                self._recover(
                    plan, actions, pending, attempts, retries, packet, result,
                    reason="deadline", spans=spans,
                )
                deadline = time.monotonic() + self._round_deadline(
                    [actions[k] for k in pending]
                )
                continue
            message = self._next_message(min(deadline - now, cfg.poll_interval))
            if message is None:
                continue
            if isinstance(message, Heartbeat):
                self._last_seen[message.node_id] = time.monotonic()
            elif isinstance(message, Pong):
                self._last_seen[message.node_id] = time.monotonic()
            elif isinstance(message, InventoryReply):
                continue  # late reply from a recovery inventory sweep
            elif isinstance(message, SliceReport):
                self._last_seen[message.node_id] = time.monotonic()
                key = message.key
                if (
                    message.epoch != self.epoch
                    or key not in pending
                    or message.attempt != attempts.get(key, -1)
                ):
                    continue  # fenced epoch or a superseded attempt
                # Informational progress record: recovery ignores it
                # (only ActionCompleted is durable progress) but the
                # journal now shows how far a chained repair streamed.
                self._journal(
                    SliceCompleted(
                        self.epoch,
                        round_index,
                        message.stripe_id,
                        message.chunk_index,
                        message.slice_index,
                        message.num_slices,
                        message.attempt,
                    )
                )
                result.slices_completed += 1
                self._slices_counter.inc()
            elif isinstance(message, RepairAck):
                self._last_seen[message.node_id] = time.monotonic()
                key = message.key
                if message.epoch != self.epoch:
                    continue  # ack/NACK addressed to a fenced epoch
                if key not in pending or message.attempt != attempts[key]:
                    continue  # stale or duplicate (already-handled) ack
                if message.ok:
                    executed = actions[key]
                    # The span closes (and metrics record) at ACK time,
                    # before the completion is journaled: a crash inside
                    # the append then leaves trace, metrics and journal
                    # agreeing on which actions finished.
                    span = spans[key].finish(
                        method=executed.method.value,
                        destination=executed.destination,
                        attempt=message.attempt,
                        retries=retries[key],
                    )
                    self._actions_counter.inc(method=executed.method.value)
                    self._action_hist.observe(
                        span.duration, method=executed.method.value
                    )
                    # Write-ahead: the completion is durable in the
                    # journal before the coordinator acts on it, so a
                    # crash here never re-executes this action.
                    self._journal(
                        ActionCompleted(
                            self.epoch,
                            round_index,
                            actions[key].to_dict(),
                            message.attempt,
                        )
                    )
                    pending.discard(key)
                else:
                    result.nacks += 1
                    self._nacks_counter.inc()
                    self._recover(
                        plan, actions, {key}, attempts, retries, packet, result,
                        reason=f"NACK from node {message.node_id}: "
                        f"{message.detail}",
                        spans=spans,
                    )
                    deadline = max(
                        deadline,
                        time.monotonic()
                        + self._round_deadline([actions[k] for k in pending]),
                    )
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"coordinator got unexpected {message!r}")
        result.executed_actions.extend(actions.values())

    def _recover(
        self,
        plan: RepairPlan,
        actions: Dict[ActionKey, ChunkRepairAction],
        keys: Set[ActionKey],
        attempts: Dict[ActionKey, int],
        retries: Dict[ActionKey, int],
        packet: int,
        result: RuntimeResult,
        reason: str,
        spans: Optional[Dict[ActionKey, Span]] = None,
    ) -> None:
        """Deadline missed or NACK received: probe, replan, reissue."""
        cfg = self.config
        spans = spans if spans is not None else {}
        suspects = set()
        for key in keys:
            action = actions[key]
            suspects.update(action.sources)
            suspects.add(action.destination)
        suspects -= self._dead
        newly_dead = suspects - self._probe(suspects)
        if newly_dead:
            self._dead |= newly_dead
            result.replans += 1
            self._replans_counter.inc()
            for key in sorted(keys):
                actions[key] = self._heal(plan, actions[key], result)
                attempts[key] += 1
                if key in spans:
                    spans[key].annotate(
                        healed=True, attempts=attempts[key]
                    )
                self._issue(actions[key], packet, attempts[key])
            return
        # Every suspect answered: the stall is transient (lost packets,
        # wedged transfer).  Bounded retry with exponential backoff.
        # The suspects are alive but were slow enough to stall a round:
        # halve their observed link scale so reissued chains place them
        # early (slowest first), where their lag overlaps the pipeline.
        for node in sorted(suspects):
            self._observed_scales[node] = (
                self._observed_scales.get(node, 1.0) * 0.5
            )
        for key in sorted(keys):
            retries[key] += 1
            if retries[key] > cfg.max_retries:
                raise RepairTimeoutError(
                    keys,
                    detail=f"{cfg.max_retries} retries exhausted; last "
                    f"cause: {reason}",
                )
        backoff = cfg.backoff(max(retries[key] for key in keys))
        time.sleep(backoff)
        result.retries += len(keys)
        self._retries_counter.inc(len(keys))
        for key in sorted(keys):
            attempts[key] += 1
            if key in spans:
                spans[key].annotate(attempts=attempts[key])
            self._issue(actions[key], packet, attempts[key])

    def _heal(
        self,
        plan: RepairPlan,
        action: ChunkRepairAction,
        result: RuntimeResult,
    ) -> ChunkRepairAction:
        if not self._dead:
            return action
        try:
            healed = heal_action(
                self.cluster, plan.stf_node, action, self._dead, plan.scenario
            )
        except UnrecoverableChunkError as exc:
            raise RepairFailedError(str(exc)) from exc
        if (
            healed.method is RepairMethod.RECONSTRUCTION
            and action.method is RepairMethod.MIGRATION
        ):
            result.converted_migrations += 1
            self._converted_counter.inc()
        return healed

    # -- liveness ------------------------------------------------------

    def _probe(self, nodes: Set[NodeId]) -> Set[NodeId]:
        """Ping ``nodes``; returns the subset that answered in time."""
        if not nodes:
            return set()
        self._nonce += 1
        nonce = self._nonce
        for node in nodes:
            try:
                self.network.send(
                    self.coordinator_id,
                    node,
                    Ping(nonce, reply_to=self.coordinator_id),
                )
            except KeyError:
                pass  # detached endpoint: definitely dead
        alive: Set[NodeId] = set()
        deadline = time.monotonic() + self.config.probe_timeout
        while time.monotonic() < deadline and alive != nodes:
            try:
                message = self._endpoint.inbox.get(
                    timeout=max(deadline - time.monotonic(), 0.01)
                )
            except queue.Empty:
                break
            if isinstance(message, Pong):
                self._last_seen[message.node_id] = time.monotonic()
                if message.nonce == nonce and message.node_id in nodes:
                    alive.add(message.node_id)
            elif isinstance(message, Heartbeat):
                self._last_seen[message.node_id] = time.monotonic()
                if message.node_id in nodes:
                    alive.add(message.node_id)
            else:
                # Not consumable here (e.g. a RepairAck racing the
                # probe); defer to the main loop in arrival order.
                self._deferred.append(message)
        return alive

    def _next_message(self, timeout: float):
        if self._deferred:
            return self._deferred.pop(0)
        try:
            return self._endpoint.inbox.get(timeout=max(timeout, 0.01))
        except queue.Empty:
            return None

    # -- deadlines from the cost model ---------------------------------

    def _round_deadline(self, actions) -> float:
        """Cost-model-derived ACK deadline for a batch of actions.

        Sums the Eq. (4)/(5) per-chunk estimates (reads + transfers +
        write) — a deliberate over-approximation of the round's
        critical path — then applies the configured margin and floor.
        A node is only declared *suspect* after this budget elapses,
        so the estimate errs long, never short.
        """
        cfg = self.config
        chunk = self.cluster.chunk_size
        disk = self.cluster.disk_bandwidth or float("inf")
        net = self.cluster.network_bandwidth or float("inf")
        disk_time = chunk / disk
        net_time = chunk / net
        estimate = 0.0
        for action in actions:
            if action.method is RepairMethod.MIGRATION:
                estimate += 2 * disk_time + net_time
            else:
                estimate += 2 * disk_time + len(action.sources) * net_time
        return max(cfg.min_deadline, cfg.deadline_margin * estimate)

    # -- command issue --------------------------------------------------

    def _issue(
        self, action: ChunkRepairAction, packet_size: int, attempt: int
    ) -> None:
        chunk_size = self.cluster.chunk_size
        if action.method is RepairMethod.RECONSTRUCTION and action.pipelined:
            self._issue_pipelined(action, chunk_size, packet_size, attempt)
        else:
            self._issue_star(action, chunk_size, packet_size, attempt)

    def _issue_star(
        self,
        action: ChunkRepairAction,
        chunk_size: int,
        packet_size: int,
        attempt: int,
    ) -> None:
        """Conventional fan-in: every source sends to the destination."""
        sources = self._source_coefficients(action)
        receive = ReceiveCommand(
            stripe_id=action.stripe_id,
            chunk_index=action.chunk_index,
            chunk_size=chunk_size,
            packet_size=packet_size,
            sources=sources,
            attempt=attempt,
            epoch=self.epoch,
            reply_to=self.coordinator_id,
        )
        # The ReceiveCommand must precede any data packet; per-inbox
        # FIFO plus issuing it first guarantees that.
        self.network.send(self.coordinator_id, action.destination, receive)
        for source in action.sources:
            self.network.send(
                self.coordinator_id,
                source,
                SendCommand(
                    stripe_id=action.stripe_id,
                    chunk_index=action.chunk_index,
                    destination=action.destination,
                    packet_size=packet_size,
                    attempt=attempt,
                    epoch=self.epoch,
                    reply_to=self.coordinator_id,
                ),
            )

    def _chain_weights(self) -> Dict[NodeId, float]:
        """Effective link scale per node, for slowest-first chain order.

        Folds the fault plan's slow-NIC scales (via
        :meth:`~repro.runtime.faults.FaultPlan.link_bandwidths`, the
        same numbers the injector applies to the NIC limiters and the
        cost model prices) with runtime-observed degradation from
        probe-surviving stalls.  Nodes absent from the result run at
        full speed and sort to the chain's tail.
        """
        weights: Dict[NodeId, float] = {}
        faults = getattr(self.network, "faults", None)
        plan = getattr(faults, "plan", None)
        if plan is not None:
            weights.update(plan.link_bandwidths())
        for node, scale in self._observed_scales.items():
            weights[node] = weights.get(node, 1.0) * scale
        return weights

    def _issue_pipelined(
        self,
        action: ChunkRepairAction,
        chunk_size: int,
        packet_size: int,
        attempt: int,
    ) -> None:
        """Repair pipelining: helpers chain partial sums to the destination.

        The chain runs slowest link first (:func:`order_chain` over
        :meth:`_chain_weights`), so a degraded helper's upload overlaps
        every faster downstream hop instead of throttling mid-chain.
        With ``config.pipeline_slices > 0`` the transfer is carved into
        that many slices carried as :class:`SlicePacket` frames and the
        destination streams back per-slice :class:`SliceReport`
        progress; at 0 the legacy packet-granular protocol is used.
        """
        coeffs = self._source_coefficients(action)
        chain = order_chain(action.sources, self._chain_weights())
        num_slices = self.config.pipeline_slices
        last = chain[-1]
        self.network.send(
            self.coordinator_id,
            action.destination,
            ReceiveCommand(
                stripe_id=action.stripe_id,
                chunk_index=action.chunk_index,
                chunk_size=chunk_size,
                packet_size=packet_size,
                sources={last: 1},
                attempt=attempt,
                epoch=self.epoch,
                reply_to=self.coordinator_id,
                num_slices=num_slices,
            ),
        )
        # Register stages downstream-first so each hop (usually) exists
        # before its upstream starts; late packets buffer regardless.
        for i in reversed(range(len(chain))):
            node = chain[i]
            next_hop = action.destination if i == len(chain) - 1 else chain[i + 1]
            self.network.send(
                self.coordinator_id,
                node,
                RelayCommand(
                    stripe_id=action.stripe_id,
                    chunk_index=action.chunk_index,
                    destination=next_hop,
                    packet_size=packet_size,
                    chunk_size=chunk_size,
                    coeff=coeffs[node],
                    first=(i == 0),
                    upstream=chain[i - 1] if i > 0 else -1,
                    attempt=attempt,
                    epoch=self.epoch,
                    reply_to=self.coordinator_id,
                    num_slices=num_slices,
                    chain_pos=i,
                ),
            )

    def _source_coefficients(
        self, action: ChunkRepairAction
    ) -> Dict[NodeId, int]:
        if action.method is RepairMethod.MIGRATION:
            return {action.sources[0]: 1}
        stripe = self.cluster.stripe(action.stripe_id)
        helper_chunks = [stripe.chunk_index_on(node) for node in action.sources]
        coeffs = self.codec.recovery_coefficients(
            action.chunk_index, helper_chunks
        )
        return {
            node: coeffs[stripe.chunk_index_on(node)] for node in action.sources
        }
