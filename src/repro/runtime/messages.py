"""Wire protocol of the coordinator/agent runtime (Section V).

The coordinator instructs agents with command messages; agents move
chunk data as packet messages and acknowledge completed repairs.  All
messages are small dataclasses delivered over the in-process transport;
only :class:`DataPacket` payloads are bandwidth-throttled.

Fault tolerance additions:

* every command, packet and ACK carries an ``attempt`` number so a
  retried action never mixes packets from a superseded attempt into a
  fresh assembly;
* :class:`RepairAck` doubles as a NACK via ``status`` / ``detail``, so
  agent-side failures surface at the coordinator instead of dying in a
  worker thread;
* :class:`DataPacket` carries a CRC so corrupted payloads are dropped
  at the receiver (the sender's synchronous round trip then stalls and
  the coordinator retries the action);
* :class:`Heartbeat` / :class:`Ping` / :class:`Pong` let the
  coordinator distinguish a slow node from a dead one.

Crash-recovery additions (split-brain fencing):

* every command, packet and ACK also carries the coordinator's
  ``epoch``.  Agents persist the highest epoch they have seen and NACK
  any *mutating* command from an older epoch, so a zombie pre-crash
  coordinator is fenced out the moment its successor takes over;
* :class:`InventoryQuery` / :class:`InventoryReply` let a recovering
  coordinator ask every agent which chunks it durably stores (atomic
  ``.part`` promotion means a chunk either exists fully or not at all),
  to reconcile the journal against reality before resuming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..cluster.chunk import NodeId, StripeId

#: identifies one chunk-repair action: (stripe, chunk index)
ActionKey = Tuple[StripeId, int]

#: RepairAck.status value for a successful repair
ACK_OK = "ok"
#: RepairAck.status value for an agent-side failure (a NACK)
ACK_FAILED = "failed"


@dataclass(frozen=True)
class ReceiveCommand:
    """Tell the destination agent to expect and assemble a chunk.

    The destination accumulates ``coeff * packet`` from every source —
    coefficient 1 from a single source is a migration; ``k`` erasure-
    coding coefficients implement streaming reconstruction decode.

    Attributes:
        stripe_id / chunk_index: the chunk being repaired.
        chunk_size: total bytes of the chunk.
        packet_size: packet granularity of the incoming transfers.
        sources: source node -> GF(2^8) coefficient.
        attempt: retry generation; packets from other attempts are
            ignored by the assembly.
        epoch: issuing coordinator's epoch (fencing + staleness).
    """

    stripe_id: StripeId
    chunk_index: int
    chunk_size: int
    packet_size: int
    sources: Dict[NodeId, int] = field(default_factory=dict)
    attempt: int = 0
    epoch: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class SendCommand:
    """Tell an agent to stream its locally stored chunk of a stripe.

    For migration the sender is the STF node sending the repaired
    chunk itself; for reconstruction the sender is a helper sending its
    own chunk of the same stripe.
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the assembly at the destination)
    chunk_index: int
    destination: NodeId
    packet_size: int
    attempt: int = 0
    epoch: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class RelayCommand:
    """Tell a helper to act as one stage of a repair pipeline.

    The helper scales its own chunk of the stripe by ``coeff`` and
    forwards it packet-by-packet to ``destination`` (the next pipeline
    stage, or the repairing node).  Unless ``first`` is set, it waits
    for the upstream stage's partial-sum packet for each offset and
    XORs its own contribution into it before forwarding — the repair
    pipelining of Li et al. (ATC'17).
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the stream across hops)
    chunk_index: int
    destination: NodeId
    packet_size: int
    chunk_size: int
    coeff: int
    first: bool
    #: the upstream node (unset when first)
    upstream: NodeId = -1
    attempt: int = 0
    epoch: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class DataPacket:
    """One packet of chunk data in flight.

    ``checksum`` is the CRC32 of the payload as the sender produced it;
    a receiver drops any packet whose payload no longer matches (fault
    injection can corrupt payloads in flight).
    """

    stripe_id: StripeId
    chunk_index: int
    source: NodeId
    offset: int
    payload: bytes
    attempt: int = 0
    epoch: int = 0
    checksum: Optional[int] = None

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class RepairAck:
    """Destination -> coordinator: one chunk repaired — or NACKed.

    ``status == ACK_OK`` reports a completed, durably written chunk.
    ``status == ACK_FAILED`` is a NACK: the sending agent could not
    complete its part of the action (``detail`` says why) and the
    coordinator should retry or replan.
    """

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId
    attempt: int = 0
    epoch: int = 0
    status: str = ACK_OK
    detail: str = ""

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)

    @property
    def ok(self) -> bool:
        return self.status == ACK_OK


def nack(
    key: ActionKey, node_id: NodeId, attempt: int, detail: str, epoch: int = 0
) -> RepairAck:
    """Build a NACK for one action attempt."""
    return RepairAck(
        stripe_id=key[0],
        chunk_index=key[1],
        node_id=node_id,
        attempt=attempt,
        epoch=epoch,
        status=ACK_FAILED,
        detail=detail,
    )


@dataclass(frozen=True)
class WriteComplete:
    """Destination -> source: the repaired chunk is durably written.

    Lets a sender run its chunk transfers as synchronous round trips —
    the next chunk's read only starts after the previous chunk is
    written at the destination, matching the sequential
    read->transmit->write decomposition of Eq. (4).
    """

    stripe_id: StripeId
    chunk_index: int
    attempt: int = 0
    epoch: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class Heartbeat:
    """Agent -> coordinator: periodic liveness beacon."""

    node_id: NodeId


@dataclass(frozen=True)
class Ping:
    """Coordinator -> agent: liveness probe; answer with a Pong."""

    nonce: int


@dataclass(frozen=True)
class Pong:
    """Agent -> coordinator: probe reply."""

    node_id: NodeId
    nonce: int


@dataclass(frozen=True)
class InventoryQuery:
    """Recovering coordinator -> agent: report your durable chunks.

    Also announces the successor coordinator's ``epoch``: receiving
    agents bump (and persist) their highest-seen epoch, aborting any
    in-flight work from older epochs, so the pre-crash coordinator is
    fenced the moment its successor takes over.
    """

    epoch: int
    nonce: int


@dataclass(frozen=True)
class InventoryReply:
    """Agent -> coordinator: stripe ids with a fully promoted chunk.

    Atomic ``.part`` promotion guarantees every listed chunk is
    complete — there is no "partially repaired" state to report.
    """

    node_id: NodeId
    epoch: int
    nonce: int
    stripes: Tuple[StripeId, ...] = ()


@dataclass(frozen=True)
class Shutdown:
    """Coordinator -> agent: stop the dispatcher loop."""
