"""Tests for repair-plan data structures and invariant validation."""

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)


def migration(stripe, idx, src, dst):
    return ChunkRepairAction(
        stripe_id=stripe,
        chunk_index=idx,
        method=RepairMethod.MIGRATION,
        sources=(src,),
        destination=dst,
    )


def reconstruction(stripe, idx, sources, dst):
    return ChunkRepairAction(
        stripe_id=stripe,
        chunk_index=idx,
        method=RepairMethod.RECONSTRUCTION,
        sources=tuple(sources),
        destination=dst,
    )


@pytest.fixture
def cluster():
    """6-node cluster with two RS(4,2) stripes through node 0."""
    c = StorageCluster(6, num_hot_standby=1)
    c.add_stripe(4, 2, [0, 1, 2, 3])
    c.add_stripe(4, 2, [0, 2, 3, 4])
    c.node(0).mark_soon_to_fail()
    return c


class TestActionValidation:
    def test_migration_single_source(self):
        with pytest.raises(ValueError):
            ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (1, 2), 3)

    def test_reconstruction_needs_sources(self):
        with pytest.raises(ValueError):
            ChunkRepairAction(0, 0, RepairMethod.RECONSTRUCTION, (), 3)


class TestRoundProperties:
    def test_counts(self):
        round_ = RepairRound(
            index=0,
            reconstructions=[reconstruction(0, 0, [1, 2], 4)],
            migrations=[migration(1, 0, 0, 5)],
        )
        assert round_.cr == 1
        assert round_.cm == 1
        assert len(list(round_.actions())) == 2

    def test_helper_nodes(self):
        round_ = RepairRound(
            index=0,
            reconstructions=[
                reconstruction(0, 0, [1, 2], 4),
                reconstruction(1, 0, [3, 4], 5),
            ],
        )
        assert round_.helper_nodes() == [1, 2, 3, 4]


class TestPlanValidation:
    def make_plan(self, cluster, actions):
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        plan.rounds.append(RepairRound(index=0, reconstructions=[], migrations=[]))
        for action in actions:
            if action.method is RepairMethod.MIGRATION:
                plan.rounds[0].migrations.append(action)
            else:
                plan.rounds[0].reconstructions.append(action)
        return plan

    def test_valid_plan_passes(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                reconstruction(0, 0, [1, 2], 4),
                migration(1, 0, 0, 1),
            ],
        )
        plan.validate(cluster)

    def test_missing_chunk_detected(self, cluster):
        plan = self.make_plan(cluster, [migration(0, 0, 0, 4)])
        with pytest.raises(ValueError, match="wrong chunk set"):
            plan.validate(cluster)

    def test_duplicate_repair_detected(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                migration(0, 0, 0, 4),
                migration(0, 0, 0, 5),
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="more than once"):
            plan.validate(cluster)

    def test_migration_from_wrong_source(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (1,), 4),
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="not the STF node"):
            plan.validate(cluster)

    def test_helper_must_hold_chunk(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                reconstruction(0, 0, [4, 5], 4),  # node 5 has no chunk of S0
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="holds no chunk"):
            plan.validate(cluster)

    def test_stf_cannot_help(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                reconstruction(0, 0, [0, 1], 4),
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="uses the STF node"):
            plan.validate(cluster)

    def test_helper_reuse_within_round(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                reconstruction(0, 0, [2, 3], 4),
                reconstruction(1, 0, [2, 3], 5),
            ],
        )
        with pytest.raises(ValueError, match="more than one reconstruction"):
            plan.validate(cluster)

    def test_destination_conflict(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                migration(0, 0, 0, 1),  # node 1 already stores chunk of S0
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="already stores"):
            plan.validate(cluster)

    def test_scattered_must_target_storage(self, cluster):
        plan = self.make_plan(
            cluster,
            [
                migration(0, 0, 0, 6),  # node 6 is the hot standby
                migration(1, 0, 0, 1),
            ],
        )
        with pytest.raises(ValueError, match="storage nodes"):
            plan.validate(cluster)

    def test_hot_standby_must_target_standby(self, cluster):
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.HOT_STANDBY)
        plan.rounds.append(
            RepairRound(
                index=0,
                migrations=[migration(0, 0, 0, 4), migration(1, 0, 0, 6)],
            )
        )
        with pytest.raises(ValueError, match="standby"):
            plan.validate(cluster)

    def test_plan_counters(self, cluster):
        plan = self.make_plan(
            cluster,
            [reconstruction(0, 0, [1, 2], 4), migration(1, 0, 0, 1)],
        )
        assert plan.total_chunks == 2
        assert plan.migrated_chunks == 1
        assert plan.reconstructed_chunks == 1
        assert plan.num_rounds == 1
        assert "rounds=1" in plan.summary()
