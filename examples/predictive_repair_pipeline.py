#!/usr/bin/env python3
"""End-to-end predictive maintenance: SMART -> predictor -> FastPR.

The scenario the paper motivates: a fleet of disks reports SMART
telemetry; a learned classifier flags soon-to-fail disks days ahead;
each alarm triggers a FastPR repair that drains the node before the
actual failure.  False alarms are repaired too (the paper's safety
assumption), and unpredicted failures fall back to reactive repair.

Run:
    python examples/predictive_repair_pipeline.py
"""

from repro.cluster import StorageCluster
from repro.core import FastPRPlanner, ReconstructionOnlyPlanner, apply_plan
from repro.failure import (
    ClusterFailureMonitor,
    LogisticPredictor,
    SmartTraceGenerator,
    evaluate,
)
from repro.sim import evaluate_plan


def main() -> None:
    # 1. Train the failure predictor on a historical fleet.
    history = SmartTraceGenerator(
        400, horizon_days=120, annual_failure_rate=0.2, seed=7
    ).generate()
    train, test = history[:300], history[300:]
    predictor = LogisticPredictor(seed=0).fit(train)
    metrics = evaluate(predictor, test)
    print(
        f"predictor: precision={metrics.precision:.2f} "
        f"recall={metrics.recall:.2f} "
        f"false-alarm rate={metrics.false_alarm_rate:.3f} "
        f"mean lead={metrics.mean_lead_days:.1f} days"
    )

    # 2. Build the production cluster and its live disk telemetry.
    num_nodes = 30
    cluster = StorageCluster.random(
        num_nodes, 150, 9, 6, num_hot_standby=3, seed=8
    )
    live = SmartTraceGenerator(
        num_nodes, horizon_days=120, annual_failure_rate=0.4, seed=9
    ).generate()

    # 3. Replay the horizon: every alarm triggers a predictive repair.
    def on_stf(event):
        planner = FastPRPlanner(seed=0, group_size=48)
        plan = planner.plan(cluster, event.node_id)
        result = evaluate_plan(cluster, plan)
        apply_plan(cluster, plan)
        kind = "false alarm" if event.is_false_alarm else (
            f"{event.lead_days}d before failure"
        )
        print(
            f"  day {event.day:3d}: node {event.node_id:2d} flagged "
            f"({kind}); repaired {plan.total_chunks} chunks in "
            f"{result.total_time:.0f}s simulated "
            f"({plan.migrated_chunks} migrated / "
            f"{plan.reconstructed_chunks} reconstructed)"
        )
        return plan

    print("\nreplaying 120 days of telemetry:")
    monitor = ClusterFailureMonitor(cluster, live, predictor)
    report = monitor.run(on_stf=on_stf)

    # 4. Anything the predictor missed needs conventional reactive repair.
    for miss in report.missed_failures:
        print(
            f"  day {miss.day:3d}: node {miss.node_id:2d} FAILED without "
            "warning -> reactive (reconstruction-only) repair"
        )
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, miss.node_id)
        apply_plan(cluster, plan)

    print(
        f"\nsummary: {len(report.predicted_failures)} failures predicted "
        f"and pre-repaired, {len(report.false_alarms)} false alarms "
        f"(repaired anyway), {len(report.missed_failures)} missed."
    )
    cluster.verify_fault_tolerance()
    print("cluster fault tolerance verified after all repairs.")


if __name__ == "__main__":
    main()
