"""The always-on repair daemon: journal, queue policy, crash-resume.

The acceptance bar (mirrors the coordinator recovery suite one layer
up): kill the daemon mid-queue — via a coordinator crash or its own
:class:`DaemonCrashFault` — restart it on the same journal, and the
final cluster is byte-identical to a fault-free run with no repair
executed twice.
"""

import hashlib
from pathlib import Path

import pytest

from repro.cluster import StorageCluster
from repro.ec import make_codec
from repro.failure.monitor import ClusterFailureMonitor
from repro.failure.predictor import ThresholdPredictor
from repro.failure.smart import SmartTraceGenerator
from repro.runtime import (
    CoordinatorCrash,
    CoordinatorCrashFault,
    DaemonCrash,
    DaemonCrashFault,
    DaemonJournal,
    FaultPlan,
    RepairDaemon,
    RepairTask,
)
from repro.runtime.daemon import _queue_state
from repro.runtime.testbed import EmulatedTestbed

from .test_scrub import corrupt_chunk

CHUNK = 16 * 1024

#: a hot fleet against a small cluster: by day ~50 the daemon has a mix
#: of predictive and reactive work, which is what the crash tests cut.
def build(tmp_path, faults=None):
    cluster = StorageCluster.random(
        num_nodes=12,
        num_stripes=10,
        n=5,
        k=3,
        seed=77,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    codec = make_codec("rs(5,3)")
    testbed = EmulatedTestbed(cluster, codec, workdir=tmp_path, faults=faults)
    testbed.load_random_data(seed=5)
    traces = SmartTraceGenerator(
        12, horizon_days=90, annual_failure_rate=0.9, seed=21
    ).generate()
    monitor = ClusterFailureMonitor(
        cluster, traces, ThresholdPredictor("reallocated_sectors", threshold=10.0)
    )
    return cluster, testbed, monitor


def store_state(testbed):
    """sha256 of every chunk file per node.

    ``coordinator.epoch`` is excluded: it is the fencing marker agents
    persist when a *recovered* coordinator (epoch > 0) contacts them —
    control-plane residue that legitimately differs between a fault-free
    run and a crash-recovered one.  Data-plane bytes must not.
    """
    out = {}
    for node_id in sorted(testbed.stores):
        node_dir = Path(testbed.workdir) / f"node_{node_id}"
        for path in sorted(node_dir.glob("*")):
            if path.name == "coordinator.epoch":
                continue
            out[(node_id, path.name)] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return out


# ----------------------------------------------------------------------
# journal unit tests
# ----------------------------------------------------------------------


class TestDaemonJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "daemon.journal"
        journal = DaemonJournal(path)
        journal.append("task_enqueued", task_id=0, node_id=3, kind="reactive",
                       day=7, disk_id=3)
        journal.append("task_started", task_id=0, attempt=1)
        journal.append("task_completed", task_id=0, chunks=4)
        journal.close()
        assert journal.records_written == 3
        records = DaemonJournal.replay(path)
        assert [r["type"] for r in records] == [
            "task_enqueued", "task_started", "task_completed",
        ]
        assert records[0]["node_id"] == 3

    def test_reopen_appends_after_recovered(self, tmp_path):
        path = tmp_path / "daemon.journal"
        first = DaemonJournal(path)
        first.append("day_observed", day=0)
        first.close()
        second = DaemonJournal(path)
        assert [r["type"] for r in second.recovered] == ["day_observed"]
        second.append("day_observed", day=1)
        second.close()
        assert [r["day"] for r in DaemonJournal.replay(path)] == [0, 1]

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "daemon.journal"
        journal = DaemonJournal(path)
        journal.append("day_observed", day=0)
        journal.append("day_observed", day=1)
        journal.close()
        size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00\xde\xad\xbe\xefpartial frame")
        assert [r["day"] for r in DaemonJournal.replay(path)] == [0, 1]
        assert path.stat().st_size == size  # tail cut, durable prefix kept

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "daemon.journal"
        journal = DaemonJournal(path)
        journal.append("day_observed", day=0)
        journal.append("day_observed", day=1)
        journal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte in the last record's payload
        path.write_bytes(data)
        assert [r["day"] for r in DaemonJournal.replay(path)] == [0]


class TestQueueState:
    def enq(self, task_id, kind="reactive", day=0):
        return {"type": "task_enqueued", "task_id": task_id, "node_id": 1,
                "kind": kind, "day": day, "disk_id": -1}

    def test_completed_tasks_drop_out(self):
        records = [
            self.enq(0), self.enq(1),
            {"type": "task_started", "task_id": 0, "attempt": 1},
            {"type": "task_completed", "task_id": 0, "chunks": 2},
            {"type": "day_observed", "day": 4},
        ]
        pending, interrupted, last_day = _queue_state(records)
        assert [t.task_id for t in pending] == [1]
        assert interrupted == []
        assert last_day == 4

    def test_started_but_unfinished_is_interrupted(self):
        records = [
            self.enq(0),
            {"type": "task_started", "task_id": 0, "attempt": 1},
        ]
        pending, interrupted, _ = _queue_state(records)
        assert [t.task_id for t in pending] == [0]
        assert pending[0].attempts == 1
        assert interrupted == [0]

    def test_failed_attempt_requeues_without_interrupt(self):
        records = [
            self.enq(0),
            {"type": "task_started", "task_id": 0, "attempt": 1},
            {"type": "task_failed", "task_id": 0, "attempt": 1, "error": "x"},
        ]
        pending, interrupted, _ = _queue_state(records)
        assert [t.task_id for t in pending] == [0]
        assert interrupted == []

    def test_abandoned_tasks_drop_out(self):
        records = [
            self.enq(0),
            {"type": "task_started", "task_id": 0, "attempt": 3},
            {"type": "task_abandoned", "task_id": 0},
        ]
        pending, interrupted, _ = _queue_state(records)
        assert pending == []
        assert interrupted == []


class TestRepairTask:
    def test_reactive_sorts_before_predictive(self):
        predictive = RepairTask(task_id=0, node_id=1, kind="predictive", day=0)
        reactive = RepairTask(task_id=5, node_id=2, kind="reactive", day=0)
        assert reactive.sort_key < predictive.sort_key

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            RepairTask(task_id=0, node_id=1, kind="scrub", day=0)


# ----------------------------------------------------------------------
# daemon loop
# ----------------------------------------------------------------------


class TestRepairDaemon:
    def test_full_run_repairs_every_alarm_and_failure(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            report = daemon.run()
            daemon.close()
        handled = len(report.stf_events) + len(report.missed_failures)
        assert handled > 0
        assert daemon.completed_tasks == handled
        assert daemon.queue_depth == 0
        # every repair is journaled complete
        records = DaemonJournal.replay(daemon.journal.path)
        completed = [r for r in records if r["type"] == "task_completed"]
        assert len(completed) == handled

    def test_reactive_preempts_predictive(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            order = []
            original = daemon._execute

            def spy(task):
                order.append(task.kind)
                return original(task)

            daemon._execute = spy
            daemon.enqueue(1, "predictive", day=0)
            daemon.enqueue(2, "reactive", day=0)
            cluster.node(1).mark_soon_to_fail()
            cluster.node(2).mark_failed()
            daemon.pump()
            daemon.close()
        assert order == ["reactive", "predictive"]

    def test_helper_budget_defers_predictive(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(
                testbed, monitor, seed=3, helper_budget=1, sleep=lambda s: None
            )
            cluster.node(1).mark_soon_to_fail()
            cluster.node(2).mark_soon_to_fail()
            daemon.enqueue(1, "predictive", day=0)
            daemon.enqueue(2, "predictive", day=0)
            assert daemon.pump() == 1  # budget spent after the first
            assert daemon.queue_depth == 1
            daemon._repairs_today = 0  # next observed day
            assert daemon.pump() == 1
            assert daemon.queue_depth == 0
            daemon.close()

    def test_monitor_rearmed_after_repair(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            daemon.run(max_days=60)
            daemon.close()
        assert monitor.active_repairs == set()

    def test_metrics_exported(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            daemon.run()
            daemon.close()
            by_name = {m.name: m for m in testbed.metrics}
        assert by_name["daemon_tasks_total"].total() == daemon.completed_tasks
        assert by_name["daemon_chunks_repaired_total"].total() > 0
        assert by_name["daemon_queue_depth"].value() == 0

    def test_scrub_cycle_restores_latent_corruption(self, tmp_path):
        # Satellite: runtime.scrub x latent sector errors, daemon-driven.
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(
                testbed, monitor, scrub_interval_days=1, seed=3,
                sleep=lambda s: None,
            )
            node_id = cluster.stripe(0).node_of(1)
            original = testbed.stores[node_id].read(0)
            corrupt_chunk(testbed, cluster, 0, 1)
            daemon.scrub(day=1)
            daemon.close()
            by_name = {m.name: m for m in testbed.metrics}
            assert by_name["daemon_scrub_corrupt_total"].total() == 1
            assert by_name["daemon_scrub_repaired_total"].total() == 1
            # the chunk is byte-restored in place
            assert testbed.stores[node_id].read(0) == original
        records = DaemonJournal.replay(daemon.journal.path)
        scrubs = [r for r in records if r["type"] == "scrub_completed"]
        assert scrubs == [
            {"type": "scrub_completed", "day": 1, "corrupt": 1, "repaired": 1}
        ]


# ----------------------------------------------------------------------
# crash-resume acceptance
# ----------------------------------------------------------------------


class TestCrashResume:
    def fault_free_reference(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path / "ref")
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            daemon.run()
            daemon.close()
        return store_state(testbed), daemon.completed_tasks

    def test_coordinator_crash_resume_byte_identical(self, tmp_path):
        """ISSUE acceptance: daemon survives a CoordinatorCrashFault.

        The restarted daemon replays its journaled queue, re-issues only
        the unfinished repairs, and the final cluster state matches a
        fault-free run chunk for chunk.
        """
        reference, total_tasks = self.fault_free_reference(tmp_path)

        faults = FaultPlan(
            coordinator_crashes=[CoordinatorCrashFault(after_records=4)]
        )
        cluster, testbed, monitor = build(tmp_path / "crash", faults=faults)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            journal_path = daemon.journal.path
            with pytest.raises(CoordinatorCrash):
                daemon.run()
            daemon.close()
            completed_before = daemon.completed_tasks

            successor = RepairDaemon(
                testbed, monitor, journal_path=journal_path, seed=3,
                sleep=lambda s: None,
            )
            # the successor rebuilt its queue purely from the journal
            assert successor.queue_depth > 0
            successor.resume()
            successor.run()
            successor.close()
        assert store_state(testbed) == reference
        # no repair ran twice: predecessor + successor together did
        # exactly the fault-free amount of work
        assert completed_before + successor.completed_tasks == total_tasks
        records = DaemonJournal.replay(journal_path)
        completed_ids = [
            r["task_id"] for r in records if r["type"] == "task_completed"
        ]
        assert len(completed_ids) == len(set(completed_ids)) == total_tasks

    def test_daemon_crash_fault_resume(self, tmp_path):
        reference, total_tasks = self.fault_free_reference(tmp_path)
        assert total_tasks >= 2  # the fault below must cut mid-queue

        faults = FaultPlan(daemon_crashes=[DaemonCrashFault(after_tasks=1)])
        cluster, testbed, monitor = build(tmp_path / "crash", faults=faults)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            journal_path = daemon.journal.path
            with pytest.raises(DaemonCrash) as err:
                daemon.run()
            daemon.close()
            assert err.value.tasks_completed == 1

            successor = RepairDaemon(
                testbed, monitor, journal_path=journal_path, seed=3,
                sleep=lambda s: None,
            )
            successor.resume()
            successor.run()
            successor.close()
        assert store_state(testbed) == reference
        assert 1 + successor.completed_tasks == total_tasks

    def test_successor_continues_from_journaled_day(self, tmp_path):
        cluster, testbed, monitor = build(tmp_path)
        with testbed:
            daemon = RepairDaemon(testbed, monitor, seed=3, sleep=lambda s: None)
            daemon.run(max_days=10)
            daemon.close()
            successor = RepairDaemon(
                testbed, monitor, journal_path=daemon.journal.path, seed=3,
                sleep=lambda s: None,
            )
            assert successor.next_day == 10
            successor.close()


class TestDaemonCrashFaultSerde:
    def test_roundtrip_through_fault_plan(self):
        plan = FaultPlan(
            daemon_crashes=[DaemonCrashFault(after_tasks=2)],
            coordinator_crashes=[CoordinatorCrashFault(after_records=7)],
        )
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored.daemon_crashes == [DaemonCrashFault(after_tasks=2)]
        assert restored.coordinator_crashes == plan.coordinator_crashes

    def test_after_tasks_validated(self):
        with pytest.raises(ValueError, match="after_tasks"):
            DaemonCrashFault(after_tasks=0)

    def test_absent_field_defaults_empty(self):
        body = FaultPlan().to_dict()
        body.pop("daemon_crashes")
        assert FaultPlan.from_dict(body).daemon_crashes == []
