"""Tests for the SVG chart renderer."""

import json

import pytest

from repro.bench.harness import Experiment, Panel
from repro.bench.plots import (
    _nice_ceiling,
    main,
    render_experiment,
    render_panel_svg,
)


@pytest.fixture
def experiment():
    exp = Experiment("fig8", "Simulation: scattered repair")
    panel = Panel("Fig 8(a) — varying M", "# of nodes")
    panel.add_point(20, {"optimum": 0.84, "fastpr": 0.92, "migration": 1.88})
    panel.add_point(100, {"optimum": 0.25, "fastpr": 0.32, "migration": 1.88})
    exp.panels.append(panel)
    return exp


class TestNiceCeiling:
    def test_grid_values(self):
        assert _nice_ceiling(0.9) == pytest.approx(1.0)
        assert _nice_ceiling(1.2) == pytest.approx(2.0)
        assert _nice_ceiling(3.7) == pytest.approx(5.0)
        assert _nice_ceiling(7.2) == pytest.approx(10.0)
        assert _nice_ceiling(0.034) == pytest.approx(0.05)

    def test_degenerate(self):
        assert _nice_ceiling(0.0) == 1.0


class TestRenderPanel:
    def test_valid_svg_with_all_elements(self, experiment):
        svg = render_panel_svg(experiment.panels[0])
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        # 3 series x 2 groups = 6 bars + 3 legend swatches.
        assert svg.count("<rect") >= 10  # incl. background + legend
        for label in ("optimum", "fastpr", "migration"):
            assert label in svg
        assert "Fig 8(a)" in svg
        assert "# of nodes" in svg

    def test_escapes_markup(self):
        panel = Panel("a < b & c", "x<y")
        panel.add_point("t>0", {"s&1": 1.0})
        svg = render_panel_svg(panel)
        assert "a &lt; b &amp; c" in svg
        assert "<y" not in svg.replace("&lt;y", "")

    def test_bar_heights_scale(self, experiment):
        svg = render_panel_svg(experiment.panels[0])
        # The tallest bar (1.88 at y_max=2.0) takes ~94% of plot height.
        import re

        heights = [
            float(m)
            for m in re.findall(r'height="([0-9.]+)" fill="#', svg)
        ]
        assert max(heights) > 0.9 * 248  # plot height = 360-48-64 = 248


class TestRenderExperiment:
    def test_writes_one_svg_per_panel(self, experiment, tmp_path):
        paths = render_experiment(experiment, tmp_path)
        assert len(paths) == 1
        assert paths[0].name.startswith("fig8_")
        assert paths[0].read_text().startswith("<svg")


class TestCli:
    def test_end_to_end(self, experiment, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig8.json").write_text(json.dumps(experiment.to_dict()))
        out = tmp_path / "figs"
        assert main([str(results), "-o", str(out)]) == 0
        assert list(out.glob("*.svg"))
        assert "wrote 1 SVG charts" in capsys.readouterr().out

    def test_empty_dir(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
