"""The loopback TCP throughput sweep behind BENCH_net_throughput.json."""

import pytest

from repro.bench.smoke import (
    NET_BENCH_SCHEMA,
    run_net_throughput,
    validate_net,
)


def test_sweep_produces_validated_document():
    document = run_net_throughput(sizes=(1 << 12,), frames=8)
    body = validate_net(document)
    assert body["transport"] == "tcp-loopback"
    (run,) = body["runs"]
    assert run["payload_bytes"] == 1 << 12
    assert run["frames"] == 8
    assert run["frames_per_s"] > 0
    assert run["mb_per_s"] > 0
    assert run["seconds"] > 0


def test_validate_rejects_empty_sweep():
    with pytest.raises(ValueError, match="no runs"):
        validate_net(NET_BENCH_SCHEMA.dump({"transport": "x", "runs": []}))


def test_validate_rejects_degenerate_run():
    document = NET_BENCH_SCHEMA.dump(
        {
            "transport": "tcp-loopback",
            "runs": [
                {
                    "payload_bytes": 1,
                    "frames": 0,
                    "seconds": 0.0,
                    "frames_per_s": 0.0,
                    "mb_per_s": 0.0,
                }
            ],
        }
    )
    with pytest.raises(ValueError, match="degenerate"):
        validate_net(document)
