"""Stripe sharding and the shared helper budget.

Covers the pieces concurrent coordinators stand on: the consistent
shard map (stable, total, disjoint), plan splitting that preserves
per-round coupling, the deadline-priority :class:`HelperBudget`, and
the two-STF guarantee that staggered plans plus a shared budget never
double-book a helper in the same round.
"""

import threading
import time

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import ShardMap, split_plan
from repro.core.planner import FastPRPlanner, stagger_concurrent_plans
from repro.core.scheduling import BudgetTimeout, HelperBudget


def make_cluster(seed=5):
    cluster = StorageCluster.random(
        num_nodes=14,
        num_stripes=40,
        n=5,
        k=3,
        num_hot_standby=3,
        seed=seed,
        chunk_size=16 * 1024,
    )
    return cluster


# ----------------------------------------------------------------------
# shard map
# ----------------------------------------------------------------------


class TestShardMap:
    def test_assignment_is_stable_and_total(self):
        shard_map = ShardMap(3)
        first = {s: shard_map.shard_of(s) for s in range(500)}
        second = {s: shard_map.shard_of(s) for s in range(500)}
        assert first == second
        assert set(first.values()) <= {0, 1, 2}

    def test_every_shard_gets_stripes(self):
        shard_map = ShardMap(4)
        owners = {shard_map.shard_of(s) for s in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_coordinator_ids(self):
        shard_map = ShardMap(3)
        assert [shard_map.coordinator_id(s) for s in shard_map.shards()] == [
            -1,
            -2,
            -3,
        ]
        with pytest.raises(ValueError):
            shard_map.coordinator_id(3)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestSplitPlan:
    def plan(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        plan = FastPRPlanner(seed=2).plan(cluster, 0)
        plan.validate(cluster)
        return plan

    def test_partition_is_disjoint_and_complete(self):
        plan = self.plan()
        shard_map = ShardMap(3)
        sub_plans = split_plan(plan, shard_map)
        assert len(sub_plans) == 3
        seen = {}
        for shard, sub in enumerate(sub_plans):
            for action in sub.actions():
                key = (action.stripe_id, action.chunk_index)
                assert key not in seen, f"{key} owned by two shards"
                seen[key] = shard
                assert shard_map.shard_of(action.stripe_id) == shard
        assert len(seen) == plan.total_chunks

    def test_round_coupling_preserved(self):
        """Two same-shard actions from one full-plan round stay together."""
        plan = self.plan()
        shard_map = ShardMap(2)
        sub_plans = split_plan(plan, shard_map)
        # Map each action to its original round and its sub-plan round.
        original = {}
        for round_ in plan.rounds:
            for action in round_.actions():
                original[(action.stripe_id, action.chunk_index)] = round_.index
        for sub in sub_plans:
            for round_ in sub.rounds:
                origins = {
                    original[(a.stripe_id, a.chunk_index)]
                    for a in round_.actions()
                }
                assert len(origins) == 1, (
                    "a sub-plan round mixes actions from different "
                    "full-plan rounds"
                )

    def test_rounds_are_dense(self):
        plan = self.plan()
        for sub in split_plan(plan, ShardMap(3)):
            assert [r.index for r in sub.rounds] == list(
                range(len(sub.rounds))
            )


# ----------------------------------------------------------------------
# helper budget
# ----------------------------------------------------------------------


class TestHelperBudget:
    def test_grants_when_free(self):
        budget = HelperBudget(per_node=1)
        budget.acquire([1, 2, 3])
        assert budget.held(1) == 1
        budget.release([1, 2, 3])
        assert budget.held(1) == 0

    def test_per_node_cap_blocks(self):
        budget = HelperBudget(per_node=1, poll_interval=0.01)
        budget.acquire([7])
        with pytest.raises(BudgetTimeout):
            budget.acquire([7], timeout=0.05)
        budget.release([7])
        budget.acquire([7], timeout=0.5)  # free again
        budget.release([7])

    def test_total_streams_cap(self):
        budget = HelperBudget(per_node=2, total_streams=2, poll_interval=0.01)
        budget.acquire([1, 2])
        with pytest.raises(BudgetTimeout):
            budget.acquire([3], timeout=0.05)
        budget.release([1, 2])

    def test_deadline_priority_order(self):
        """Queued waiters are admitted smallest-priority first."""
        budget = HelperBudget(per_node=1, poll_interval=0.005)
        budget.acquire([5])
        order = []
        barrier = threading.Barrier(3)

        def waiter(priority):
            barrier.wait()
            # Deterministic queue order: low priority enqueues first so
            # a pure-FIFO budget would pick it; the high-priority (small
            # number) waiter must overtake it.
            if priority == 1.0:
                time.sleep(0.05)
            budget.acquire([5], priority=priority)
            order.append(priority)
            time.sleep(0.02)
            budget.release([5])

        threads = [
            threading.Thread(target=waiter, args=(p,)) for p in (9.0, 1.0)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        time.sleep(0.2)  # both are queued behind the holder now
        budget.release([5])
        for t in threads:
            t.join(timeout=5)
        assert order == [1.0, 9.0]
        assert budget.waits >= 2
        assert budget.max_queue >= 2

    def test_renew_callback_fires_while_queued(self):
        budget = HelperBudget(per_node=1, poll_interval=0.01)
        budget.acquire([4])
        beats = []
        with pytest.raises(BudgetTimeout):
            budget.acquire(
                [4], timeout=0.1, renew=lambda: beats.append(1)
            )
        assert beats, "queued acquire never renewed its lease"
        budget.release([4])

    def test_round_context_releases_on_error(self):
        budget = HelperBudget(per_node=1)
        with pytest.raises(RuntimeError):
            with budget.round([8, 9]):
                assert budget.held(8) == 1
                raise RuntimeError("round blew up")
        assert budget.held(8) == 0
        assert budget.held(9) == 0

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            HelperBudget(per_node=0)
        with pytest.raises(ValueError):
            HelperBudget(total_streams=0)


# ----------------------------------------------------------------------
# two concurrent STF repairs never double-book a helper (satellite)
# ----------------------------------------------------------------------


class TestConcurrentStfRepairs:
    def test_staggered_plans_share_no_helper_per_round(self):
        """Static guarantee: lockstep rounds have disjoint source sets."""
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        cluster.node(1).mark_soon_to_fail()
        plans = [
            FastPRPlanner(seed=2).plan(cluster, 0),
            FastPRPlanner(seed=2).plan(cluster, 1),
        ]
        staggered = stagger_concurrent_plans(plans)
        assert len(staggered) == 2
        depth = max(len(p.rounds) for p in staggered)
        for r in range(depth):
            # One plan may read a helper several times in its own round
            # (e.g. two migrations off the STF node); the guarantee is
            # that no *other* concurrent plan touches the same helper.
            claimed = set()
            for plan in staggered:
                if r >= len(plan.rounds):
                    continue
                sources = set()
                for action in plan.rounds[r].actions():
                    sources.update(action.sources)
                booked = claimed & sources
                assert not booked, (
                    f"helpers {sorted(booked)} double-booked in round {r}"
                )
                claimed |= sources

    def test_stagger_preserves_every_action(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        cluster.node(1).mark_soon_to_fail()
        plans = [
            FastPRPlanner(seed=2).plan(cluster, 0),
            FastPRPlanner(seed=2).plan(cluster, 1),
        ]
        staggered = stagger_concurrent_plans(plans)
        for before, after in zip(plans, staggered):
            assert {
                (a.stripe_id, a.chunk_index) for a in before.actions()
            } == {(a.stripe_id, a.chunk_index) for a in after.actions()}

    def test_budget_serializes_contending_rounds(self):
        """Dynamic guarantee: even un-staggered rounds can't overlap on
        a helper once both coordinators route through one budget."""
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        cluster.node(1).mark_soon_to_fail()
        plans = [
            FastPRPlanner(seed=2).plan(cluster, 0),
            FastPRPlanner(seed=2).plan(cluster, 1),
        ]
        budget = HelperBudget(per_node=1, poll_interval=0.002)
        in_use = {}
        overlap = []
        lock = threading.Lock()

        def run_plan(plan):
            for round_ in plan.rounds:
                nodes = set()
                for action in round_.actions():
                    nodes.update(action.sources)
                    nodes.add(action.destination)
                if not nodes:
                    continue
                with budget.round(nodes, timeout=30.0):
                    with lock:
                        for node in nodes:
                            if in_use.get(node, 0) >= budget.per_node:
                                overlap.append(node)
                            in_use[node] = in_use.get(node, 0) + 1
                    time.sleep(0.002)
                    with lock:
                        for node in nodes:
                            in_use[node] -= 1

        threads = [
            threading.Thread(target=run_plan, args=(p,)) for p in plans
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "budgeted repair deadlocked"
        assert not overlap, f"helpers double-booked: {sorted(set(overlap))}"
