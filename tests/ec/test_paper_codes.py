"""The paper's three production code parameterizations, end to end.

RS(9,6) (QFS default), RS(14,10) (Facebook f4) and RS(16,12) (Azure's
coding parameters) are the codes every experiment sweeps; these tests
pin their correctness at byte level.
"""

import itertools
import random

import numpy as np
import pytest

from repro.ec import make_codec
from repro.ec.matrix import rank

PAPER_SCHEMES = ["rs(9,6)", "rs(14,10)", "rs(16,12)"]


def random_chunks(k, size, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8).tobytes() for _ in range(k)]


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
class TestPaperCodes:
    def test_mds_on_sampled_subsets(self, scheme):
        codec = make_codec(scheme)
        gen = codec.generator_matrix
        rng = random.Random(7)
        all_subsets = list(itertools.combinations(range(codec.n), codec.k))
        sampled = rng.sample(all_subsets, min(60, len(all_subsets)))
        for rows in sampled:
            assert rank(gen[list(rows), :]) == codec.k, rows

    def test_single_chunk_repair_all_positions(self, scheme):
        codec = make_codec(scheme)
        coded = codec.encode(random_chunks(codec.k, 64, seed=1))
        for lost in range(codec.n):
            helpers = codec.repair_helpers(
                lost, [i for i in range(codec.n) if i != lost]
            )
            assert len(helpers) == codec.k
            rebuilt = codec.decode(
                {i: coded[i] for i in helpers}, [lost]
            )
            assert rebuilt[lost] == coded[lost]

    def test_max_erasures_recoverable(self, scheme):
        codec = make_codec(scheme)
        coded = codec.encode(random_chunks(codec.k, 32, seed=2))
        lost = list(range(codec.n - codec.k))  # n - k erasures
        available = {i: coded[i] for i in range(codec.n) if i not in lost}
        rebuilt = codec.decode(available, lost)
        for i in lost:
            assert rebuilt[i] == coded[i]

    def test_repair_traffic_is_k_chunks(self, scheme):
        codec = make_codec(scheme)
        cost = codec.single_repair_cost()
        assert cost.helpers == codec.k
        assert cost.traffic_chunks == float(codec.k)

    def test_streaming_coefficients_match_decode(self, scheme):
        from repro.ec.galois import gf_mul_bytes

        codec = make_codec(scheme)
        coded = codec.encode(random_chunks(codec.k, 48, seed=3))
        lost = codec.n - 1
        helpers = list(range(codec.k))
        coeffs = codec.recovery_coefficients(lost, helpers)
        acc = np.zeros(48, dtype=np.uint8)
        for helper, coeff in coeffs.items():
            acc ^= gf_mul_bytes(
                coeff, np.frombuffer(coded[helper], dtype=np.uint8)
            )
        assert acc.tobytes() == coded[lost]
