"""Systematic Reed-Solomon codes RS(n, k) over GF(2^8).

This is the reproduction of the paper's coding substrate (Jerasure
v1.2 RS coding).  The generator matrix is systematic with a Cauchy
parity block, so every ``k x k`` submatrix of the generator is
invertible and the code is MDS: any ``k`` of the ``n`` coded chunks of
a stripe can rebuild the original data — exactly the RS(n, k) property
the paper relies on (Section II-A).

Single-chunk repair reads ``k`` helper chunks (the k-fold repair
traffic amplification that motivates FastPR).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .codec import (
    DecodeError,
    ErasureCodec,
    check_equal_sizes,
    normalize_wanted,
    register_codec,
)
from .galois import gf_matmul_bytes
from .matrix import cauchy, identity, invert, matmul, SingularMatrixError


class ReedSolomonCodec(ErasureCodec):
    """Systematic RS(n, k) codec.

    Args:
        n: total chunks per stripe.
        k: data chunks per stripe (k < n).

    The first ``k`` coded chunks are the data chunks verbatim; the
    remaining ``n - k`` are Cauchy-parity combinations.
    """

    def __init__(self, n: int, k: int):
        if not 0 < k < n:
            raise ValueError(f"require 0 < k < n, got n={n}, k={k}")
        if n > 255:
            raise ValueError("GF(2^8) RS supports at most n=255")
        self.n = n
        self.k = k
        parity = cauchy(n - k, k)
        self._generator = np.concatenate([identity(k), parity], axis=0)

    @property
    def generator_matrix(self) -> np.ndarray:
        """The ``n x k`` systematic generator matrix (copy)."""
        return self._generator.copy()

    def encode(self, data_chunks: Sequence[bytes]) -> List[bytes]:
        if len(data_chunks) != self.k:
            raise ValueError(
                f"RS({self.n},{self.k}) expects {self.k} data chunks, "
                f"got {len(data_chunks)}"
            )
        check_equal_sizes(data_chunks)
        shards = np.stack(
            [np.frombuffer(c, dtype=np.uint8) for c in data_chunks]
        )
        parity_rows = self._generator[self.k :, :]
        parity = gf_matmul_bytes(parity_rows, shards)
        coded = [bytes(c) for c in data_chunks]
        coded.extend(parity[i].tobytes() for i in range(self.n - self.k))
        return coded

    def encode_batch(
        self, stripes: Sequence[Sequence[bytes]]
    ) -> List[List[bytes]]:
        """Encode a batch of stripes with one wide parity matmul.

        The ``B`` stripes' data shards are laid side by side into a
        single ``(k, B*L)`` matrix, so the GF kernel runs once over the
        whole batch instead of once per stripe — same bytes out as
        ``[self.encode(s) for s in stripes]``, far less per-call
        overhead.
        """
        stripes = list(stripes)
        if not stripes:
            return []
        if len(stripes) == 1:
            return [self.encode(stripes[0])]
        for stripe in stripes:
            if len(stripe) != self.k:
                raise ValueError(
                    f"RS({self.n},{self.k}) expects {self.k} data chunks, "
                    f"got {len(stripe)}"
                )
        size = check_equal_sizes(
            [chunk for stripe in stripes for chunk in stripe]
        )
        batch = len(stripes)
        shards = np.empty((self.k, batch * size), dtype=np.uint8)
        for b, stripe in enumerate(stripes):
            for row, chunk in enumerate(stripe):
                shards[row, b * size : (b + 1) * size] = np.frombuffer(
                    chunk, dtype=np.uint8
                )
        parity = gf_matmul_bytes(self._generator[self.k :, :], shards)
        coded: List[List[bytes]] = []
        for b, stripe in enumerate(stripes):
            rows = [bytes(chunk) for chunk in stripe]
            rows.extend(
                parity[i, b * size : (b + 1) * size].tobytes()
                for i in range(self.n - self.k)
            )
            coded.append(rows)
        return coded

    def decode_batch(
        self,
        stripes: Sequence[Dict[int, bytes]],
        wanted: Sequence,
    ) -> List[Dict[int, bytes]]:
        """Rebuild ``wanted`` across many stripes, batching by erasure set.

        ``wanted`` is a flat index list shared by every stripe or one
        index list per stripe.  Stripes sharing the same available and
        wanted index sets need the same decode matrix, so each such
        group collapses into one wide matrix product over its
        concatenated helper shards.
        """
        stripes = list(stripes)
        per_stripe = normalize_wanted(wanted, len(stripes))
        results: List[Dict[int, bytes]] = [None] * len(stripes)  # type: ignore
        groups: Dict[tuple, List[int]] = {}
        for i, available in enumerate(stripes):
            key = (
                tuple(sorted(available)),
                tuple(sorted(per_stripe[i])),
            )
            groups.setdefault(key, []).append(i)
        for (avail_key, want_key), members in groups.items():
            if len(members) == 1:
                i = members[0]
                results[i] = self.decode(stripes[i], per_stripe[i])
                continue
            for idx in want_key:
                if not 0 <= idx < self.n:
                    raise ValueError(
                        f"chunk index {idx} outside stripe of {self.n}"
                    )
            missing = [i for i in want_key if i not in avail_key]
            if not missing:
                for i in members:
                    results[i] = {
                        w: bytes(stripes[i][w]) for w in per_stripe[i]
                    }
                continue
            if len(avail_key) < self.k:
                raise DecodeError(
                    f"need {self.k} chunks to decode, have {len(avail_key)}"
                )
            helper_ids = list(avail_key)[: self.k]
            size = check_equal_sizes(
                [stripes[members[0]][h] for h in helper_ids]
            )
            helpers = np.empty((self.k, len(members) * size), dtype=np.uint8)
            for col, i in enumerate(members):
                check_equal_sizes(
                    [stripes[i][h] for h in helper_ids], expected=size
                )
                for row, h in enumerate(helper_ids):
                    helpers[row, col * size : (col + 1) * size] = (
                        np.frombuffer(stripes[i][h], dtype=np.uint8)
                    )
            sub = self._generator[helper_ids, :]
            try:
                sub_inv = invert(sub)
            except SingularMatrixError as exc:  # pragma: no cover
                raise DecodeError(f"singular decode submatrix: {exc}") from exc
            # rebuild = G[missing] @ inv(G[helpers]) @ helpers: fold the
            # two small matrices first so only one wide product runs.
            rebuild = gf_matmul_bytes(
                matmul(self._generator[missing, :], sub_inv), helpers
            )
            for col, i in enumerate(members):
                out = {
                    w: bytes(stripes[i][w])
                    for w in per_stripe[i]
                    if w in stripes[i]
                }
                for row, idx in enumerate(missing):
                    out[idx] = rebuild[
                        row, col * size : (col + 1) * size
                    ].tobytes()
                results[i] = out
        return results

    def decode(
        self,
        available: Dict[int, bytes],
        wanted: Sequence[int],
    ) -> Dict[int, bytes]:
        wanted = list(wanted)
        for idx in wanted:
            if not 0 <= idx < self.n:
                raise ValueError(f"chunk index {idx} outside stripe of {self.n}")
        # Trivially satisfy wanted indices that are present.
        result: Dict[int, bytes] = {}
        missing = [i for i in wanted if i not in available]
        for i in wanted:
            if i in available:
                result[i] = bytes(available[i])
        if not missing:
            return result

        if len(available) < self.k:
            raise DecodeError(
                f"need {self.k} chunks to decode, have {len(available)}"
            )
        helper_ids = sorted(available)[: self.k]
        size = check_equal_sizes([available[i] for i in helper_ids])
        helper_shards = np.stack(
            [np.frombuffer(available[i], dtype=np.uint8) for i in helper_ids]
        )
        # helpers = G[helper_ids] @ data  =>  data = inv(G[helper_ids]) @ helpers
        sub = self._generator[helper_ids, :]
        try:
            sub_inv = invert(sub)
        except SingularMatrixError as exc:  # cannot happen for Cauchy RS
            raise DecodeError(f"singular decode submatrix: {exc}") from exc
        data_shards = gf_matmul_bytes(sub_inv, helper_shards)
        rebuild_rows = self._generator[missing, :]
        rebuilt = gf_matmul_bytes(rebuild_rows, data_shards)
        for row, idx in enumerate(missing):
            result[idx] = rebuilt[row].tobytes()
        for i in wanted:
            if len(result[i]) != size:
                raise AssertionError("decoded size mismatch")
        return result

    def repair_helpers(self, lost_index: int, alive: Sequence[int]) -> List[int]:
        alive = [i for i in alive if i != lost_index]
        if len(alive) < self.k:
            raise DecodeError(
                f"cannot repair chunk {lost_index}: only {len(alive)} "
                f"survivors, need {self.k}"
            )
        return sorted(alive)[: self.k]

    def recovery_coefficients(
        self, lost_index: int, helper_ids: Sequence[int]
    ) -> Dict[int, int]:
        """GF coefficients for streaming single-chunk repair.

        The lost chunk equals ``sum(coeff[h] * chunk[h])`` over the
        ``k`` helpers, so a repairing node can accumulate each helper
        packet as it arrives (the runtime's decode thread, Section V).

        Raises:
            DecodeError: if ``helper_ids`` is not exactly ``k`` distinct
                surviving indices.
        """
        helper_ids = list(helper_ids)
        if len(helper_ids) != self.k or len(set(helper_ids)) != self.k:
            raise DecodeError(
                f"need exactly k={self.k} distinct helpers, got {helper_ids}"
            )
        if lost_index in helper_ids:
            raise DecodeError("lost chunk cannot be its own helper")
        sub = self._generator[helper_ids, :]
        try:
            sub_inv = invert(sub)
        except SingularMatrixError as exc:
            raise DecodeError(f"singular helper submatrix: {exc}") from exc
        row = matmul(self._generator[[lost_index], :], sub_inv)[0]
        return {helper: int(row[i]) for i, helper in enumerate(helper_ids)}


def _rs_factory(n: int, k: int) -> ReedSolomonCodec:
    return ReedSolomonCodec(n, k)


register_codec("rs", _rs_factory)
