"""Object manifests: the gateway's durable key → stripes mapping.

A manifest records everything needed to read an object back without
the cluster snapshot that produced it: the erasure scheme, the chunk
geometry, a content hash, and each stripe's id plus its placement
(chunk index → node id).  Manifests ride the shared
:class:`~repro.core.serde.Schema` protocol, so versioning and
unknown-key rejection behave exactly like fault plans and cluster
snapshots (DESIGN.md §15).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..cluster.chunk import NodeId, StripeId
from ..core.serde import Schema


class ManifestError(ValueError):
    """Raised for malformed or missing manifests."""


#: on-disk/wire schema for one object manifest
MANIFEST_SCHEMA = Schema(
    "gateway-manifest",
    version=1,
    fields=(
        "key", "size", "chunk_size", "n", "k", "sha256", "stripes",
    ),
    required=(
        "key", "size", "chunk_size", "n", "k", "sha256", "stripes",
    ),
    error=ManifestError,
)


@dataclass(frozen=True)
class StripeRef:
    """One stripe of an object: id plus chunk placement."""

    stripe_id: StripeId
    #: node id holding each chunk, indexed by chunk index (len == n)
    placement: Tuple[NodeId, ...]

    def to_dict(self) -> Dict:
        return {
            "stripe_id": self.stripe_id,
            "placement": list(self.placement),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StripeRef":
        return cls(
            stripe_id=int(data["stripe_id"]),
            placement=tuple(int(n) for n in data["placement"]),
        )


@dataclass(frozen=True)
class ObjectManifest:
    """Durable description of one stored object."""

    key: str
    #: original object size in bytes (the tail stripe is zero-padded)
    size: int
    chunk_size: int
    n: int
    k: int
    #: hex sha256 of the original bytes — GET verifies against this
    sha256: str
    stripes: Tuple[StripeRef, ...] = field(default_factory=tuple)

    @property
    def scheme(self) -> str:
        return f"rs({self.n},{self.k})"

    @property
    def stripe_ids(self) -> Tuple[StripeId, ...]:
        return tuple(ref.stripe_id for ref in self.stripes)

    def to_dict(self) -> Dict:
        return MANIFEST_SCHEMA.dump({
            "key": self.key,
            "size": self.size,
            "chunk_size": self.chunk_size,
            "n": self.n,
            "k": self.k,
            "sha256": self.sha256,
            "stripes": [ref.to_dict() for ref in self.stripes],
        })

    @classmethod
    def from_dict(cls, document: Dict) -> "ObjectManifest":
        body = MANIFEST_SCHEMA.load(document)
        return cls(
            key=body["key"],
            size=int(body["size"]),
            chunk_size=int(body["chunk_size"]),
            n=int(body["n"]),
            k=int(body["k"]),
            sha256=body["sha256"],
            stripes=tuple(
                StripeRef.from_dict(ref) for ref in body["stripes"]
            ),
        )


def digest(data: bytes) -> str:
    """The content hash manifests carry (hex sha256)."""
    return hashlib.sha256(data).hexdigest()


class ManifestStore:
    """Thread-safe manifest catalog, optionally persisted to a directory.

    Keys may contain ``/``; on disk each manifest lives in a file named
    by the key's sha256, with the key itself inside the document (the
    same trick object stores use for flat namespaces).
    """

    def __init__(self, directory: Optional[Path] = None):
        self._lock = threading.Lock()
        self._manifests: Dict[str, ObjectManifest] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            for path in sorted(self.directory.glob("*.json")):
                manifest = ObjectManifest.from_dict(
                    json.loads(path.read_text())
                )
                self._manifests[manifest.key] = manifest

    def _path(self, key: str) -> Path:
        name = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.directory / f"{name}.json"

    def save(self, manifest: ObjectManifest) -> None:
        with self._lock:
            self._manifests[manifest.key] = manifest
            if self.directory is not None:
                self._path(manifest.key).write_text(
                    json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
                )

    def load(self, key: str) -> ObjectManifest:
        with self._lock:
            try:
                return self._manifests[key]
            except KeyError:
                raise ManifestError(f"no such object: {key!r}") from None

    def delete(self, key: str) -> None:
        with self._lock:
            self._manifests.pop(key, None)
            if self.directory is not None:
                path = self._path(key)
                if path.exists():
                    path.unlink()

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._manifests

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._manifests)
