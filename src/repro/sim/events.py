"""A small discrete-event simulation kernel.

Provides generator-based processes (a la SimPy, implemented from
scratch): a process is a Python generator that yields
:class:`Acquire` / :class:`Release` / :class:`Delay` commands.  The
:class:`Simulation` drives all processes in virtual time.

This kernel underlies :mod:`repro.sim.simulator`, which executes
repair plans against per-node disk/NIC resources.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. releasing an un-held resource)."""


@dataclass(frozen=True)
class Acquire:
    """Yield to wait for exclusive use of a resource."""

    resource: "Resource"


@dataclass(frozen=True)
class Release:
    """Yield to release a held resource."""

    resource: "Resource"


@dataclass(frozen=True)
class Delay:
    """Yield to advance this process by ``duration`` of virtual time."""

    duration: float

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError(f"negative delay {self.duration}")


Process = Generator[object, None, None]


class Resource:
    """An exclusive-use resource with a FIFO wait queue.

    Models one serial device: a node's disk, its NIC ingress, or its
    NIC egress.  Utilization accounting feeds the simulator's traffic
    statistics.
    """

    def __init__(self, name: str):
        self.name = name
        self._holder: Optional[int] = None  # process id
        self._waiters: deque = deque()
        #: cumulative busy time (for utilization reports)
        self.busy_time: float = 0.0
        self._acquired_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource({self.name})"


class Simulation:
    """Drives processes and resources in virtual time."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List = []
        self._seq = itertools.count()
        self._active = 0

    # -- process management ---------------------------------------------

    def spawn(
        self,
        process: Process,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Register a process to start at the current time."""
        self._active += 1
        pid = next(self._seq)
        self._schedule(self.now, lambda: self._step(pid, process, on_done, None))

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute virtual time ``time``.

        The public face of the internal scheduler, for event-driven
        models (e.g. :mod:`repro.sim.lifetime`) that react to point
        events — a disk failing, a scrub tick — rather than holding
        resources through generator processes.  Events at equal times
        fire in scheduling order.
        """
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        self._schedule(max(time, self.now), fn)

    def run(self) -> float:
        """Run until no events remain; returns the final virtual time."""
        while self._queue:
            time, _, fn = heapq.heappop(self._queue)
            if time < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = max(self.now, time)
            fn()
        return self.now

    def run_until(self, deadline: float) -> float:
        """Run events with ``time <= deadline``; advance ``now`` to it.

        Events scheduled beyond ``deadline`` stay queued for a later
        :meth:`run` / :meth:`run_until` call — the hook lifetime-mode
        uses to cut a simulated horizon without draining renewals that
        fall past it.
        """
        while self._queue and self._queue[0][0] <= deadline:
            time, _, fn = heapq.heappop(self._queue)
            self.now = max(self.now, time)
            fn()
        self.now = max(self.now, deadline)
        return self.now

    # -- internals --------------------------------------------------------

    def _schedule(self, time: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def _step(self, pid, process: Process, on_done, send_value) -> None:
        try:
            command = process.send(send_value)
        except StopIteration:
            self._active -= 1
            if on_done is not None:
                on_done(self.now)
            return
        if isinstance(command, Delay):
            self._schedule(
                self.now + command.duration,
                lambda: self._step(pid, process, on_done, None),
            )
        elif isinstance(command, Acquire):
            self._acquire(pid, command.resource, process, on_done)
        elif isinstance(command, Release):
            self._release(pid, command.resource)
            self._schedule(self.now, lambda: self._step(pid, process, on_done, None))
        else:
            raise SimulationError(f"process yielded unknown command {command!r}")

    def _acquire(self, pid, resource: Resource, process, on_done) -> None:
        grant = lambda: self._grant(pid, resource, process, on_done)
        if resource._holder is None and not resource._waiters:
            grant()
        else:
            resource._waiters.append(grant)

    def _grant(self, pid, resource: Resource, process, on_done) -> None:
        if resource._holder is not None:
            raise SimulationError(f"{resource} granted while held")
        resource._holder = pid
        resource._acquired_at = self.now
        self._schedule(self.now, lambda: self._step(pid, process, on_done, None))

    def _release(self, pid, resource: Resource) -> None:
        if resource._holder != pid:
            raise SimulationError(
                f"process {pid} released {resource} held by {resource._holder}"
            )
        resource.busy_time += self.now - resource._acquired_at
        resource._holder = None
        if resource._waiters:
            grant = resource._waiters.popleft()
            grant()


def use(resource: Resource, duration: float) -> Process:
    """Inline helper: acquire, hold for ``duration``, release."""
    yield Acquire(resource)
    yield Delay(duration)
    yield Release(resource)
