"""The loopback TCP throughput sweep behind BENCH_net_throughput.json."""

import pytest

from repro.bench.smoke import (
    NET_BENCH_SCHEMA,
    check_pipelining_gate,
    run_net_throughput,
    run_pipelining_bench,
    validate_net,
)


def test_sweep_produces_validated_document():
    document = run_net_throughput(sizes=(1 << 12,), frames=8)
    body = validate_net(document)
    assert body["transport"] == "tcp-loopback"
    (run,) = body["runs"]
    assert run["payload_bytes"] == 1 << 12
    assert run["frames"] == 8
    assert run["frames_per_s"] > 0
    assert run["mb_per_s"] > 0
    assert run["seconds"] > 0


def test_validate_rejects_empty_sweep():
    with pytest.raises(ValueError, match="no runs"):
        validate_net(NET_BENCH_SCHEMA.dump({"transport": "x", "runs": []}))


def test_validate_rejects_degenerate_run():
    document = NET_BENCH_SCHEMA.dump(
        {
            "transport": "tcp-loopback",
            "runs": [
                {
                    "payload_bytes": 1,
                    "frames": 0,
                    "seconds": 0.0,
                    "frames_per_s": 0.0,
                    "mb_per_s": 0.0,
                }
            ],
        }
    )
    with pytest.raises(ValueError, match="degenerate"):
        validate_net(document)


def test_pipelining_section_validates_and_chain_wins():
    # A small, fast rig (1 MiB chunks): the section must validate and
    # the chain must at least beat star fan-in; the committed document
    # is measured on the bigger default rig where the 0.5x gate holds.
    section = run_pipelining_bench(slices=8, chunk_bytes=1 << 20,
                                   network_mb_s=50.0, stripes=2)
    document = run_net_throughput(sizes=(1 << 12,), frames=8)
    document["pipelining"] = section
    body = validate_net(document)
    assert body["pipelining"]["code"] == "rs(9,6)"
    assert body["pipelining"]["chunks"] > 0
    assert body["pipelining"]["chain_vs_star_speedup"] > 1.0


def test_pipelining_gate_passes_and_fails():
    section = {
        "star": {"seconds": 10.0},
        "chain": {"seconds": 4.0},
        "max_chain_ratio": 0.5,
    }
    assert check_pipelining_gate(section) is None
    section["chain"]["seconds"] = 6.0
    problem = check_pipelining_gate(section)
    assert problem is not None and "0.60x" in problem


def test_validate_rejects_degenerate_pipelining_run():
    document = run_net_throughput(sizes=(1 << 12,), frames=8)
    document["pipelining"] = {
        "star": {"seconds": 0.0},
        "chain": {"seconds": 0.0},
        "chunks": 0,
        "max_chain_ratio": 0.5,
    }
    with pytest.raises(ValueError, match="degenerate pipelining"):
        validate_net(document)
