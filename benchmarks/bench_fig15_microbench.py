"""Figure 15 / Experiment B.5: Algorithm 1 microbenchmarks.

Paper claims reproduced here:

* the swap-optimization phase reduces the number of reconstruction
  sets: d_opt < d_ini on average (paper: ~13% fewer);
* Algorithm 1's running time grows polynomially with the number of
  repaired chunks (the paper's C++ run goes 0.84 s -> 254.63 s over
  100 -> 1,000 chunks; our Python sweep is scaled to 20-100 chunks and
  asserts the superlinear growth shape).
"""

from conftest import run_once

from repro.bench.experiments import fig15_microbench

SIZES = (40, 80, 120)
RUNS = 2


def test_fig15_microbench(benchmark, save_result):
    exp = run_once(benchmark, fig15_microbench, sizes=SIZES, runs=RUNS)
    save_result(exp)

    panel_a = exp.panel("Fig 15(a) — reduction of d_opt over d_ini")
    reductions = panel_a.values_of("reduction")
    assert all(r >= 0 for r in reductions), "optimization never hurts"
    assert max(reductions) > 0.0, "optimization should help somewhere"
    mean_reduction = sum(reductions) / len(reductions)
    assert mean_reduction > 0.02, f"mean reduction {mean_reduction:.1%}"

    panel_b = exp.panel("Fig 15(b) — running time of Algorithm 1")
    times = panel_b.values_of("algorithm1")
    # Superlinear growth: quadrupling |C| should cost far more than 4x.
    assert times[-1] > times[0] * 6, (
        f"expected superlinear growth, got {times}"
    )
