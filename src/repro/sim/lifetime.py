"""Monte-Carlo cluster-lifetime simulation: durability over years.

The paper evaluates FastPR as one-shot repairs; the object it argues
about is a cluster living for *years* under a sustained failure
process, where predictive repair shrinks the window in which a stripe
sits below full redundancy.  This module measures that directly, in
the style of the regenerating-codes durability literature (Dimakis et
al.) and trace-driven reliability simulators: run many independent
trials of a simulated cluster lifetime and estimate the lost-stripe
probability — a stripe is lost when more than ``n - k`` of its chunks
are simultaneously unavailable — with and without predictive repair.

Failure inputs are pluggable processes producing per-disk
:class:`DiskEvent` streams:

* :class:`WeibullFailureProcess` — renewal process of Weibull disk
  lifetimes with an abstract detector (detection rate, lead-time
  distribution, false-alarm rate);
* :class:`TraceReplayProcess` — replays SMART traces
  (:class:`~repro.failure.smart.DiskTrace`, e.g. from
  ``failure.traces_io``) through a real
  :class:`~repro.failure.predictor.FailurePredictor`, tiling the fleet
  across the horizon, so alarms and misses come from the actual
  predictor, not a model of one.

Latent sector errors arrive as a Poisson process per disk and stay
invisible — and at risk — until a periodic scrub cycle (the
Monte-Carlo counterpart of :class:`repro.runtime.scrub.Scrubber`)
detects them and queues a targeted chunk repair.

The engine runs on the shared discrete-event kernel
(:class:`repro.sim.events.Simulation` via ``schedule_at`` /
``run_until``); repair durations can be calibrated against the
event-driven repair simulator with
:func:`repro.sim.simulator.calibrate_repair_rates`.  Repairs contend
for a bounded crew (``repair_concurrency``) with the daemon's
degradation policy: reactive and scrub repairs admit first, predictive
repairs defer while the queue holds reactive work.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .events import Simulation

__all__ = [
    "DiskEvent",
    "LifetimeConfig",
    "LifetimeReport",
    "LifetimeResult",
    "TraceReplayProcess",
    "WeibullFailureProcess",
    "durability_study",
    "run_lifetime",
]


@dataclass(frozen=True)
class DiskEvent:
    """One disk lifetime (or false alarm) produced by a failure process.

    Attributes:
        disk: the disk slot (0..num_disks-1) the event applies to.
        fail_day: day the disk actually fails; ``None`` for a false
            alarm (the detector fired but the disk survives).
        alarm_day: day the detector flags the disk; ``None`` for an
            unpredicted failure (reactive repair only).
    """

    disk: int
    fail_day: Optional[float]
    alarm_day: Optional[float]

    def __post_init__(self):
        if self.fail_day is None and self.alarm_day is None:
            raise ValueError("DiskEvent needs a failure or an alarm")
        if (
            self.fail_day is not None
            and self.alarm_day is not None
            and self.alarm_day > self.fail_day
        ):
            raise ValueError("alarm_day must not follow fail_day")


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (fine for the small rates used here)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class WeibullFailureProcess:
    """Renewal process of Weibull disk lifetimes + abstract detector.

    Each disk slot samples successive lifetimes from a Weibull
    distribution whose scale is set so the one-year failure probability
    equals ``annual_failure_rate`` (shape defaults to the
    slightly-increasing hazard reported by field studies).  When a disk
    fails it is replaced by a fresh one (renewal), so multi-year
    horizons age realistically.  A failure is predicted with
    probability ``detection_rate``, ``lead_days`` (Gaussian-jittered)
    ahead; false alarms arrive per disk-year at ``false_alarm_rate``.
    """

    name = "weibull"

    def __init__(
        self,
        shape: float = 1.12,
        annual_failure_rate: float = 0.04,
        detection_rate: float = 0.9,
        lead_days: float = 10.0,
        lead_jitter_days: float = 3.0,
        false_alarm_rate: float = 0.02,
    ):
        if shape <= 0:
            raise ValueError("shape must be positive")
        if not 0 < annual_failure_rate < 1:
            raise ValueError("annual_failure_rate must be in (0, 1)")
        if not 0 <= detection_rate <= 1:
            raise ValueError("detection_rate must be in [0, 1]")
        self.shape = shape
        self.annual_failure_rate = annual_failure_rate
        self.detection_rate = detection_rate
        self.lead_days = lead_days
        self.lead_jitter_days = lead_jitter_days
        self.false_alarm_rate = false_alarm_rate
        # P(T <= 365) = 1 - exp(-(365/scale)^shape) = AFR
        self.scale_days = 365.0 / (
            (-math.log(1.0 - annual_failure_rate)) ** (1.0 / shape)
        )

    def events(
        self, rng: random.Random, num_disks: int, horizon_days: float
    ) -> List[DiskEvent]:
        events: List[DiskEvent] = []
        for disk in range(num_disks):
            born = 0.0
            while True:
                life = rng.weibullvariate(self.scale_days, self.shape)
                fail = born + life
                if fail >= horizon_days:
                    break
                alarm: Optional[float] = None
                if rng.random() < self.detection_rate:
                    lead = max(
                        0.5, rng.gauss(self.lead_days, self.lead_jitter_days)
                    )
                    alarm = max(born, fail - lead)
                events.append(DiskEvent(disk, fail, alarm))
                born = fail  # replacement disk goes in service
            for _ in range(
                _poisson(rng, self.false_alarm_rate * horizon_days / 365.0)
            ):
                events.append(
                    DiskEvent(disk, None, rng.uniform(0.0, horizon_days))
                )
        return events


class TraceReplayProcess:
    """Replay a SMART trace fleet through a real failure predictor.

    Each disk slot replays traces drawn (with replacement) from the
    fleet, tiled end to end across the horizon; a slot whose trace
    fails is "replaced" by the next drawn trace.  Alarm days come from
    running ``predictor`` over each trace
    (:func:`~repro.failure.predictor.first_alarm_day`), so prediction
    quality — lead time, misses, false alarms — is whatever the
    predictor actually achieves on the data, computed once per distinct
    trace and cached.
    """

    name = "trace-replay"

    def __init__(self, traces: Sequence, predictor):
        if not traces:
            raise ValueError("trace replay needs a non-empty fleet")
        self.traces = list(traces)
        self.predictor = predictor
        self._profiles: Optional[List[Tuple[float, Optional[float], Optional[float]]]] = None

    def _trace_profiles(self):
        """Per-trace ``(span_days, fail_day, alarm_day)``, cached."""
        if self._profiles is None:
            from ..failure.predictor import first_alarm_day

            profiles = []
            for trace in self.traces:
                span = max(s.day for s in trace.samples) + 1.0
                alarm = first_alarm_day(self.predictor, trace)
                fail = trace.failure_day
                if (
                    fail is not None
                    and alarm is not None
                    and alarm >= fail
                ):
                    alarm = None  # an alarm on/after the failure is a miss
                profiles.append(
                    (span, None if fail is None else float(fail),
                     None if alarm is None else float(alarm))
                )
            self._profiles = profiles
        return self._profiles

    def events(
        self, rng: random.Random, num_disks: int, horizon_days: float
    ) -> List[DiskEvent]:
        profiles = self._trace_profiles()
        events: List[DiskEvent] = []
        for disk in range(num_disks):
            offset = 0.0
            while offset < horizon_days:
                span, fail, alarm = profiles[rng.randrange(len(profiles))]
                fail_at = None if fail is None else offset + fail
                alarm_at = None if alarm is None else offset + alarm
                if fail_at is not None and fail_at >= horizon_days:
                    fail_at = None  # survives the cut horizon
                if alarm_at is not None and alarm_at >= horizon_days:
                    alarm_at = None
                if fail_at is not None or alarm_at is not None:
                    events.append(DiskEvent(disk, fail_at, alarm_at))
                offset += span
        return events


@dataclass(frozen=True)
class LifetimeConfig:
    """Shape and policy knobs of one lifetime study.

    Repair durations default to conservative whole-disk rebuild times;
    calibrate them against the event-driven repair simulator via
    :func:`repro.sim.simulator.calibrate_repair_rates` (convert with
    ``.predictive_days`` / ``.reactive_days``) for numbers tied to the
    modeled bandwidths.
    """

    num_disks: int = 30
    num_stripes: int = 120
    n: int = 9
    k: int = 6
    years: float = 1.0
    #: act on predictor alarms (FastPR mode) vs purely reactive repair
    predictive: bool = True
    #: simultaneous whole-disk repairs the cluster sustains
    repair_concurrency: int = 2
    #: FastPR drain of a still-readable (alarmed) disk, days
    predictive_repair_days: float = 0.25
    #: full reconstruction of a dead disk, days
    reactive_repair_days: float = 1.0
    #: detection + replacement lag before a reactive repair starts
    replacement_delay_days: float = 0.25
    #: targeted repair of one scrub-detected chunk, days
    chunk_repair_days: float = 0.02
    #: latent sector errors per disk-year (0 disables them)
    latent_errors_per_disk_year: float = 0.0
    #: scrub sweep period surfacing latent errors (0 disables scrub)
    scrub_interval_days: float = 14.0
    #: stripe placement RNG seed (placement is shared by all trials)
    placement_seed: int = 1

    def __post_init__(self):
        if not 1 <= self.k < self.n:
            raise ValueError("need 1 <= k < n")
        if self.num_disks < self.n:
            raise ValueError("need at least n disks to place a stripe")
        if self.years <= 0 or self.num_stripes <= 0:
            raise ValueError("years and num_stripes must be positive")
        if self.repair_concurrency < 1:
            raise ValueError("repair_concurrency must be >= 1")

    @property
    def horizon_days(self) -> float:
        return self.years * 365.0

    @property
    def fault_tolerance(self) -> int:
        """Chunks a stripe can lose before data loss (``n - k``)."""
        return self.n - self.k

    def placement(self) -> List[Tuple[int, ...]]:
        """Deterministic stripe -> disk placement for this config."""
        rng = random.Random(self.placement_seed)
        return [
            tuple(rng.sample(range(self.num_disks), self.n))
            for _ in range(self.num_stripes)
        ]


@dataclass
class LifetimeResult:
    """Outcome of one simulated cluster lifetime (one trial)."""

    lost_stripes: int = 0
    disk_failures: int = 0
    predicted_failures: int = 0
    missed_failures: int = 0
    false_alarms: int = 0
    suppressed_alarms: int = 0
    latent_errors: int = 0
    scrub_detections: int = 0
    repairs_completed: Dict[str, int] = field(default_factory=dict)
    predictive_deferrals: int = 0
    max_queue_depth: int = 0
    mean_queue_depth: float = 0.0
    #: time-weighted count of chunk-days below full redundancy
    chunk_days_at_risk: float = 0.0

    @property
    def data_loss(self) -> bool:
        return self.lost_stripes > 0


class _Job:
    """One queued repair: a whole disk (predictive/reactive) or a chunk."""

    __slots__ = ("kind", "disk", "event", "chunk", "enqueued", "seq")

    #: admission priority — reactive work first, predictive defers
    PRIORITY = {"reactive": 0, "chunk": 1, "predictive": 2}

    def __init__(self, kind, disk, event=None, chunk=None, enqueued=0.0, seq=0):
        self.kind = kind
        self.disk = disk
        self.event = event
        self.chunk = chunk
        self.enqueued = enqueued
        self.seq = seq

    @property
    def sort_key(self):
        return (self.PRIORITY[self.kind], self.seq)


class _LifetimeTrial:
    """One trial: wires events, scrub, and the repair queue together."""

    def __init__(
        self,
        config: LifetimeConfig,
        placement: List[Tuple[int, ...]],
        disk_stripes: Dict[int, List[int]],
        events: List[DiskEvent],
        rng: random.Random,
    ):
        self.config = config
        self.placement = placement
        self.disk_stripes = disk_stripes
        self.rng = rng
        self.sim = Simulation()
        self.result = LifetimeResult()
        self.horizon = config.horizon_days
        # -- cluster state -------------------------------------------------
        self.down: Dict[int, float] = {}  # disk -> down since (day)
        self.lost: Set[int] = set()
        self.latent: Dict[Tuple[int, int], float] = {}  # (stripe, slot) -> day
        self.latent_by_stripe: Dict[int, Set[int]] = {}
        # -- repair queue --------------------------------------------------
        self.queue: List[_Job] = []
        self.in_flight = 0
        self._seq = 0
        self._active_predictive: Dict[int, _Job] = {}
        self._drained: Set[int] = set()  # disks drained before their failure
        self._depth_last_day = 0.0
        self._depth_area = 0.0
        # -- schedule ------------------------------------------------------
        for event in events:
            if config.predictive and event.alarm_day is not None:
                self.sim.schedule_at(
                    event.alarm_day, lambda e=event: self._on_alarm(e)
                )
            if event.fail_day is not None:
                self.sim.schedule_at(
                    event.fail_day, lambda e=event: self._on_failure(e)
                )
        self._schedule_latent_errors()
        if config.scrub_interval_days > 0 and config.latent_errors_per_disk_year > 0:
            self.sim.schedule_at(config.scrub_interval_days, self._on_scrub)

    # -- event handlers ----------------------------------------------------

    def _on_alarm(self, event: DiskEvent) -> None:
        disk = event.disk
        if disk in self.down or disk in self._active_predictive:
            # Same dedupe-by-node policy as failure.monitor: a disk
            # already failed or already being drained gets no second
            # concurrent repair from a repeated alarm.
            self.result.suppressed_alarms += 1
            return
        job = self._enqueue(_Job("predictive", disk, event=event))
        self._active_predictive[disk] = job

    def _on_failure(self, event: DiskEvent) -> None:
        disk = event.disk
        self.result.disk_failures += 1
        if event.alarm_day is not None and self.config.predictive:
            self.result.predicted_failures += 1
        else:
            self.result.missed_failures += 1
        if disk in self._drained:
            # Predictive repair finished before the disk died: its data
            # already lives elsewhere, the failure costs nothing.  The
            # replacement disk enters service clean.
            self._drained.discard(disk)
            return
        self._mark_down(disk)
        pending = self._active_predictive.get(disk)
        if pending is not None and pending in self.queue:
            # The drain never started; it is now a reconstruction.
            self.queue.remove(pending)
            del self._active_predictive[disk]
            pending = None
        if pending is None:
            self._enqueue(
                _Job("reactive", disk, event=event),
                ready=self.sim.now + self.config.replacement_delay_days,
            )
        # else: the in-flight predictive drain doubles as the rebuild —
        # its completion brings the disk (well, its replacement) back.

    def _on_scrub(self) -> None:
        queued = {
            job.chunk for job in self.queue if job.kind == "chunk"
        }
        for chunk in sorted(self.latent):
            stripe, slot = chunk
            if chunk in queued:
                continue
            if self.placement[stripe][slot] in self.down:
                continue  # the disk rebuild will restore it anyway
            self.result.scrub_detections += 1
            self._enqueue(_Job("chunk", self.placement[stripe][slot], chunk=chunk))
        next_tick = self.sim.now + self.config.scrub_interval_days
        if next_tick <= self.horizon:
            self.sim.schedule_at(next_tick, self._on_scrub)

    def _on_latent_error(self, disk: int) -> None:
        stripes = self.disk_stripes.get(disk)
        if not stripes:
            return
        stripe = stripes[self.rng.randrange(len(stripes))]
        slot = self.placement[stripe].index(disk)
        key = (stripe, slot)
        if key in self.latent:
            return
        self.latent[key] = self.sim.now
        self.latent_by_stripe.setdefault(stripe, set()).add(slot)
        self.result.latent_errors += 1
        self._check_loss(stripe)

    # -- repair queue ------------------------------------------------------

    def _enqueue(self, job: _Job, ready: Optional[float] = None) -> _Job:
        job.enqueued = self.sim.now
        job.seq = self._seq = self._seq + 1
        if ready is not None and ready > self.sim.now:
            self.sim.schedule_at(ready, lambda: self._admit(job))
        else:
            self._admit(job)
        return job

    def _admit(self, job: _Job) -> None:
        self.queue.append(job)
        self._note_queue_depth()
        self._pump()

    def _pump(self) -> None:
        while self.in_flight < self.config.repair_concurrency and self.queue:
            job = min(self.queue, key=lambda j: j.sort_key)
            if job.kind == "predictive" and any(
                j.kind == "reactive" for j in self.queue if j is not job
            ):
                # Degradation policy: with reactive work waiting, every
                # free slot goes to it; predictive drains defer.
                self.result.predictive_deferrals += 1
            self.queue.remove(job)
            self._note_queue_depth()
            self.in_flight += 1
            duration = {
                "predictive": self.config.predictive_repair_days,
                "reactive": self.config.reactive_repair_days,
                "chunk": self.config.chunk_repair_days,
            }[job.kind]
            self.sim.schedule_at(
                self.sim.now + duration, lambda j=job: self._complete(j)
            )

    def _complete(self, job: _Job) -> None:
        self.in_flight -= 1
        self.result.repairs_completed[job.kind] = (
            self.result.repairs_completed.get(job.kind, 0) + 1
        )
        if job.kind == "chunk":
            self._clear_latent(job.chunk)
        elif job.kind == "predictive":
            self._active_predictive.pop(job.disk, None)
            if job.disk in self.down:
                # The disk died mid-drain; finishing the job doubles as
                # the rebuild of the missed remainder.
                self._mark_up(job.disk)
            elif job.event is not None and job.event.fail_day is not None:
                self._drained.add(job.disk)
            if job.event is not None and job.event.fail_day is None:
                self.result.false_alarms += 1
        else:
            self._mark_up(job.disk)
        self._pump()

    # -- state transitions -------------------------------------------------

    def _mark_down(self, disk: int) -> None:
        if disk in self.down:
            return
        self.down[disk] = self.sim.now
        for stripe in self.disk_stripes.get(disk, ()):
            self._check_loss(stripe)

    def _mark_up(self, disk: int) -> None:
        since = self.down.pop(disk, None)
        if since is not None:
            self.result.chunk_days_at_risk += (self.sim.now - since) * len(
                self.disk_stripes.get(disk, ())
            )
        # A rebuilt disk carries freshly decoded chunks: its latent
        # errors are gone too.
        for chunk in [
            c
            for c in self.latent
            if self.placement[c[0]][c[1]] == disk
        ]:
            self._clear_latent(chunk)

    def _clear_latent(self, chunk: Optional[Tuple[int, int]]) -> None:
        if chunk is None:
            return
        since = self.latent.pop(chunk, None)
        if since is None:
            return
        self.result.chunk_days_at_risk += self.sim.now - since
        slots = self.latent_by_stripe.get(chunk[0])
        if slots is not None:
            slots.discard(chunk[1])

    def _check_loss(self, stripe: int) -> None:
        if stripe in self.lost:
            return
        unavailable = {
            slot
            for slot, disk in enumerate(self.placement[stripe])
            if disk in self.down
        }
        unavailable |= self.latent_by_stripe.get(stripe, set())
        if len(unavailable) > self.config.fault_tolerance:
            self.lost.add(stripe)

    # -- bookkeeping -------------------------------------------------------

    def _note_queue_depth(self) -> None:
        depth = len(self.queue) + self.in_flight
        self._depth_area += (self.sim.now - self._depth_last_day) * (
            len(self.queue) + self.in_flight
        )
        self._depth_last_day = self.sim.now
        self.result.max_queue_depth = max(self.result.max_queue_depth, depth)

    def _schedule_latent_errors(self) -> None:
        rate = self.config.latent_errors_per_disk_year
        if rate <= 0:
            return
        per_disk = rate * self.horizon / 365.0
        for disk in range(self.config.num_disks):
            for _ in range(_poisson(self.rng, per_disk)):
                self.sim.schedule_at(
                    self.rng.uniform(0.0, self.horizon),
                    lambda d=disk: self._on_latent_error(d),
                )

    def run(self) -> LifetimeResult:
        self.sim.run_until(self.horizon)
        # Close out open risk windows at the horizon.
        for disk, since in self.down.items():
            self.result.chunk_days_at_risk += (self.horizon - since) * len(
                self.disk_stripes.get(disk, ())
            )
        for chunk, since in self.latent.items():
            self.result.chunk_days_at_risk += self.horizon - since
        self.result.lost_stripes = len(self.lost)
        self.result.mean_queue_depth = (
            self._depth_area / self.horizon if self.horizon > 0 else 0.0
        )
        return self.result


@dataclass
class LifetimeReport:
    """Aggregate of ``trials`` independent simulated lifetimes."""

    process: str
    predictive: bool
    config: LifetimeConfig
    results: List[LifetimeResult]

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def lost_stripe_probability(self) -> float:
        """Fraction of trials that lost at least one stripe."""
        if not self.results:
            return 0.0
        return sum(r.data_loss for r in self.results) / len(self.results)

    @property
    def mean_lost_stripes(self) -> float:
        return self._mean(lambda r: r.lost_stripes)

    @property
    def mean_chunk_days_at_risk(self) -> float:
        return self._mean(lambda r: r.chunk_days_at_risk)

    @property
    def mean_max_queue_depth(self) -> float:
        return self._mean(lambda r: r.max_queue_depth)

    @property
    def max_queue_depth(self) -> int:
        return max((r.max_queue_depth for r in self.results), default=0)

    def _mean(self, key) -> float:
        if not self.results:
            return 0.0
        return sum(key(r) for r in self.results) / len(self.results)

    def to_dict(self) -> dict:
        """Summary document (the BENCH_durability.json payload)."""
        totals: Dict[str, int] = {}
        for result in self.results:
            for kind, count in result.repairs_completed.items():
                totals[kind] = totals.get(kind, 0) + count
        return {
            "process": self.process,
            "predictive": self.predictive,
            "trials": self.trials,
            "years": self.config.years,
            "lost_stripe_probability": self.lost_stripe_probability,
            "mean_lost_stripes": self.mean_lost_stripes,
            "mean_chunk_days_at_risk": self.mean_chunk_days_at_risk,
            "mean_max_queue_depth": self.mean_max_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "disk_failures": sum(r.disk_failures for r in self.results),
            "predicted_failures": sum(
                r.predicted_failures for r in self.results
            ),
            "missed_failures": sum(r.missed_failures for r in self.results),
            "false_alarms": sum(r.false_alarms for r in self.results),
            "latent_errors": sum(r.latent_errors for r in self.results),
            "scrub_detections": sum(
                r.scrub_detections for r in self.results
            ),
            "predictive_deferrals": sum(
                r.predictive_deferrals for r in self.results
            ),
            "repairs_completed": totals,
        }

    def summary(self) -> str:
        mode = "predictive" if self.predictive else "reactive"
        return (
            f"{self.process}/{mode}: {self.trials} trials x "
            f"{self.config.years:g}y -> P(loss)="
            f"{self.lost_stripe_probability:.4f}, "
            f"mean lost stripes {self.mean_lost_stripes:.3f}, "
            f"chunk-days at risk {self.mean_chunk_days_at_risk:.1f}, "
            f"max queue {self.max_queue_depth}"
        )


def run_lifetime(
    process,
    config: LifetimeConfig,
    trials: int = 50,
    seed: int = 0,
) -> LifetimeReport:
    """Run ``trials`` independent lifetimes of ``config`` under ``process``.

    Each trial gets its own deterministic RNG stream derived from
    ``seed``; the stripe placement is fixed per config (the same
    cluster living many possible lives).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    placement = config.placement()
    disk_stripes: Dict[int, List[int]] = {}
    for stripe, disks in enumerate(placement):
        for disk in disks:
            disk_stripes.setdefault(disk, []).append(stripe)
    results = []
    for trial in range(trials):
        rng = random.Random(1_000_003 * seed + trial)
        events = process.events(rng, config.num_disks, config.horizon_days)
        results.append(
            _LifetimeTrial(config, placement, disk_stripes, events, rng).run()
        )
    return LifetimeReport(
        process=process.name,
        predictive=config.predictive,
        config=config,
        results=results,
    )


def durability_study(
    processes: Sequence,
    config: LifetimeConfig,
    trials: int = 50,
    seed: int = 0,
) -> List[dict]:
    """Compare predictive vs reactive repair under each failure process.

    Returns one entry per process with both modes' report summaries —
    the body of ``BENCH_durability.json``.
    """
    entries = []
    for process in processes:
        entry = {"process": process.name}
        for predictive in (True, False):
            report = run_lifetime(
                process,
                replace(config, predictive=predictive),
                trials=trials,
                seed=seed,
            )
            entry["predictive" if predictive else "reactive"] = (
                report.to_dict()
            )
        entries.append(entry)
    return entries
