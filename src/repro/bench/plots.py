"""Dependency-free SVG figure rendering from bench results.

The paper presents its evaluation as grouped bar charts; this module
re-draws them from the benches' JSON results without any plotting
library (the reproduction environment is offline), emitting one SVG
per panel::

    python -m repro.bench.plots benchmarks/results -o figures/

Charts are grouped bars — one group per x tick, one bar per series —
with a y axis in the panel's unit and a legend, which is exactly the
visual form of Figures 2-3 and 8-15.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional

from .harness import Experiment, Panel

#: categorical palette (paper-like: blue/orange/green/red + extras)
PALETTE = ["#4878a8", "#e49444", "#6a9f58", "#d1605e", "#85b6b2", "#997db5"]

_CHART = dict(
    width=640,
    height=360,
    margin_left=70,
    margin_right=20,
    margin_top=48,
    margin_bottom=64,
)


def _slug(text: str) -> str:
    text = re.sub(r"[^0-9A-Za-z]+", "_", text).strip("_").lower()
    return text or "panel"


def _nice_ceiling(value: float) -> float:
    """Round up to a 1/2/5 x 10^n grid for a tidy y axis."""
    if value <= 0:
        return 1.0
    import math

    exp = math.floor(math.log10(value))
    for mult in (1.0, 2.0, 5.0, 10.0):
        candidate = mult * 10.0**exp
        if candidate >= value - 1e-12:
            return candidate
    return 10.0 ** (exp + 1)


def render_panel_svg(panel: Panel, title_prefix: str = "") -> str:
    """Render one panel as a grouped-bar SVG document."""
    cfg = _CHART
    plot_w = cfg["width"] - cfg["margin_left"] - cfg["margin_right"]
    plot_h = cfg["height"] - cfg["margin_top"] - cfg["margin_bottom"]
    series = panel.series
    xticks = panel.xticks
    max_value = max(
        (v for s in series for v in s.values if v is not None), default=1.0
    )
    y_max = _nice_ceiling(max_value * 1.05)
    groups = max(len(xticks), 1)
    group_w = plot_w / groups
    bar_w = max(2.0, 0.8 * group_w / max(len(series), 1))

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{cfg["width"]}" '
        f'height="{cfg["height"]}" font-family="Helvetica, Arial, sans-serif">'
    )
    parts.append(
        f'<rect width="{cfg["width"]}" height="{cfg["height"]}" fill="white"/>'
    )
    title = f"{title_prefix}{panel.title}"
    parts.append(
        f'<text x="{cfg["width"] / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_escape(title)}</text>'
    )
    # Y axis: 5 gridlines.
    for i in range(5):
        frac = i / 4
        y = cfg["margin_top"] + plot_h * (1 - frac)
        value = y_max * frac
        parts.append(
            f'<line x1="{cfg["margin_left"]}" y1="{y:.1f}" '
            f'x2="{cfg["width"] - cfg["margin_right"]}" y2="{y:.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{cfg["margin_left"] - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end" font-size="11">{value:g}</text>'
        )
    parts.append(
        f'<text x="16" y="{cfg["margin_top"] + plot_h / 2:.1f}" font-size="11" '
        f'text-anchor="middle" transform="rotate(-90 16 '
        f'{cfg["margin_top"] + plot_h / 2:.1f})">{_escape(panel.ylabel)}</text>'
    )
    # Bars.
    for gi, xtick in enumerate(xticks):
        group_x = cfg["margin_left"] + gi * group_w
        total_bar_w = bar_w * len(series)
        start = group_x + (group_w - total_bar_w) / 2
        for si, serie in enumerate(series):
            value = serie.values[gi] if gi < len(serie.values) else None
            if value is None:
                continue
            h = plot_h * min(value, y_max) / y_max
            x = start + si * bar_w
            y = cfg["margin_top"] + plot_h - h
            color = PALETTE[si % len(PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}">'
                f"<title>{_escape(serie.label)} @ {_escape(xtick)}: "
                f"{value:.4f}</title></rect>"
            )
        parts.append(
            f'<text x="{group_x + group_w / 2:.1f}" '
            f'y="{cfg["margin_top"] + plot_h + 16}" text-anchor="middle" '
            f'font-size="11">{_escape(xtick)}</text>'
        )
    # X axis label and baseline.
    parts.append(
        f'<line x1="{cfg["margin_left"]}" y1="{cfg["margin_top"] + plot_h}" '
        f'x2="{cfg["width"] - cfg["margin_right"]}" '
        f'y2="{cfg["margin_top"] + plot_h}" stroke="#333" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{cfg["margin_left"] + plot_w / 2:.1f}" '
        f'y="{cfg["height"] - 30}" text-anchor="middle" font-size="12">'
        f"{_escape(panel.xlabel)}</text>"
    )
    # Legend (bottom row).
    legend_x = cfg["margin_left"]
    legend_y = cfg["height"] - 12
    for si, serie in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" font-size="11">'
            f"{_escape(serie.label)}</text>"
        )
        legend_x += 24 + 7 * len(serie.label)
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def render_experiment(experiment: Experiment, out_dir: Path) -> List[Path]:
    """Write one SVG per panel; returns the created paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for panel in experiment.panels:
        name = f"{experiment.experiment_id}_{_slug(panel.title)}.svg"
        path = out_dir / name
        path.write_text(render_panel_svg(panel))
        written.append(path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Draw SVG charts from benchmarks/results/*.json."
    )
    parser.add_argument("results_dir")
    parser.add_argument("-o", "--output", default="figures")
    args = parser.parse_args(argv)
    results_dir = Path(args.results_dir)
    files = sorted(results_dir.glob("*.json"))
    if not files:
        print(f"no result JSON files in {results_dir}", file=sys.stderr)
        return 2
    out_dir = Path(args.output)
    total = 0
    for path in files:
        experiment = Experiment.from_dict(json.loads(path.read_text()))
        total += len(render_experiment(experiment, out_dir))
    print(f"wrote {total} SVG charts to {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
