"""The emulated testbed: our stand-in for the paper's EC2 deployment.

The paper evaluates FastPR on 25 EC2 instances running HDFS.  Offline,
we substitute a local multi-threaded deployment: every node is an
:class:`~repro.runtime.agent.Agent` with an on-disk chunk store and
emulated disk/NIC bandwidths; the coordinator drives repair rounds over
an in-process network.  Real chunk bytes are encoded, transferred
packet by packet, decoded with GF(2^8) arithmetic, and verified after
repair — the full data path of the prototype, at scaled-down chunk
sizes and bandwidths (see DESIGN.md, substitutions).

Fault injection: pass a :class:`~repro.runtime.faults.FaultPlan` (or
call :meth:`EmulatedTestbed.crash_node`) to kill nodes mid-repair,
drop/corrupt/duplicate packets, or degrade NICs — the coordinator's
supervised state machine then retries and replans until every chunk is
repaired or provably unrepairable.
"""

from __future__ import annotations

import hashlib
import random
import shutil
import tempfile
import threading
from contextlib import nullcontext
from pathlib import Path
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..cluster.topology import RackTopology
from ..core.plan import RepairPlan
from ..core.scheduling import HelperBudget
from ..ec.codec import ErasureCodec
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .agent import Agent, AgentError
from .config import RuntimeConfig
from .coordinator import COORDINATOR_ID, Coordinator, RuntimeResult
from .datanode import ChunkStore
from .faults import CoordinatorCrashFault, FaultInjector, FaultPlan
from .journal import RepairJournal
from .multicoord import MultiCoordinator, MultiRepairResult
from .throttle import RateLimiter
from .transport import Network


@dataclass(frozen=True)
class ChunkMismatch:
    """One chunk that failed post-repair verification."""

    stripe_id: int
    chunk_index: int
    node_id: NodeId
    #: ``"missing"`` (destination has no chunk) or ``"mismatch"``
    #: (bytes differ from the load-time original)
    reason: str


class VerificationError(AssertionError):
    """Raised when repaired chunks' bytes do not match the originals.

    Carries *every* failing chunk in :attr:`mismatches` (not just the
    first), so callers — notably ``fastpr repair`` — can log the full
    set of mismatching chunk ids and exit non-zero.
    """

    def __init__(self, message: str, mismatches: Sequence[ChunkMismatch] = ()):
        super().__init__(message)
        self.mismatches: List[ChunkMismatch] = list(mismatches)


def mismatch_error(mismatches: Sequence[ChunkMismatch]) -> VerificationError:
    """Build a :class:`VerificationError` naming every failing chunk."""
    ids = "; ".join(
        f"stripe {m.stripe_id} chunk {m.chunk_index} at node {m.node_id} "
        f"({m.reason})"
        for m in mismatches
    )
    return VerificationError(
        f"{len(mismatches)} chunk(s) failed post-repair verification: {ids}",
        mismatches,
    )


def iter_encoded_stripes(
    cluster: StorageCluster, codec: ErasureCodec, seed: Optional[int] = None
):
    """Yield ``(stripe, coded_chunks)`` for every stripe, deterministically.

    One sequential RNG stream (seeded by ``seed``) generates the data
    chunks of every stripe in stripe order, so *any* consumer of the
    same ``(cluster, codec, seed)`` triple sees byte-identical chunks —
    the testbed loads them all into local stores, while each TCP agent
    process walks the same stream and keeps only its own node's chunks
    (see :func:`repro.net.launch.load_node_data`).
    """
    rng = random.Random(seed)
    chunk_size = cluster.chunk_size
    stripes = list(cluster.stripes())
    # Encode in windows through ``encode_batch`` (one wide GF matmul per
    # window).  The RNG stream is untouched: data chunks are still drawn
    # sequentially in stripe order, so the bytes are identical to the
    # one-stripe-at-a-time path.
    window = 16
    for start in range(0, len(stripes), window):
        batch = stripes[start : start + window]
        data = [
            [
                rng.getrandbits(8 * chunk_size).to_bytes(chunk_size, "little")
                for _ in range(stripe.k)
            ]
            for stripe in batch
        ]
        for stripe, coded in zip(batch, codec.encode_batch(data)):
            yield stripe, coded


class EmulatedTestbed:
    """A local cluster of agents with bandwidth emulation.

    Args:
        cluster: metadata (placements, bandwidths, chunk size).  The
            cluster's ``disk_bandwidth``/``network_bandwidth`` become
            the emulated rates; the chunk size is used verbatim, so
            scale it down (e.g. 1 MiB) for fast runs.
        codec: erasure codec matching the cluster's stripes.
        packet_size: transfer granularity (the paper's Experiment B.1
            knob); defaults to chunk_size / 16.
        workdir: directory for chunk files; a temp dir by default.
        pipeline_depth: reader->sender queue depth inside agents; 0
            disables multi-threaded pipelining.
        config: runtime timeouts/retry policy (defaults are
            production-like; tests pass tighter ones).
        faults: declarative fault plan injected into the network.
            Coordinator-crash faults implicitly enable journaling.
        journal_path: write-ahead journal file for crash-recoverable
            repairs; defaults to ``workdir/"repair.journal"`` whenever
            the fault plan contains coordinator crashes, else no
            journaling.
        metrics: shared :class:`~repro.obs.MetricsRegistry` for the
            whole run (coordinator, agents, transport, journal); a
            fresh registry is created when omitted and is always
            available as :attr:`metrics`.
        tracer: shared :class:`~repro.obs.Tracer`; a fresh enabled
            wall-clock tracer is created when omitted (span volume is
            bounded by the run's action count) and is available as
            :attr:`tracer`.
        network: alternative transport backend (e.g. a loopback-wired
            :class:`repro.net.TcpNetwork`); the testbed attaches every
            node to it and, when a fault plan is given, installs its
            injector on it.  Defaults to a fresh in-memory
            :class:`~repro.runtime.transport.Network`.
        topology: optional rack/machine failure domains.  A fault
            plan's ``domain_crashes`` are resolved against it (one
            injection then crashes a whole rack of agents, plus any
            co-located shard coordinator when :meth:`execute_sharded`
            is driving the run).
    """

    def __init__(
        self,
        cluster: StorageCluster,
        codec: ErasureCodec,
        packet_size: Optional[int] = None,
        workdir: Optional[Path] = None,
        pipeline_depth: int = 2,
        config: Optional[RuntimeConfig] = None,
        faults: Optional[FaultPlan] = None,
        journal_path: Optional[Path] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        network: Optional[Network] = None,
        topology: Optional[RackTopology] = None,
        arbiter=None,
    ):
        self.cluster = cluster
        self.codec = codec
        self.packet_size = packet_size or max(cluster.chunk_size // 16, 4096)
        self._own_workdir = workdir is None
        self.workdir = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="fastpr-"))
        self.config = config or RuntimeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.topology = topology
        self.faults: Optional[FaultInjector] = None
        self._crash_faults: List[CoordinatorCrashFault] = []
        if faults is not None:
            if topology is not None:
                faults = faults.resolve_domains(topology)
            elif faults.domain_crashes:
                raise ValueError(
                    "fault plan has domain_crashes but the testbed was "
                    "given no topology to resolve them against"
                )
            self.faults = FaultInjector(
                faults,
                on_crash=self._on_node_crash,
                on_kill_coordinator=self._on_kill_coordinator,
            )
            self._crash_faults = list(faults.coordinator_crashes)
        if network is None:
            network = Network(
                faults=self.faults,
                metrics=self.metrics,
                inbox_capacity=self.config.inbox_capacity,
            )
        elif self.faults is not None:
            network.faults = self.faults
        self.network = network
        #: optional :class:`repro.gateway.TrafficArbiter` — installed
        #: on the network so repair traffic cannot starve client GETs
        self.arbiter = arbiter
        if arbiter is not None:
            network.arbiter = arbiter
        #: set at shutdown; interrupts every throttled sleep in flight
        self._stop = threading.Event()
        self.stores: Dict[NodeId, ChunkStore] = {}
        self.agents: Dict[NodeId, Agent] = {}
        self._checksums: Dict[Tuple[int, int], str] = {}
        self.pipeline_depth = pipeline_depth
        self._build_nodes()
        self.journal_path: Optional[Path] = (
            Path(journal_path) if journal_path else None
        )
        if self.journal_path is None and self._crash_faults:
            self.journal_path = self.workdir / "repair.journal"
        journal = (
            RepairJournal(
                self.journal_path,
                fsync=self.config.journal_fsync,
                metrics=self.metrics,
            )
            if self.journal_path is not None
            else None
        )
        self.coordinator = Coordinator(
            self.network,
            cluster,
            codec,
            self.packet_size,
            config=self.config,
            journal=journal,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._arm_next_coordinator_crash()
        self.multi: Optional[MultiCoordinator] = None
        self._started = False

    def _build_nodes(self) -> None:
        for node_id, node in sorted(self.cluster.nodes.items()):
            self.network.attach(
                node_id,
                node.network_bandwidth or self.cluster.network_bandwidth,
                stop=self._stop,
            )
            disk = RateLimiter(
                node.disk_bandwidth or self.cluster.disk_bandwidth,
                name=f"disk[{node_id}]",
                stop=self._stop,
                metrics=self.metrics,
                labels={"device": "disk", "node": node_id},
            )
            store = ChunkStore(self.workdir / f"node_{node_id}", node_id, disk)
            self.stores[node_id] = store
            self.agents[node_id] = Agent(
                node_id,
                store,
                self.network,
                coordinator_id=COORDINATOR_ID,
                pipeline_depth=0,  # reset below via set_pipeline_depth
                config=self.config,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.set_pipeline_depth(self.pipeline_depth)

    def set_pipeline_depth(self, depth: int) -> None:
        """Configure multi-threaded packet pipelining on every agent."""
        for agent in self.agents.values():
            agent.pipeline_depth = depth

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._stop.clear()
        heartbeat = self.faults is not None
        for agent in self.agents.values():
            agent.start(heartbeat=heartbeat)
        self._started = True

    def shutdown(self, check_errors: bool = True) -> None:
        """Stop every agent; surfaces recorded agent errors.

        Args:
            check_errors: assert that no surviving agent recorded an
                unreported error (crashed nodes are excused — a dead
                process files no reports).
        """
        self._stop.set()  # interrupt every throttled sleep in flight
        for agent in self.agents.values():
            agent.stop()
        self.coordinator.close()
        if self.multi is not None:
            self.multi.close()
        self._started = False
        errors = {
            node_id: agent.errors
            for node_id, agent in self.agents.items()
            if agent.errors and not agent.crashed
        }
        if self._own_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)
        if check_errors and errors:
            summary = "; ".join(
                f"node {node_id}: {errs[0]!r}" for node_id, errs in errors.items()
            )
            raise AgentError(f"agents recorded unhandled errors: {summary}")

    def __enter__(self) -> "EmulatedTestbed":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        # Don't let the teardown error check shadow an in-flight one.
        self.shutdown(check_errors=exc[0] is None)

    # ------------------------------------------------------------------

    def crash_node(self, node_id: NodeId) -> None:
        """Kill a node right now (manual fault trigger).

        Its endpoint goes dark and its agent stands down; the
        coordinator discovers the death via deadlines + probing.
        """
        if self.faults is None:
            self.faults = FaultInjector(on_crash=self._on_node_crash)
            self.network.faults = self.faults
        self.faults.kill(node_id)

    def _on_node_crash(self, node_id: NodeId) -> None:
        agent = self.agents.get(node_id)
        if agent is not None:
            agent.crash()

    def _on_kill_coordinator(self, shard: int) -> None:
        if self.multi is not None:
            self.multi.kill_shard(shard)

    # -- coordinator crash / recovery hooks ----------------------------

    def _ensure_journal(self) -> RepairJournal:
        """Enable journaling lazily (kill hooks may arm it post-build)."""
        if self.coordinator.journal is None:
            if self.journal_path is None:
                self.journal_path = self.workdir / "repair.journal"
            self.coordinator.journal = RepairJournal(
                self.journal_path,
                fsync=self.config.journal_fsync,
                metrics=self.metrics,
            )
        return self.coordinator.journal

    def _arm_next_coordinator_crash(self) -> None:
        if not self._crash_faults:
            return
        fault = self._crash_faults.pop(0)
        if fault.after_records is not None:
            self._ensure_journal().crash_after_records = fault.after_records
        else:
            self._ensure_journal()
            self.coordinator.crash_after_round = fault.after_round

    def kill_coordinator_after(self, records: int) -> None:
        """Arm a deterministic coordinator death.

        The coordinator raises
        :class:`~repro.runtime.journal.CoordinatorCrash` out of
        :meth:`execute` (or :meth:`resume`) immediately after this
        incarnation's ``records``-th journal record is durably written
        — the exact window a real process death leaves behind: state
        journaled, action not yet taken.
        """
        self._ensure_journal().crash_after_records = records

    def restart_coordinator(self) -> Coordinator:
        """Replace a crashed coordinator with a recovering successor.

        Detaches the dead incarnation's endpoint, replays the journal
        via :meth:`Coordinator.recover`, and installs the successor
        (one epoch up).  Call :meth:`resume` to finish the repair.
        """
        if self.journal_path is None:
            raise RuntimeError("no journal: coordinator cannot be recovered")
        self.coordinator.close()
        try:
            self.network.detach(COORDINATOR_ID)
        except KeyError:
            pass
        self.coordinator = Coordinator.recover(
            self.journal_path,
            self.network,
            self.cluster,
            self.codec,
            config=self.config,
            packet_size=self.packet_size,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._arm_next_coordinator_crash()
        return self.coordinator

    def resume(self) -> RuntimeResult:
        """Finish a recovered repair (see :meth:`Coordinator.resume`)."""
        if not self._started:
            raise RuntimeError("call start() (or use as a context manager) first")
        result = self.coordinator.resume()
        self._raise_agent_errors()
        return result

    def load_random_data(self, seed: Optional[int] = None) -> None:
        """Encode and store every stripe's chunks (unthrottled bulk load).

        Remembers per-chunk checksums so :meth:`verify_plan` can prove
        the repair restored the exact original bytes.
        """
        for stripe, coded in iter_encoded_stripes(
            self.cluster, self.codec, seed
        ):
            for index, node_id in enumerate(stripe.placement):
                self.stores[node_id].put(stripe.stripe_id, coded[index])
                self._checksums[(stripe.stripe_id, index)] = _digest(coded[index])

    def execute(
        self, plan: RepairPlan, packet_size: Optional[int] = None
    ) -> RuntimeResult:
        """Run a repair plan; agents must be started."""
        if not self._started:
            raise RuntimeError("call start() (or use as a context manager) first")
        if self.faults is not None:
            self.faults.start()
        with self._repair_flow():
            result = self.coordinator.execute(plan, packet_size=packet_size)
        self._raise_agent_errors()
        return result

    def _repair_flow(self):
        """Registered arbiter flow spanning one repair execution."""
        if self.arbiter is None:
            return nullcontext()
        return self.arbiter.register("repair")

    def execute_sharded(
        self,
        plan: RepairPlan,
        num_coordinators: int = 2,
        packet_size: Optional[int] = None,
        budget: Optional[HelperBudget] = None,
    ) -> MultiRepairResult:
        """Run a plan under ``num_coordinators`` shard coordinators.

        The default single coordinator's endpoint is handed over to
        shard 0 (same id ``-1``, so agent heartbeats stay addressed);
        each shard journals to ``workdir/shards/shard-<k>.journal`` and
        a crashed shard is adopted by a survivor (see
        :class:`~repro.runtime.multicoord.MultiCoordinator`).  Domain
        crash faults that list co-located ``coordinators`` kill the
        matching shard's coordinator mid-run.
        """
        if not self._started:
            raise RuntimeError("call start() (or use as a context manager) first")
        if self.multi is None:
            # Shard 0 inherits endpoint -1: retire the single
            # coordinator first so the id is free to re-attach.
            self.coordinator.close()
            try:
                self.network.detach(COORDINATOR_ID)
            except KeyError:
                pass
            self.multi = MultiCoordinator(
                self.network,
                self.cluster,
                self.codec,
                self.packet_size,
                journal_dir=self.workdir / "shards",
                num_shards=num_coordinators,
                config=self.config,
                budget=budget,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        elif self.multi.shard_map.num_shards != num_coordinators:
            raise RuntimeError(
                "testbed already built a MultiCoordinator with "
                f"{self.multi.shard_map.num_shards} shards"
            )
        if self.faults is not None:
            self.faults.start()
        with self._repair_flow():
            result = self.multi.execute(plan, packet_size=packet_size)
        self._raise_agent_errors()
        return result

    def verify_plan(
        self, plan: RepairPlan, result: Optional[RuntimeResult] = None
    ) -> None:
        """Check every repaired chunk's bytes at its destination.

        Args:
            plan: the plan as built.
            result: the runtime result of executing it; pass it when
                faults may have replanned actions so verification
                checks the *effective* destinations.

        Raises:
            VerificationError: on any mismatch or missing chunk; every
                failing chunk is collected into the error's
                ``mismatches`` (the scan does not stop at the first).
        """
        if result is not None and result.executed_actions:
            actions = result.executed_actions
        else:
            actions = list(plan.actions())
        mismatches: List[ChunkMismatch] = []
        for action in actions:
            store = self.stores[action.destination]
            if not store.has(action.stripe_id):
                mismatches.append(
                    ChunkMismatch(
                        action.stripe_id,
                        action.chunk_index,
                        action.destination,
                        "missing",
                    )
                )
                continue
            actual = _digest(store.read(action.stripe_id))
            expected = self._checksums[(action.stripe_id, action.chunk_index)]
            if actual != expected:
                mismatches.append(
                    ChunkMismatch(
                        action.stripe_id,
                        action.chunk_index,
                        action.destination,
                        "mismatch",
                    )
                )
        if mismatches:
            raise mismatch_error(mismatches)

    def _raise_agent_errors(self) -> None:
        for agent in self.agents.values():
            if agent.errors and not agent.crashed:
                raise agent.errors[0]


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()
