"""Reconnect backoff jitter (satellite of the multi-coordinator PR).

A rack power event makes every agent of that rack reconnect at once;
un-jittered exponential backoff keeps them synchronized and they
stampede the coordinator's accept queue on every retry wave.  Equal
jitter spreads each wave over ``[b/2, b]``.
"""

import random

from repro.net.launch import parse_peer_spec, sharded_peer_spec
from repro.net.tcp import TcpNetwork, reconnect_delay
from repro.runtime import COORDINATOR_ID


class TestReconnectDelay:
    def test_zero_backoff_is_immediate(self):
        assert reconnect_delay(0.0, random.Random(1)) == 0.0

    def test_equal_jitter_bounds(self):
        rng = random.Random(7)
        for backoff in (0.05, 0.4, 3.2):
            for _ in range(200):
                delay = reconnect_delay(backoff, rng)
                assert backoff / 2 <= delay <= backoff

    def test_spreads_a_reconnect_wave(self):
        """Two agents with different RNGs don't retry in lockstep."""
        a = [reconnect_delay(0.8, random.Random(1)) for _ in range(20)]
        b = [reconnect_delay(0.8, random.Random(2)) for _ in range(20)]
        assert a != b

    def test_deterministic_given_seeded_rng(self):
        assert [
            reconnect_delay(0.8, random.Random(5)) for _ in range(5)
        ] == [reconnect_delay(0.8, random.Random(5)) for _ in range(5)]

    def test_network_exposes_swappable_rng(self):
        network = TcpNetwork()
        assert isinstance(network.reconnect_rng, random.Random)
        network.reconnect_rng = random.Random(3)  # deterministic tests
        network.close()


class TestShardedPeerSpec:
    def test_aliases_every_shard_at_the_driver_address(self):
        peers = {COORDINATOR_ID: ("10.0.0.1", 9000), 0: ("10.0.0.2", 9001)}
        extended = sharded_peer_spec(peers, 3)
        assert extended[-1] == ("10.0.0.1", 9000)
        assert extended[-2] == ("10.0.0.1", 9000)
        assert extended[-3] == ("10.0.0.1", 9000)
        assert extended[0] == ("10.0.0.2", 9001)

    def test_parse_round_trip_with_shard_aliases(self):
        spec = "coordinator=127.0.0.1:9000,coordinator1=127.0.0.1:9000,3=127.0.0.1:9003"
        peers = parse_peer_spec(spec)
        assert peers[-1] == ("127.0.0.1", 9000)
        assert peers[-2] == ("127.0.0.1", 9000)
        assert peers[3] == ("127.0.0.1", 9003)
