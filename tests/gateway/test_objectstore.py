"""ObjectStore over a live in-memory testbed: PUT/GET/degraded reads.

These tests run the real RPC path — gateway endpoint -> agent chunk
handlers -> gateway — on the in-memory transport, with tiny chunks so
every object spans multiple stripes.  The hypothesis property at the
bottom is the ISSUE's satellite: degraded-read bytes equal
healthy-read bytes for *every* single-node erasure in RS(9,6).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import StorageCluster
from repro.ec import make_codec
from repro.gateway import (
    GatewayError,
    GatewayServer,
    ManifestError,
    ObjectClient,
    ObjectStore,
)
from repro.obs import MetricsRegistry
from repro.runtime.testbed import EmulatedTestbed

CHUNK = 1024
NODES = 12
SCHEME = "rs(9,6)"


def build_rig(workdir, seed=5):
    codec = make_codec(SCHEME)
    cluster = StorageCluster.random(
        NODES,
        2,
        codec.n,
        codec.k,
        seed=seed,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    metrics = MetricsRegistry()
    testbed = EmulatedTestbed(cluster, codec, workdir=workdir, metrics=metrics)
    return cluster, codec, testbed, metrics


@pytest.fixture
def rig(tmp_path):
    cluster, codec, testbed, metrics = build_rig(tmp_path)
    with testbed:
        store = ObjectStore(
            cluster,
            codec,
            testbed.network,
            chunk_size=CHUNK,
            metrics=metrics,
        )
        yield cluster, codec, store, metrics
        store.close()


def counter_total(metrics, name):
    for metric in metrics:
        if metric.name == name:
            return int(metric.total())
    return 0


class TestPutGet:
    def test_round_trip_multi_stripe(self, rig):
        cluster, codec, store, metrics = rig
        data = bytes(i % 251 for i in range(2 * codec.k * CHUNK + 513))
        manifest = store.put("media/clip", data)
        assert manifest.size == len(data)
        assert len(manifest.stripes) == 3  # two full stripes + tail
        for ref in manifest.stripes:
            assert len(ref.placement) == codec.n
            assert len(set(ref.placement)) == codec.n
        assert store.get("media/clip") == data
        assert counter_total(metrics, "gateway_puts_total") == 1
        assert counter_total(metrics, "gateway_gets_total") == 1
        assert counter_total(metrics, "gateway_bytes_out_total") == len(data)

    def test_small_object_pads_one_stripe(self, rig):
        _, codec, store, _ = rig
        data = b"tiny"
        manifest = store.put("small", data)
        assert len(manifest.stripes) == 1
        assert store.get("small") == data  # padding trimmed on read

    def test_reput_overwrites(self, rig):
        _, _, store, _ = rig
        store.put("obj", b"first version")
        store.put("obj", b"second, longer version" * 100)
        assert store.get("obj") == b"second, longer version" * 100
        assert store.keys() == ["obj"]

    def test_missing_key_raises(self, rig):
        _, _, store, _ = rig
        with pytest.raises(ManifestError):
            store.get("nope")
        with pytest.raises(ManifestError):
            store.stat("nope")
        with pytest.raises(ManifestError):
            store.delete("nope")

    def test_empty_key_rejected(self, rig):
        _, _, store, _ = rig
        with pytest.raises(GatewayError):
            store.put("", b"data")

    def test_delete_removes_object(self, rig):
        _, codec, store, _ = rig
        store.put("doomed", b"x" * (codec.k * CHUNK))
        acked = store.delete("doomed")
        assert acked == codec.n  # every chunk delete acknowledged
        assert store.keys() == []
        with pytest.raises(ManifestError):
            store.get("doomed")

    def test_stripes_registered_in_cluster(self, rig):
        cluster, _, store, _ = rig
        before = cluster.num_stripes
        manifest = store.put("tracked", b"y" * (2 * CHUNK))
        assert cluster.num_stripes == before + len(manifest.stripes)


class TestDegradedReads:
    def data_victim(self, manifest):
        """A node holding a *data* chunk of the first stripe."""
        return manifest.stripes[0].placement[0]

    def test_stf_node_read_around(self, rig):
        cluster, codec, store, metrics = rig
        data = bytes(range(256)) * (codec.k * CHUNK // 256)
        manifest = store.put("hot", data)
        victim = self.data_victim(manifest)
        cluster.node(victim).mark_soon_to_fail()
        result = store.get_result("hot")
        assert result.data == data
        assert result.degraded
        assert result.degraded_stripes >= 1
        assert counter_total(metrics, "gateway_degraded_reads_total") >= 1

    def test_failed_node_read_around(self, rig):
        cluster, codec, store, _ = rig
        data = b"\xa5" * (codec.k * CHUNK + 17)
        manifest = store.put("cold", data)
        victim = self.data_victim(manifest)
        cluster.node(victim).mark_failed()
        result = store.get_result("cold")
        assert result.data == data
        assert result.degraded

    def test_parity_only_loss_is_not_degraded(self, rig):
        cluster, codec, store, _ = rig
        data = b"p" * (codec.k * CHUNK)
        manifest = store.put("par", data)
        # single stripe: fail a node holding only a parity chunk
        victim = manifest.stripes[0].placement[codec.k]
        cluster.node(victim).mark_soon_to_fail()
        result = store.get_result("par")
        assert result.data == data
        assert not result.degraded

    def test_healthy_read_is_not_degraded(self, rig):
        _, codec, store, _ = rig
        data = b"h" * (codec.k * CHUNK * 2)
        store.put("fine", data)
        assert not store.get_result("fine").degraded


class TestGatewayServerInProcess:
    """Client -> gateway object protocol over the memory transport."""

    def test_client_put_get_stat_delete(self, tmp_path):
        cluster, codec, testbed, metrics = build_rig(tmp_path)
        with testbed:
            server = GatewayServer(
                cluster,
                codec,
                testbed.network,
                chunk_size=CHUNK,
                metrics=metrics,
            )
            client = ObjectClient(testbed.network)
            try:
                data = bytes(i % 97 for i in range(codec.k * CHUNK + 99))
                put = client.put("remote/obj", data)
                assert put.ok and put.size == len(data)
                got = client.get("remote/obj")
                assert bytes(got.payload) == data
                assert not got.degraded
                stat = client.stat("remote/obj")
                assert stat.size == len(data)
                assert stat.scheme == SCHEME
                assert tuple(stat.stripes) == tuple(put.stripes)
                client.delete("remote/obj")
                with pytest.raises(GatewayError):
                    client.get("remote/obj")
            finally:
                client.close()
                server.close()

    def test_degraded_get_flagged_over_the_wire(self, tmp_path):
        cluster, codec, testbed, metrics = build_rig(tmp_path)
        with testbed:
            server = GatewayServer(
                cluster, codec, testbed.network, chunk_size=CHUNK
            )
            client = ObjectClient(testbed.network)
            try:
                data = b"\x42" * (codec.k * CHUNK)
                put = client.put("deg/obj", data)
                manifest = server.stat("deg/obj")
                victim = manifest.stripes[0].placement[0]
                cluster.node(victim).mark_soon_to_fail()
                got = client.get("deg/obj")
                assert bytes(got.payload) == data
                assert got.degraded
            finally:
                client.close()
                server.close()


# ---------------------------------------------------------------------------
# ISSUE satellite: for every single-node erasure in RS(9,6), a degraded
# read returns exactly the bytes a healthy read would.


@pytest.fixture(scope="module")
def prop_rig(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("gateway-prop")
    cluster, codec, testbed, metrics = build_rig(workdir, seed=11)
    with testbed:
        store = ObjectStore(
            cluster,
            codec,
            testbed.network,
            chunk_size=CHUNK,
            metrics=metrics,
        )
        yield cluster, codec, store
        store.close()


@settings(max_examples=8, deadline=None)
@given(data=st.binary(min_size=1, max_size=3 * 6 * CHUNK))
def test_degraded_read_matches_healthy_read_for_every_erasure(
    prop_rig, data
):
    cluster, codec, store = prop_rig
    store.put("prop/object", data)
    manifest = store.stat("prop/object")
    assert store.get("prop/object") == data  # healthy baseline
    victims = sorted({n for ref in manifest.stripes for n in ref.placement})
    for victim in victims:
        cluster.node(victim).mark_soon_to_fail()
        store._suspects.clear()
        try:
            result = store.get_result("prop/object")
        finally:
            cluster.node(victim).mark_healthy()
        assert result.data == data
        # degraded exactly where the victim held a data chunk
        expected = sum(
            1
            for ref in manifest.stripes
            if victim in ref.placement[: manifest.k]
        )
        assert result.degraded_stripes == expected
