"""Tests for the Section III analytical model (Equations 1-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    AnalyticalModel,
    BandwidthProfile,
    PAPER_DEFAULT_PROFILE,
    gbit_per_s,
    mb_per_s,
    mib,
)


class TestUnits:
    def test_mb_per_s(self):
        assert mb_per_s(100) == 100e6

    def test_gbit_per_s(self):
        assert gbit_per_s(1) == pytest.approx(125e6)

    def test_mib(self):
        assert mib(64) == 64 * 1024 * 1024


class TestProfile:
    def test_paper_defaults(self):
        p = PAPER_DEFAULT_PROFILE
        assert p.chunk_size == mib(64)
        assert p.disk_bandwidth == mb_per_s(100)
        assert p.network_bandwidth == pytest.approx(gbit_per_s(1))

    def test_disk_and_network_times(self):
        p = BandwidthProfile(chunk_size=100, disk_bandwidth=50, network_bandwidth=25)
        assert p.disk_time == pytest.approx(2.0)
        assert p.network_time == pytest.approx(4.0)

    def test_with_(self):
        p = PAPER_DEFAULT_PROFILE.with_(disk_bandwidth=1.0)
        assert p.disk_bandwidth == 1.0
        assert p.chunk_size == PAPER_DEFAULT_PROFILE.chunk_size

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthProfile(chunk_size=0)
        with pytest.raises(ValueError):
            BandwidthProfile(disk_bandwidth=-1)


class TestEquations:
    """Hand-computed values at the paper's defaults (RS(9,6), M=100)."""

    model = AnalyticalModel(num_nodes=100, k=6)

    def test_eq4_migration_time(self):
        # t_m = 0.64 + 0.512 + 0.64 s for a 64 MiB chunk.
        c = mib(64)
        expected = c / mb_per_s(100) * 2 + c / gbit_per_s(1)
        assert self.model.migration_time() == pytest.approx(expected)

    def test_eq5_reconstruction_time_scattered(self):
        c = mib(64)
        expected = c / mb_per_s(100) * 2 + 6 * c / gbit_per_s(1)
        assert self.model.reconstruction_time() == pytest.approx(expected)

    def test_scattered_tr_independent_of_groups(self):
        assert self.model.reconstruction_time(groups=1) == pytest.approx(
            self.model.reconstruction_time(groups=16)
        )

    def test_eq6_hot_standby(self):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=3)
        c = mib(64)
        G = 99 // 6
        expected = (
            c / mb_per_s(100)
            + (G * 6 / 3) * c / gbit_per_s(1)
            + (G / 3) * c / mb_per_s(100)
        )
        assert model.reconstruction_time() == pytest.approx(expected)

    def test_hot_standby_tr_grows_with_groups(self):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=3)
        assert model.reconstruction_time(groups=16) > model.reconstruction_time(
            groups=4
        )

    def test_max_groups(self):
        assert self.model.max_groups() == 16
        assert AnalyticalModel(num_nodes=100, k=12).max_groups() == 8

    def test_max_groups_too_small(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=5, k=6).max_groups()

    def test_eq1_total_time_envelope(self):
        U = 1000
        t = self.model.total_time(0, U)
        assert t == pytest.approx(self.model.reactive_time(U))
        t_all_migrate = self.model.total_time(U, U)
        assert t_all_migrate == pytest.approx(self.model.migration_only_time(U))

    def test_eq1_rejects_bad_x(self):
        with pytest.raises(ValueError):
            self.model.total_time(-1, 10)
        with pytest.raises(ValueError):
            self.model.total_time(11, 10)

    def test_eq2_optimum_balances_both_sides(self):
        U = 1000
        x = self.model.optimal_migration_chunks(U)
        t_m = self.model.migration_time()
        t_r = self.model.reconstruction_time()
        G = self.model.max_groups()
        assert x * t_m == pytest.approx((U - x) / G * t_r)
        assert self.model.total_time(x, U) == pytest.approx(
            self.model.predictive_time(U)
        )

    def test_eq3_reactive(self):
        U = 320
        assert self.model.reactive_time(U) == pytest.approx(
            U * self.model.reconstruction_time() / 16
        )

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0, 1))
    def test_optimum_is_global_minimum(self, frac):
        U = 1000.0
        x = frac * U
        assert self.model.total_time(x, U) >= self.model.predictive_time(U) * (
            1 - 1e-9
        )


class TestPaperHeadlines:
    def test_rs_16_12_reduction_33_percent(self):
        model = AnalyticalModel(num_nodes=100, k=12)
        assert model.reduction_over_reactive() == pytest.approx(0.33, abs=0.03)

    def test_hot_standby_h3_reduction_41_percent(self):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=3)
        assert model.reduction_over_reactive() == pytest.approx(0.41, abs=0.03)

    def test_predictive_always_beats_reactive(self):
        for k in (6, 10, 12):
            for M in (20, 50, 100):
                model = AnalyticalModel(num_nodes=M, k=k)
                assert model.predictive_time_per_chunk() < (
                    model.reactive_time_per_chunk()
                )

    def test_per_chunk_views_independent_of_u(self):
        model = AnalyticalModel(num_nodes=100, k=6)
        assert model.predictive_time(500) / 500 == pytest.approx(
            model.predictive_time_per_chunk()
        )


class TestLrcExtension:
    def test_k_prime_reduces_times(self):
        rs = AnalyticalModel(num_nodes=100, k=12)
        lrc = AnalyticalModel(num_nodes=100, k=12, k_prime=6)
        assert lrc.reconstruction_time() < rs.reconstruction_time()
        assert lrc.max_groups() > rs.max_groups()
        assert lrc.predictive_time_per_chunk() < rs.predictive_time_per_chunk()

    def test_repair_fanin(self):
        assert AnalyticalModel(num_nodes=100, k=12, k_prime=4).repair_fanin == 4
        assert AnalyticalModel(num_nodes=100, k=12).repair_fanin == 12


class TestValidation:
    def test_bad_nodes(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=1, k=1)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=10, k=0)

    def test_bad_hot_standby(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=10, k=2, hot_standby=0)

    def test_bad_k_prime(self):
        with pytest.raises(ValueError):
            AnalyticalModel(num_nodes=10, k=2, k_prime=0)
