"""Storage-node metadata.

Nodes may be regular storage nodes, dedicated hot-standby nodes
(Section II-C of the paper), or marked soon-to-fail / failed by the
failure-prediction substrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .chunk import NodeId


class NodeState(enum.Enum):
    """Lifecycle of a storage node."""

    HEALTHY = "healthy"
    #: flagged by the failure predictor; still readable (paper assumption 3)
    SOON_TO_FAIL = "soon_to_fail"
    FAILED = "failed"


class NodeRole(enum.Enum):
    """Whether the node serves stripes or waits as a hot standby."""

    STORAGE = "storage"
    HOT_STANDBY = "hot_standby"


@dataclass
class Node:
    """A storage node with its state and bandwidth endowment.

    Attributes:
        node_id: cluster-unique id.
        role: storage vs hot-standby.
        state: healthy / soon-to-fail / failed.
        disk_bandwidth: sequential disk bandwidth in bytes/s (the
            paper's ``bd``); ``None`` inherits the cluster default.
        network_bandwidth: NIC bandwidth in bytes/s (the paper's
            ``bn``); ``None`` inherits the cluster default.
    """

    node_id: NodeId
    role: NodeRole = NodeRole.STORAGE
    state: NodeState = NodeState.HEALTHY
    disk_bandwidth: float = None  # type: ignore[assignment]
    network_bandwidth: float = None  # type: ignore[assignment]
    tags: dict = field(default_factory=dict)

    @property
    def is_healthy(self) -> bool:
        return self.state is NodeState.HEALTHY

    @property
    def is_stf(self) -> bool:
        return self.state is NodeState.SOON_TO_FAIL

    @property
    def is_failed(self) -> bool:
        return self.state is NodeState.FAILED

    @property
    def is_standby(self) -> bool:
        return self.role is NodeRole.HOT_STANDBY

    def mark_soon_to_fail(self) -> None:
        """Flag the node as STF (predictor hit). Idempotent."""
        if self.state is NodeState.FAILED:
            raise ValueError(f"node {self.node_id} already failed")
        self.state = NodeState.SOON_TO_FAIL

    def mark_failed(self) -> None:
        """Mark the node as actually failed."""
        self.state = NodeState.FAILED

    def mark_healthy(self) -> None:
        """Clear an STF flag (false alarm cleared after repair)."""
        if self.state is NodeState.FAILED:
            raise ValueError(f"node {self.node_id} already failed")
        self.state = NodeState.HEALTHY
