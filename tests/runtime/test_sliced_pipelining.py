"""Sliced chained reconstruction: slice protocol, chain order, fallback.

The sliced pipelining path (DESIGN.md §14) carves each chunk into
``pipeline_slices`` slices carried as :class:`SlicePacket` frames
through a bandwidth-ordered helper chain.  These tests pin the three
load-bearing properties end to end:

* **bit-exactness** — chained slice-granular partial sums produce the
  same bytes as one-shot decode, under reordering, duplication and
  in-flight corruption of individual slices;
* **chain scheduling** — the coordinator orders chains slowest link
  first, from the same per-node scales the injector and cost model
  use (``FaultPlan.link_bandwidths``), folded with runtime-observed
  degradation;
* **fallback** — a chain helper killed mid-stream degrades the action
  to star fan-in and the repaired chunk is still byte-identical.
"""

import dataclasses
import threading
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import RepairSession, apply_pipelining
from repro.cluster import StorageCluster
from repro.core.planner import (
    FastPRPlanner,
    ReconstructionOnlyPlanner,
)
from repro.core.scheduling import order_chain
from repro.ec import make_codec
from repro.ec.galois import gf_addmul_bytes, gf_mul_bytes
from repro.runtime import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    RuntimeConfig,
    Scrubber,
    SlowNicFault,
)
from repro.runtime.agent import _Assembly, slice_granularity
from repro.runtime.coordinator import Coordinator
from repro.runtime.datanode import ChunkStore
from repro.runtime.messages import ReceiveCommand, SlicePacket
from repro.runtime.testbed import EmulatedTestbed
from repro.runtime.throttle import RateLimiter
from repro.runtime.transport import Network
from repro.sim.cost_model import evaluate_plan

CHUNK = 16 * 1024
SLICES = 4

#: tight timings so chain-kill detection happens in test time
FAST = RuntimeConfig(
    ack_timeout=1.5,
    join_timeout=5.0,
    deadline_margin=4.0,
    min_deadline=0.8,
    max_retries=3,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=0.2,
    probe_timeout=0.4,
    heartbeat_interval=0.1,
    poll_interval=0.05,
)
#: the same timings with slice-granular chained streaming enabled
SLICED = dataclasses.replace(FAST, pipeline_slices=SLICES)

relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_cluster(num_stripes=8, seed=21):
    cluster = StorageCluster.random(
        num_nodes=10,
        num_stripes=num_stripes,
        n=5,
        k=3,
        num_hot_standby=2,
        seed=seed,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    cluster.node(0).mark_soon_to_fail()
    return cluster


def make_testbed(tmp_path, faults=None, config=SLICED, **kw):
    cluster = make_cluster(**kw)
    testbed = EmulatedTestbed(
        cluster,
        make_codec("rs(5,3)"),
        packet_size=CHUNK // 4,
        workdir=tmp_path / "bed",
        config=config,
        faults=faults,
    )
    testbed.start()
    testbed.load_random_data(seed=1)
    return cluster, testbed


class TestSliceGranularity:
    def test_zero_slices_keeps_packet_size(self):
        assert slice_granularity(1 << 20, 4096, 0) == 4096

    def test_even_split(self):
        assert slice_granularity(1 << 20, 4096, 4) == (1 << 20) // 4

    def test_rounds_up_so_last_slice_runs_short(self):
        # 100 bytes in 3 slices -> 34-byte granularity, slices of
        # 34 + 34 + 32; ceil keeps the count at num_slices.
        gran = slice_granularity(100, 4096, 3)
        assert gran == 34
        assert (100 + gran - 1) // gran == 3

    def test_more_slices_than_bytes_clamps_to_one_byte(self):
        assert slice_granularity(2, 4096, 64) == 1


class TestOrderChain:
    def test_slowest_link_first(self):
        chain = order_chain([5, 3, 7], {3: 0.25, 7: 0.5, 5: 1.0})
        assert chain == [3, 7, 5]

    def test_uniform_weights_keep_original_order(self):
        helpers = [9, 2, 6, 4]
        assert order_chain(helpers, {n: 1.0 for n in helpers}) == helpers
        assert order_chain(helpers, None) == helpers
        assert order_chain(helpers, {}) == helpers

    def test_missing_nodes_sort_to_the_tail(self):
        # Unweighted nodes run at full speed: never ahead of a
        # degraded one, and stable among themselves.
        assert order_chain([1, 2, 3], {2: 0.9}) == [2, 1, 3]

    def test_input_not_mutated(self):
        helpers = [4, 1]
        order_chain(helpers, {4: 0.1})
        assert helpers == [4, 1]


class TestLinkBandwidths:
    def test_multiplicative_compose_per_node(self):
        plan = FaultPlan(
            slow_nics=[
                SlowNicFault(node=3, factor=0.5),
                SlowNicFault(node=3, factor=0.5, at_time=1.0),
                SlowNicFault(node=7, factor=0.25),
            ]
        )
        # Steady state folds every fault, exactly as the injector
        # multiplies the limiter rate twice.
        assert plan.link_bandwidths() == {3: 0.25, 7: 0.25}

    def test_at_time_filters_undue_faults(self):
        plan = FaultPlan(
            slow_nics=[
                SlowNicFault(node=3, factor=0.5),
                SlowNicFault(node=3, factor=0.5, at_time=10.0),
            ]
        )
        assert plan.link_bandwidths(at_time=0.0) == {3: 0.5}
        assert plan.link_bandwidths(at_time=10.0) == {3: 0.25}

    def test_clean_nodes_are_omitted(self):
        assert FaultPlan().link_bandwidths() == {}


class TestChainWeights:
    """The coordinator folds fault-plan and observed scales."""

    def _coordinator(self, faults=None):
        cluster = make_cluster()
        net = Network(faults=faults)
        return Coordinator(
            net, cluster, make_codec("rs(5,3)"), packet_size=CHUNK // 4,
            config=SLICED,
        )

    def test_fault_plan_scales_surface(self):
        plan = FaultPlan(slow_nics=[SlowNicFault(node=3, factor=0.25)])
        coord = self._coordinator(faults=FaultInjector(plan))
        assert coord._chain_weights() == {3: 0.25}

    def test_observed_degradation_composes(self):
        plan = FaultPlan(slow_nics=[SlowNicFault(node=3, factor=0.5)])
        coord = self._coordinator(faults=FaultInjector(plan))
        coord._observed_scales[3] = 0.5   # probe-surviving stall
        coord._observed_scales[7] = 0.5
        weights = coord._chain_weights()
        assert weights == {3: 0.25, 7: 0.5}
        # ... and those weights place the degraded nodes at the head.
        assert order_chain([5, 3, 7], weights) == [3, 7, 5]

    def test_no_faults_no_observations_means_no_reorder(self):
        coord = self._coordinator(faults=None)
        assert coord._chain_weights() == {}


def _sliced_command(sources, chunk_size=256, num_slices=SLICES):
    return ReceiveCommand(
        stripe_id=0,
        chunk_index=0,
        chunk_size=chunk_size,
        packet_size=64,
        sources=sources,
        num_slices=num_slices,
    )


def _slice_packets(command, chunks):
    """Build the full SlicePacket stream for an assembly."""
    gran = slice_granularity(
        command.chunk_size, command.packet_size, command.num_slices
    )
    packets = []
    for source, chunk in chunks.items():
        for offset in range(0, command.chunk_size, gran):
            payload = bytes(chunk[offset : offset + gran])
            packets.append(
                SlicePacket(
                    stripe_id=command.stripe_id,
                    chunk_index=command.chunk_index,
                    source=source,
                    offset=offset,
                    payload=payload,
                    checksum=zlib.crc32(payload),
                    slice_index=offset // gran,
                    num_slices=command.num_slices,
                )
            )
    return packets


def _run_assembly(tmp_path, command, packets, on_slice=None):
    """Drive one _Assembly to completion; return the promoted bytes."""
    store = ChunkStore(tmp_path / "dest", 1, RateLimiter(1e9))
    assembly = _Assembly(command, store, on_slice=on_slice)
    thread = threading.Thread(target=assembly.run, daemon=True)
    thread.start()
    for packet in packets:
        assembly.packets.put(packet)
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "assembly never completed"
    store.promote(command.stripe_id)
    return store.read_packet(command.stripe_id, 0, command.chunk_size)


def _expected(command, chunks):
    out = np.zeros(command.chunk_size, dtype=np.uint8)
    for source, coeff in command.sources.items():
        gf_addmul_bytes(out, coeff, np.frombuffer(chunks[source],
                                                  dtype=np.uint8))
    return out.tobytes()


class TestSliceAssembly:
    """Unit-level bit-exactness of slice-granular assembly."""

    def _chunks(self, sources, size, seed=0):
        rng = np.random.default_rng(seed)
        return {
            s: rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            for s in sources
        }

    def test_in_order_slices_decode_bit_exact(self, tmp_path):
        command = _sliced_command({2: 7, 3: 91, 4: 200})
        chunks = self._chunks(command.sources, command.chunk_size)
        got = _run_assembly(tmp_path, command,
                            _slice_packets(command, chunks))
        assert got == _expected(command, chunks)

    def test_reordered_slices_decode_bit_exact(self, tmp_path):
        command = _sliced_command({2: 7, 3: 91})
        chunks = self._chunks(command.sources, command.chunk_size, seed=1)
        packets = _slice_packets(command, chunks)
        packets.reverse()  # fully out of order across sources and slices
        got = _run_assembly(tmp_path, command, packets)
        assert got == _expected(command, chunks)

    def test_duplicate_slices_apply_once(self, tmp_path):
        # A duplicated slice must not double-apply its coefficient
        # (GF addmul twice would cancel the contribution).
        command = _sliced_command({2: 7, 3: 91})
        chunks = self._chunks(command.sources, command.chunk_size, seed=2)
        packets = _slice_packets(command, chunks)
        packets = packets + packets[:3]
        got = _run_assembly(tmp_path, command, packets)
        assert got == _expected(command, chunks)

    def test_corrupt_slice_dropped_retransmit_lands(self, tmp_path):
        command = _sliced_command({2: 7, 3: 91})
        chunks = self._chunks(command.sources, command.chunk_size, seed=3)
        packets = _slice_packets(command, chunks)
        good = packets[0]
        bad = dataclasses.replace(
            good,
            payload=bytes(len(good.payload)),   # zeroed in flight
            # checksum still matches the original payload
        )
        got = _run_assembly(tmp_path, command, [bad] + packets)
        assert got == _expected(command, chunks)

    def test_on_slice_fires_once_per_completed_slice(self, tmp_path):
        command = _sliced_command({2: 7, 3: 91})
        chunks = self._chunks(command.sources, command.chunk_size, seed=4)
        seen = []
        _run_assembly(
            tmp_path, command, _slice_packets(command, chunks),
            on_slice=lambda index, elapsed: seen.append(index),
        )
        assert sorted(seen) == list(range(SLICES))


class TestChainedSliceMath:
    """The relay-chain arithmetic equals one-shot decode, by property."""

    @given(
        params=st.sampled_from([(5, 3), (6, 4), (9, 6)]),
        seed=st.integers(0, 2**32 - 1),
        chunk_size=st.integers(17, 257),
        num_slices=st.integers(1, 9),
    )
    @relaxed
    def test_chained_partial_sums_match_one_shot_decode(
        self, params, seed, chunk_size, num_slices
    ):
        n, k = params
        rng = np.random.default_rng(seed)
        data = [
            rng.integers(0, 256, size=chunk_size, dtype=np.uint8).tobytes()
            for _ in range(k)
        ]
        codec = make_codec(f"rs({n},{k})")
        coded = codec.encode(data)
        lost = int(rng.integers(0, n))
        helpers = [int(i) for i in rng.permutation(n) if i != lost][:k]
        coeffs = codec.recovery_coefficients(lost, helpers)

        # Emulate the chain slice by slice, exactly like _Relay.run():
        # head scales its own slice; every later hop scales its own and
        # XORs in the upstream partial sum.
        gran = slice_granularity(chunk_size, chunk_size, num_slices)
        chained = np.zeros(chunk_size, dtype=np.uint8)
        for offset in range(0, chunk_size, gran):
            upstream = None
            for helper in helpers:
                own = np.frombuffer(
                    coded[helper][offset : offset + gran], dtype=np.uint8
                )
                out = gf_mul_bytes(coeffs[helper], own)
                if upstream is not None:
                    np.bitwise_xor(out, upstream, out=out)
                upstream = out
            chained[offset : offset + len(upstream)] = upstream

        # One-shot accumulation over whole chunks (the star path) ...
        one_shot = np.zeros(chunk_size, dtype=np.uint8)
        for helper in helpers:
            gf_addmul_bytes(
                one_shot, coeffs[helper],
                np.frombuffer(coded[helper], dtype=np.uint8),
            )
        assert chained.tobytes() == one_shot.tobytes()
        # ... and both equal the chunk that was lost.
        assert chained.tobytes() == coded[lost]


class TestSlicedChainedRepair:
    """Whole-testbed runs with slice streaming on."""

    def test_sliced_chain_repairs_byte_identical(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        try:
            plan = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(
                cluster, 0
            )
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert not result.degraded
            # Every chained chunk streamed back one report per slice.
            assert result.slices_completed == SLICES * plan.total_chunks
        finally:
            testbed.shutdown()

    def test_star_plan_reports_no_slices(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        try:
            plan = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert result.slices_completed == 0
        finally:
            testbed.shutdown()

    def test_duplicated_slices_are_harmless(self, tmp_path):
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(links=[LinkFault(duplicate=0.5)], seed=3),
            num_stripes=6,
        )
        try:
            plan = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(
                cluster, 0
            )
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert testbed.faults.stats["duplicated"] >= 1
            assert not result.degraded  # dedupe, not retries
        finally:
            testbed.shutdown()

    def test_chain_helper_killed_mid_stream_falls_back_to_star(
        self, tmp_path
    ):
        # Pick a chain helper from an identical (deterministic) plan and
        # kill it after the first slices went out.
        preview = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(
            make_cluster(), 0
        )
        helper = next(iter(preview.actions())).sources[0]
        assert helper != 0
        crash = CrashFault(node=helper, after_sent_bytes=CHUNK // 2)
        cluster, testbed = make_testbed(
            tmp_path, faults=FaultPlan(crashes=[crash])
        )
        try:
            plan = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(
                cluster, 0
            )
            result = testbed.execute(plan)
            # Byte-identical despite the dead chain link.
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert result.dead_nodes == [helper]
            assert result.replans >= 1
            # Healed actions degraded to star fan-in without the dead
            # helper; untouched ones stayed chained.
            healed = [
                a for a in result.executed_actions
                if helper not in a.sources and not a.pipelined
            ]
            assert healed
            # No executed action still reads from the dead helper.
            assert all(
                helper not in a.sources for a in result.executed_actions
            )
        finally:
            testbed.shutdown()


class TestApplyPipelining:
    def test_chain_marks_reconstructions_only(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=1).plan(cluster, 0)
        chained = apply_pipelining(plan, "chain")
        assert all(a.pipelined for r in chained.rounds
                   for a in r.reconstructions)
        for before, after in zip(plan.rounds, chained.rounds):
            assert after.migrations == list(before.migrations)
            assert after.index == before.index
        # The input plan is untouched.
        assert all(not a.pipelined for r in plan.rounds
                   for a in r.reconstructions)

    def test_off_clears_the_flag(self):
        cluster = make_cluster()
        plan = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(
            cluster, 0
        )
        cleared = apply_pipelining(plan, "off")
        assert all(not a.pipelined for a in cleared.actions())

    def test_unknown_mode_rejected(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=1).plan(cluster, 0)
        with pytest.raises(ValueError, match="pipelining"):
            apply_pipelining(plan, "mesh")


class TestRepairSessionValidation:
    """Invalid builder combos fail at construction, before any I/O."""

    def _args(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=1).plan(cluster, 0)
        return cluster, make_codec("rs(5,3)"), plan

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"transport": "carrier-pigeon"}, "transport must be"),
            ({"pipelining": "mesh"}, "pipelining must be"),
            ({"slices": -1}, "non-negative"),
            ({"slices": 4}, "requires pipelining='chain'"),
            ({"coordinators": 0}, "coordinators must be"),
            ({"transport": "shm", "coordinators": 2, "workdir": "w"},
             "single coordinator"),
            ({"transport": "tcp", "workdir": "w"}, "needs peers"),
            ({"transport": "tcp", "peers": {1: ("h", 1)}}, "needs workdir"),
            ({"peers": {1: ("h", 1)}}, "only applies to transport='tcp'"),
            ({"resume": True}, "resume applies to tcp/shm"),
            ({"transport": "tcp", "peers": {1: ("h", 1)}, "workdir": "w",
              "resume": True}, "needs journal_path"),
            ({"transport": "tcp", "peers": {1: ("h", 1)}, "workdir": "w",
              "resume": True, "journal_path": "j", "coordinators": 2},
             "single-coordinator"),
            ({"transport": "tcp", "peers": {1: ("h", 1)}, "workdir": "w",
              "scrub": True}, "scrub applies to transport='memory'"),
        ],
    )
    def test_bad_combo_raises(self, kwargs, message):
        cluster, codec, plan = self._args()
        with pytest.raises(ValueError, match=message):
            RepairSession(cluster, codec, plan, **kwargs)

    def test_slices_thread_into_runtime_config(self):
        cluster, codec, plan = self._args()
        session = RepairSession(
            cluster, codec, plan, pipelining="chain", slices=8
        )
        assert session.config.pipeline_slices == 8
        # ... but an off session leaves the config alone.
        off = RepairSession(cluster, codec, plan)
        assert off.config.pipeline_slices == 0


class TestCostModelLinkScales:
    """Chained rounds are priced off the slowest involved link."""

    def _plans(self):
        cluster = StorageCluster.random(
            20, 60, 9, 6, seed=95, disk_bandwidth=100.0,
            network_bandwidth=250.0, chunk_size=1000,
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        star = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        pipe = ReconstructionOnlyPlanner(seed=0, pipelined=True).plan(
            cluster, stf
        )
        return cluster, star, pipe

    def test_slow_link_stretches_chained_round(self):
        cluster, star, pipe = self._plans()
        slow = pipe.rounds[0].reconstructions[0].sources[0]
        base = evaluate_plan(cluster, pipe)
        scaled = evaluate_plan(cluster, pipe, link_scales={slow: 0.5})
        # Star pricing: 2*c/bd + 6*c/bn = 44; chained: 2*c/bd + c/bn
        # = 24; the halved link doubles the chained network term.
        assert base.round_times[0] == pytest.approx(24.0)
        assert scaled.round_times[0] == pytest.approx(28.0)

    def test_star_rounds_ignore_link_scales(self):
        cluster, star, _ = self._plans()
        slow = star.rounds[0].reconstructions[0].sources[0]
        scaled = evaluate_plan(cluster, star, link_scales={slow: 0.5})
        assert scaled.round_times[0] == pytest.approx(44.0)

    def test_uninvolved_nodes_do_not_change_pricing(self):
        cluster, _, pipe = self._plans()
        involved = set()
        for action in pipe.rounds[0].reconstructions:
            involved.update(action.sources)
            involved.add(action.destination)
        spare = next(
            n for n in cluster.storage_node_ids() if n not in involved
        )
        scaled = evaluate_plan(cluster, pipe, link_scales={spare: 0.01})
        assert scaled.round_times[0] == pytest.approx(24.0)
