"""The acceptance bar of DESIGN.md §10: real processes, real sockets.

A full RS(9,6) predictive repair with the coordinator and every agent
as separate OS processes talking the binary wire protocol over TCP —
repaired chunks byte-identical, journal written, metrics and trace
artifacts produced.  This is the same topology as the README's
multi-process walkthrough, driven through the actual CLI entry points
(``fastpr agent`` / ``fastpr repair --transport tcp``).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.net import allocate_ports, format_peer_spec
from repro.runtime import COORDINATOR_ID, FaultPlan, LinkFault, RuntimeConfig

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

NODES = 12
STRIPES = 4
SEED = 7
STF = 3


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _save_journal_artifact(tmp_path, name):
    """Preserve a failing run's journal for CI upload (see ci.yml)."""
    import shutil

    artifact_dir = os.environ.get("FASTPR_JOURNAL_DIR")
    journal = tmp_path / "repair.journal"
    if not artifact_dir or not journal.exists():
        return
    os.makedirs(artifact_dir, exist_ok=True)
    shutil.copy(journal, os.path.join(artifact_dir, f"{name}.journal"))


def _cli(*args):
    return [sys.executable, "-m", "repro.cli", *args]


@pytest.fixture
def peer_map():
    ports = allocate_ports(NODES + 1)
    peers = {COORDINATOR_ID: ("127.0.0.1", ports[0])}
    for i in range(NODES):
        peers[i] = ("127.0.0.1", ports[i + 1])
    return peers


def _launch(tmp_path, peer_map, extra_agent_args=(), extra_repair_args=()):
    """Spawn every agent process and run the TCP repair against them."""
    snap = tmp_path / "cluster.json"
    work = tmp_path / "work"
    work.mkdir()
    subprocess.run(
        _cli(
            "snapshot", "--nodes", str(NODES), "--stripes", str(STRIPES),
            "--code", "rs(9,6)", "--hot-standby", "0",
            "--chunk-size", str(1 << 16), "--seed", str(SEED),
            "-o", str(snap),
        ),
        env=_env(), check=True, capture_output=True, timeout=60,
    )
    spec = format_peer_spec(peer_map)
    agents = [
        subprocess.Popen(
            _cli(
                "agent", "--snapshot", str(snap), "--node", str(node_id),
                "--listen", f"{host}:{port}", "--peers", spec,
                "--workdir", str(work), "--seed", str(SEED),
                *extra_agent_args,
            ),
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        for node_id, (host, port) in peer_map.items()
        if node_id != COORDINATOR_ID
    ]
    repair = subprocess.run(
        _cli(
            "repair", "--snapshot", str(snap), "--stf", str(STF),
            "--seed", str(SEED), "--transport", "tcp", "--peers", spec,
            "--workdir", str(work),
            "--journal", str(tmp_path / "repair.journal"),
            "--metrics-out", str(tmp_path / "metrics.json"),
            "--trace-out", str(tmp_path / "trace.json"),
            "-o", str(tmp_path / "summary.json"),
            *extra_repair_args,
        ),
        env=_env(), capture_output=True, text=True, timeout=240,
    )
    return agents, repair


def test_multiprocess_rs96_repair(tmp_path, peer_map):
    agents, repair = _launch(tmp_path, peer_map)
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout

        # The coordinator's Shutdown broadcast must end every agent.
        deadline = time.monotonic() + 30
        for proc in agents:
            remaining = max(0.5, deadline - time.monotonic())
            out, _ = proc.communicate(timeout=remaining)
            assert proc.returncode == 0, out.decode()

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["transport"] == "tcp"
        assert summary["chunks_repaired"] >= 1
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        assert summary["nacks"] == 0

        # Artifacts reconcile: journal exists, trace has spans, metrics
        # saw socket traffic.
        assert (tmp_path / "repair.journal").stat().st_size > 0
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["spans"]
        metrics = json.dumps(
            json.loads((tmp_path / "metrics.json").read_text())
        )
        assert "net_frames_sent_total" in metrics
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_rs96")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


def test_multiprocess_repair_under_packet_corruption(tmp_path, peer_map):
    """CI's net-integration scenario: corrupt frames, retried to clean.

    Every process (agents and coordinator) runs the same fault plan;
    corruption is injected on the sending side, caught by the per-packet
    checksum at the receiver, and healed by coordinator retries — the
    chunks still come out byte-identical.
    """
    plan_file = tmp_path / "faults.json"
    plan_file.write_text(json.dumps(
        FaultPlan(links=[LinkFault(corrupt=0.05)], seed=3).to_dict()
    ))
    config_file = tmp_path / "config.json"
    config_file.write_text(json.dumps(RuntimeConfig(
        ack_timeout=3.0,
        min_deadline=1.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        probe_timeout=0.5,
        heartbeat_interval=0.2,
        poll_interval=0.05,
        journal_fsync="never",
        inventory_timeout=2.0,
    ).to_dict()))
    shared = (
        "--fault-plan", str(plan_file), "--config", str(config_file),
    )
    agents, repair = _launch(
        tmp_path, peer_map,
        extra_agent_args=("--config", str(config_file)),
        extra_repair_args=shared,
    )
    try:
        assert repair.returncode == 0, repair.stdout + repair.stderr
        assert "verified byte-identical" in repair.stdout
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["chunks_verified"] == (
            summary["chunks_repaired"] + summary["recovered_chunks"]
        )
        deadline = time.monotonic() + 30
        for proc in agents:
            out, _ = proc.communicate(
                timeout=max(0.5, deadline - time.monotonic())
            )
            assert proc.returncode == 0, out.decode()
    except BaseException:
        _save_journal_artifact(tmp_path, "multiprocess_corruption")
        raise
    finally:
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
