"""Crash-recoverable repair: journal, epochs, and resumable runs.

The acceptance bar for the recovery subsystem: kill the coordinator
after *any* journal record, recover from the journal, and the repair
finishes with byte-identical chunks and no action executed twice.  A
fenced stale-epoch coordinator must not be able to mutate any agent's
store.
"""

import json
import os
import shutil
import struct
import threading

import pytest

from repro.cluster import StorageCluster
from repro.ec import make_codec
from repro.core.planner import FastPRPlanner
from repro.runtime import (
    COORDINATOR_ID,
    ActionCompleted,
    CoordinatorCrash,
    CoordinatorCrashFault,
    FaultPlan,
    InventoryQuery,
    InventoryReply,
    JournalError,
    PlanCommitted,
    ReceiveCommand,
    RepairAck,
    RepairFinished,
    RepairJournal,
    RoundCompleted,
    RoundStarted,
    RuntimeConfig,
    Scrubber,
)
from repro.runtime.coordinator import Coordinator
from repro.runtime.testbed import EmulatedTestbed
from repro.sim.simulator import RepairSimulator

CHUNK = 16 * 1024

#: tight timings so crash recovery happens in test time, not ops time
FAST = RuntimeConfig(
    ack_timeout=1.5,
    join_timeout=5.0,
    deadline_margin=4.0,
    min_deadline=0.8,
    max_retries=3,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=0.2,
    probe_timeout=0.4,
    heartbeat_interval=0.1,
    poll_interval=0.05,
    journal_fsync="never",  # crash *points*, not power-failure durability
    inventory_timeout=2.0,
)


def make_cluster(num_stripes=6, seed=21):
    cluster = StorageCluster.random(
        num_nodes=10,
        num_stripes=num_stripes,
        n=5,
        k=3,
        num_hot_standby=2,
        seed=seed,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    cluster.node(0).mark_soon_to_fail()
    return cluster


def make_testbed(tmp_path, faults=None, journal=True, **kw):
    cluster = make_cluster(**kw)
    testbed = EmulatedTestbed(
        cluster,
        make_codec("rs(5,3)"),
        packet_size=CHUNK // 4,
        workdir=tmp_path / "bed",
        config=FAST,
        faults=faults,
        journal_path=(tmp_path / "repair.journal") if journal else None,
    )
    testbed.start()
    testbed.load_random_data(seed=1)
    return cluster, testbed


def assert_no_double_execution(testbed):
    """Every chunk was promoted at most once across the whole run."""
    for node_id, store in testbed.stores.items():
        for stripe_id, count in store.promotions.items():
            assert count <= 1, (
                f"node {node_id} promoted stripe {stripe_id} {count} times: "
                "an action was executed twice"
            )


# ----------------------------------------------------------------------
# journal unit tests
# ----------------------------------------------------------------------


class TestJournal:
    RECORDS = [
        PlanCommitted(0, {"stf_node": 0, "scenario": "scattered", "rounds": []}, 4096),
        RoundStarted(0, 0),
        ActionCompleted(
            0,
            0,
            {
                "stripe_id": 3,
                "chunk_index": 1,
                "method": "migration",
                "sources": [0],
                "destination": 7,
                "pipelined": False,
            },
            0,
        ),
        RoundCompleted(0, 0),
        RepairFinished(0),
    ]

    def write(self, path, records=None):
        with RepairJournal(path, fsync="never") as journal:
            for record in records or self.RECORDS:
                journal.append(record)

    def test_round_trip_all_record_types(self, tmp_path):
        path = tmp_path / "j"
        self.write(path)
        assert RepairJournal.replay(path) == self.RECORDS

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert RepairJournal.replay(tmp_path / "absent") == []

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "j"
        self.write(path)
        intact = path.stat().st_size
        with open(path, "ab") as f:  # a crash mid-append: partial frame
            f.write(struct.pack("<II", 500, 0) + b"torn")
        assert RepairJournal.replay(path) == self.RECORDS
        assert path.stat().st_size == intact  # tail cut back
        # Appends after recovery extend a clean log.
        with RepairJournal(path, fsync="never") as journal:
            journal.append(RoundStarted(1, 1))
        assert RepairJournal.replay(path) == self.RECORDS + [RoundStarted(1, 1)]

    def test_crc_corruption_stops_replay(self, tmp_path):
        path = tmp_path / "j"
        self.write(path)
        blob = bytearray(path.read_bytes())
        # Flip a payload byte of the second record.
        first_len = struct.unpack_from("<II", blob, 0)[0]
        offset = 8 + first_len + 8 + 2
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert RepairJournal.replay(path) == self.RECORDS[:1]

    def test_double_replay_is_idempotent(self, tmp_path):
        path = tmp_path / "j"
        self.write(path)
        with open(path, "ab") as f:
            f.write(b"\x01\x02")  # torn header
        first = RepairJournal.replay(path)
        second = RepairJournal.replay(path)
        assert first == second == self.RECORDS

    def test_crash_after_records_trips_exactly_then(self, tmp_path):
        journal = RepairJournal(
            tmp_path / "j", fsync="never", crash_after_records=2
        )
        journal.append(self.RECORDS[0])
        with pytest.raises(CoordinatorCrash) as exc:
            journal.append(self.RECORDS[1])
        assert exc.value.records_written == 2
        # The crashing record is durable: both records replay.
        assert RepairJournal.replay(tmp_path / "j") == self.RECORDS[:2]
        with pytest.raises(JournalError):
            journal.append(self.RECORDS[2])  # dead journals stay dead

    def test_validates_fsync_policy_and_crash_trigger(self, tmp_path):
        with pytest.raises(ValueError):
            RepairJournal(tmp_path / "j", fsync="sometimes")
        with pytest.raises(ValueError):
            RepairJournal(tmp_path / "j", crash_after_records=0)
        with pytest.raises(ValueError):
            RuntimeConfig(journal_fsync="sometimes")
        with pytest.raises(ValueError):
            RuntimeConfig(inventory_timeout=0)

    def test_fsync_always_also_round_trips(self, tmp_path):
        path = tmp_path / "j"
        with RepairJournal(path, fsync="always") as journal:
            for record in self.RECORDS:
                journal.append(record)
        assert RepairJournal.replay(path) == self.RECORDS


# ----------------------------------------------------------------------
# epoch fencing
# ----------------------------------------------------------------------


class TestEpochFencing:
    def test_stale_epoch_command_is_nacked_and_mutates_nothing(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path, journal=False)
        inbox = testbed.coordinator._endpoint.inbox
        try:
            # A successor coordinator announces epoch 3 via the
            # inventory broadcast; the agent adopts and persists it.
            testbed.network.send(COORDINATOR_ID, 1, InventoryQuery(3, 99))
            reply = inbox.get(timeout=5)
            assert isinstance(reply, InventoryReply)
            assert reply.epoch == 3 and reply.nonce == 99
            store = testbed.stores[1]
            assert (store.root / "coordinator.epoch").read_text() == "3"

            # Pick a stripe node 1 does not store: a fenced command
            # that slipped through would visibly create its chunk.
            stripe = next(
                s for s in cluster.stripes() if not s.stores_on(1)
            )
            before = set(store.stripes())
            stale = ReceiveCommand(
                stripe_id=stripe.stripe_id,
                chunk_index=0,
                chunk_size=CHUNK,
                packet_size=CHUNK // 4,
                sources={2: 1},
                attempt=0,
                epoch=1,  # older than the adopted epoch 3
            )
            testbed.network.send(COORDINATOR_ID, 1, stale)
            nack = inbox.get(timeout=5)
            assert isinstance(nack, RepairAck)
            assert not nack.ok
            assert "stale epoch 1 < 3" in nack.detail
            assert testbed.agents[1]._assemblies == {}
            assert set(store.stripes()) == before
            assert store.promotions == {}
        finally:
            testbed.shutdown()

    def test_adopting_a_newer_epoch_aborts_older_work(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path, journal=False)
        try:
            agent = testbed.agents[1]
            stripe = next(s for s in cluster.stripes() if not s.stores_on(1))
            # Start an epoch-0 assembly, then fence it with epoch 5.
            testbed.network.send(
                COORDINATOR_ID,
                1,
                ReceiveCommand(
                    stripe_id=stripe.stripe_id,
                    chunk_index=0,
                    chunk_size=CHUNK,
                    packet_size=CHUNK // 4,
                    sources={2: 1},
                ),
            )
            deadline = threading.Event()
            for _ in range(100):
                if agent._assemblies:
                    break
                deadline.wait(0.02)
            assert agent._assemblies
            testbed.network.send(COORDINATOR_ID, 1, InventoryQuery(5, 1))
            reply = testbed.coordinator._endpoint.inbox.get(timeout=5)
            assert isinstance(reply, InventoryReply)
            assert agent._assemblies == {}  # fenced work was aborted
            assert not testbed.stores[1].has(stripe.stripe_id)
        finally:
            testbed.shutdown()


# ----------------------------------------------------------------------
# kill + resume
# ----------------------------------------------------------------------


def run_clean_journaled_repair(tmp_path):
    """Reference run: no crash; returns the plan and its record count."""
    cluster, testbed = make_testbed(tmp_path)
    try:
        plan = FastPRPlanner(seed=3).plan(cluster, 0)
        plan.validate(cluster)
        result = testbed.execute(plan)
        testbed.verify_plan(plan, result)
        records = testbed.coordinator.journal.records_written
    finally:
        testbed.shutdown()
    return plan, records


class TestKillAndResume:
    def test_clean_run_journals_the_full_protocol(self, tmp_path):
        plan, _records = run_clean_journaled_repair(tmp_path)
        replayed = RepairJournal.replay(tmp_path / "repair.journal")
        assert isinstance(replayed[0], PlanCommitted)
        assert isinstance(replayed[-1], RepairFinished)
        completed = [r for r in replayed if isinstance(r, ActionCompleted)]
        assert len(completed) == plan.total_chunks
        starts = [r for r in replayed if isinstance(r, RoundStarted)]
        ends = [r for r in replayed if isinstance(r, RoundCompleted)]
        assert len(starts) == len(ends) == plan.num_rounds

    def test_recover_without_a_plan_record_raises(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_bytes(b"")
        with pytest.raises(JournalError):
            Coordinator.recover(
                path,
                network=None,
                cluster=None,
                codec=None,
                config=FAST,
            )

    def test_resume_without_recover_raises(self, tmp_path):
        _cluster, testbed = make_testbed(tmp_path)
        try:
            with pytest.raises(RuntimeError):
                testbed.coordinator.resume()
        finally:
            testbed.shutdown()

    def test_kill_mid_run_then_resume_repairs_everything(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            plan.validate(cluster)
            testbed.kill_coordinator_after(3)
            with pytest.raises(CoordinatorCrash):
                testbed.execute(plan)
            successor = testbed.restart_coordinator()
            assert successor.epoch == 1
            result = testbed.resume()
            assert result.chunks_repaired + result.recovered_chunks == (
                plan.total_chunks
            )
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
            assert Scrubber(testbed).scan().clean
        finally:
            testbed.shutdown()

    def test_resume_after_finish_is_a_no_op(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            testbed.execute(plan)
            transferred = testbed.network.bytes_transferred
            testbed.restart_coordinator()
            result = testbed.resume()
            assert result.chunks_repaired == 0
            assert result.recovered_chunks == plan.total_chunks
            assert testbed.network.bytes_transferred == transferred
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
        finally:
            testbed.shutdown()

    def test_fresh_execute_truncates_a_stale_journal(self, tmp_path):
        # A journal left over from a previous, finished repair must not
        # masquerade as the new run's progress.
        plan, _records = run_clean_journaled_repair(tmp_path / "first")
        journal_path = tmp_path / "first" / "repair.journal"
        assert RepairJournal.replay(journal_path)  # non-empty leftover
        cluster = make_cluster()
        testbed = EmulatedTestbed(
            cluster,
            make_codec("rs(5,3)"),
            packet_size=CHUNK // 4,
            workdir=tmp_path / "second",
            config=FAST,
            journal_path=journal_path,
        )
        testbed.start()
        testbed.load_random_data(seed=2)  # different bytes this time
        try:
            second = FastPRPlanner(seed=3).plan(cluster, 0)
            testbed.kill_coordinator_after(3)
            with pytest.raises(CoordinatorCrash):
                testbed.execute(second)
            # execute() truncated the leftover: the journal holds only
            # this run's records, not the finished first repair's.
            assert len(RepairJournal.replay(journal_path)) == 3
            testbed.restart_coordinator()
            result = testbed.resume()
            # The repaired bytes are seed=2's, proving recovery never
            # trusted the first run's journaled completions.
            testbed.verify_plan(second, result)
            assert_no_double_execution(testbed)
        finally:
            testbed.shutdown()

    def test_fault_plan_coordinator_crash_after_round(self, tmp_path):
        faults = FaultPlan(
            coordinator_crashes=[CoordinatorCrashFault(after_round=0)]
        )
        cluster, testbed = make_testbed(tmp_path, faults=faults)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            with pytest.raises(CoordinatorCrash):
                testbed.execute(plan)
            replayed = RepairJournal.replay(testbed.journal_path)
            assert any(
                isinstance(r, RoundCompleted) and r.round_index == 0
                for r in replayed
            )
            testbed.restart_coordinator()
            result = testbed.resume()
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
            assert Scrubber(testbed).scan().clean
        finally:
            testbed.shutdown()


class TestCrashPointSweep:
    """Kill the coordinator after EVERY journal record and recover."""

    def test_every_crash_point_recovers_exactly_once(self, tmp_path):
        plan, total_records = run_clean_journaled_repair(tmp_path / "clean")
        assert total_records > plan.total_chunks  # sanity: a real protocol
        for n in range(1, total_records + 1):
            run_dir = tmp_path / f"crash_at_{n}"
            cluster, testbed = make_testbed(run_dir)
            try:
                swept = FastPRPlanner(seed=3).plan(cluster, 0)
                testbed.kill_coordinator_after(n)
                with pytest.raises(CoordinatorCrash) as crash:
                    testbed.execute(swept)
                assert crash.value.records_written == n
                testbed.restart_coordinator()
                result = testbed.resume()
                assert result.chunks_repaired + result.recovered_chunks == (
                    swept.total_chunks
                )
                # Byte-identical chunks at every (possibly healed)
                # destination, and no action ran twice.
                testbed.verify_plan(swept, result)
                assert_no_double_execution(testbed)
                assert Scrubber(testbed).scan().clean
            except BaseException:
                _save_journal_artifact(testbed, n)
                raise
            finally:
                testbed.shutdown()


def _save_journal_artifact(testbed, crash_point):
    """Preserve the journal of a failing sweep iteration for CI upload."""
    artifact_dir = os.environ.get("FASTPR_JOURNAL_DIR")
    if not artifact_dir or testbed.journal_path is None:
        return
    if not testbed.journal_path.exists():
        return
    os.makedirs(artifact_dir, exist_ok=True)
    shutil.copy(
        testbed.journal_path,
        os.path.join(artifact_dir, f"crash_at_{crash_point}.journal"),
    )


# ----------------------------------------------------------------------
# fault-plan serialization + simulator mirror
# ----------------------------------------------------------------------


class TestCoordinatorCrashFault:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            CoordinatorCrashFault()
        with pytest.raises(ValueError):
            CoordinatorCrashFault(after_records=1, after_round=0)
        with pytest.raises(ValueError):
            CoordinatorCrashFault(after_records=0)
        with pytest.raises(ValueError):
            CoordinatorCrashFault(after_round=-1)

    def test_fault_plan_json_round_trip(self):
        from repro.runtime import CrashFault, LinkFault, SlowNicFault

        plan = FaultPlan(
            crashes=[CrashFault(node=0, after_sent_bytes=1024)],
            links=[LinkFault(drop=0.1, dst=3)],
            slow_nics=[SlowNicFault(node=2, factor=0.5)],
            coordinator_crashes=[
                CoordinatorCrashFault(after_records=4),
                CoordinatorCrashFault(after_round=1),
            ],
            seed=7,
        )
        document = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(document) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="coordinator_crashs"):
            FaultPlan.from_dict(
                {"coordinator_crashs": [{"after_round": 0}]}
            )


class TestSimulatorMirror:
    def test_coordinator_crash_costs_one_recovery_pause(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=3).plan(cluster, 0)
        assert plan.num_rounds >= 1
        simulator = RepairSimulator(cluster)
        baseline = simulator.run(plan)
        faults = FaultPlan(
            coordinator_crashes=[CoordinatorCrashFault(after_round=0)]
        )
        crashed = simulator.run(plan, faults=faults, recovery_delay=2.5)
        assert crashed.coordinator_restarts == 1
        assert crashed.chunks_repaired == baseline.chunks_repaired
        assert crashed.total_time == pytest.approx(
            baseline.total_time + 2.5, rel=1e-6
        )

    def test_after_records_triggers_are_ignored_by_the_simulator(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=3).plan(cluster, 0)
        faults = FaultPlan(
            coordinator_crashes=[CoordinatorCrashFault(after_records=2)]
        )
        result = RepairSimulator(cluster).run(
            plan, faults=faults, recovery_delay=2.5
        )
        assert result.coordinator_restarts == 0
