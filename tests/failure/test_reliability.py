"""Tests for the window-of-vulnerability estimator."""

import math

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, MigrationOnlyPlanner
from repro.failure.reliability import (
    ReliabilityConfig,
    chunk_completion_times,
    compare_predictive_vs_reactive,
    estimate_vulnerability,
)
from repro.sim.cost_model import evaluate_plan


@pytest.fixture
def repaired():
    cluster = StorageCluster.random(16, 60, 5, 3, seed=44)
    stf = max(cluster.storage_node_ids(), key=cluster.load_of)
    cluster.node(stf).mark_soon_to_fail()
    plan = FastPRPlanner(seed=0).plan(cluster, stf)
    result = evaluate_plan(cluster, plan)
    return cluster, plan, result


HOT_CONFIG = ReliabilityConfig(
    annual_failure_rate=0.5, correlation_factor=2000.0, trials=400, seed=1
)


class TestCompletionTimes:
    def test_rounds_are_cumulative(self, repaired):
        cluster, plan, result = repaired
        completion = chunk_completion_times(plan, result.round_times)
        assert len(completion) == plan.total_chunks
        assert max(completion.values()) == pytest.approx(result.total_time)
        first_round_end = result.round_times[0]
        for action in plan.rounds[0].actions():
            key = (action.stripe_id, action.chunk_index)
            assert completion[key] == pytest.approx(first_round_end)

    def test_mismatched_lengths(self, repaired):
        cluster, plan, result = repaired
        with pytest.raises(ValueError):
            chunk_completion_times(plan, result.round_times[:-1])


class TestEstimate:
    def test_zero_hazard_no_loss_when_predictive(self, repaired):
        cluster, plan, result = repaired
        config = ReliabilityConfig(
            annual_failure_rate=0.04,
            correlation_factor=0.0,
            trials=50,
            seed=2,
        )
        report = estimate_vulnerability(
            cluster, plan, result.round_times, math.inf, config
        )
        assert report.loss_probability == 0.0

    def test_reactive_riskier_than_predictive(self, repaired):
        cluster, plan, result = repaired
        predictive, reactive = compare_predictive_vs_reactive(
            cluster,
            plan,
            result.round_times,
            lead_time=math.inf,
            config=HOT_CONFIG,
        )
        assert reactive.loss_probability >= predictive.loss_probability
        assert reactive.expected_lost_stripes >= predictive.expected_lost_stripes

    def test_faster_repair_lowers_exposure(self):
        cluster = StorageCluster.random(20, 80, 5, 3, seed=45)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        reports = {}
        for planner in (FastPRPlanner(seed=0), MigrationOnlyPlanner()):
            plan = planner.plan(cluster, stf)
            result = evaluate_plan(cluster, plan)
            reports[planner.name] = estimate_vulnerability(
                cluster, plan, result.round_times, 0.0, HOT_CONFIG
            )
        assert (
            reports["fastpr"].expected_lost_stripes
            <= reports["migration"].expected_lost_stripes
        )
        assert reports["fastpr"].repair_time < reports["migration"].repair_time

    def test_empty_plan(self, repaired):
        cluster, _, _ = repaired
        from repro.core.plan import RepairPlan, RepairScenario

        empty = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        report = estimate_vulnerability(cluster, empty, [], 0.0, HOT_CONFIG)
        assert report.loss_probability == 0.0
        assert report.repair_time == 0.0

    def test_deterministic_with_seed(self, repaired):
        cluster, plan, result = repaired
        a = estimate_vulnerability(
            cluster, plan, result.round_times, 0.0, HOT_CONFIG
        )
        b = estimate_vulnerability(
            cluster, plan, result.round_times, 0.0, HOT_CONFIG
        )
        assert a.loss_probability == b.loss_probability
