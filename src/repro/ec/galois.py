"""Galois-field GF(2^8) arithmetic.

This module provides the finite-field arithmetic that underlies every
erasure code in this repository, playing the role that Jerasure v1.2
plays in the paper's C++ prototype.

The field is GF(2^8) built from the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same polynomial used by
Jerasure's default GF(2^8) implementation and by most storage-oriented
Reed-Solomon codecs.  Elements are integers in ``[0, 255]``; addition is
XOR, and multiplication is implemented with log/antilog tables so that
both scalar and vectorized (numpy) operations are cheap.

Two API levels are exposed:

* scalar helpers (:func:`gf_add`, :func:`gf_mul`, :func:`gf_div`,
  :func:`gf_pow`, :func:`gf_inv`) for matrix construction and tests, and
* vectorized helpers (:func:`gf_mul_bytes`, :func:`gf_addmul_bytes`)
  used on whole chunk buffers by the codecs.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group of GF(2^8).
GF_ORDER = 255

#: Field size.
GF_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the antilog (exp) and log tables for GF(2^8).

    Returns a pair ``(exp_table, log_table)`` where ``exp_table`` has
    512 entries (doubled to avoid a modulo in multiplication) and
    ``log_table`` has 256 entries with ``log_table[0]`` unused.
    """
    exp_table = np.zeros(2 * GF_ORDER + 2, dtype=np.int32)
    log_table = np.zeros(GF_SIZE, dtype=np.int32)
    x = 1
    for i in range(GF_ORDER):
        exp_table[i] = x
        log_table[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so that exp_table[log_a + log_b] never needs "% 255".
    for i in range(GF_ORDER, 2 * GF_ORDER + 2):
        exp_table[i] = exp_table[i - GF_ORDER]
    return exp_table, log_table


_EXP, _LOG = _build_tables()

# A full 256x256 multiplication table.  64 KiB of int16 is a trivial
# memory cost and turns vectorized chunk multiplication into a single
# fancy-indexing operation.
_MUL_TABLE = np.zeros((GF_SIZE, GF_SIZE), dtype=np.uint8)
for _a in range(1, GF_SIZE):
    for _b in range(1, GF_SIZE):
        _MUL_TABLE[_a, _b] = _EXP[_LOG[_a] + _LOG[_b]]
del _a, _b

_INV_TABLE = np.zeros(GF_SIZE, dtype=np.uint8)
for _a in range(1, GF_SIZE):
    _INV_TABLE[_a] = _EXP[GF_ORDER - _LOG[_a]]
del _a


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8) (carry-less, i.e. XOR)."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Return ``a - b`` in GF(2^8); identical to addition."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return ``a * b`` in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8).

    Raises:
        ZeroDivisionError: if ``b`` is zero.
    """
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[_LOG[a] - _LOG[b] + GF_ORDER])


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` in GF(2^8).

    Raises:
        ZeroDivisionError: if ``a`` is zero.
    """
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(_INV_TABLE[a])


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a ** exponent`` in GF(2^8) (exponent may be negative)."""
    if exponent == 0:
        return 1
    if a == 0:
        if exponent < 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return 0
    log_a = int(_LOG[a])
    return int(_EXP[(log_a * exponent) % GF_ORDER])


def gf_exp(power: int) -> int:
    """Return the field generator raised to ``power``."""
    return int(_EXP[power % GF_ORDER])


def gf_log(a: int) -> int:
    """Return the discrete log of ``a`` (base: field generator).

    Raises:
        ValueError: if ``a`` is zero (log of zero is undefined).
    """
    if a == 0:
        raise ValueError("log of zero is undefined in GF(2^8)")
    return int(_LOG[a])


def gf_mul_bytes(coeff: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    Args:
        coeff: field element in [0, 255].
        data: a ``uint8`` numpy array (any shape).

    Returns:
        A new ``uint8`` array of the same shape.
    """
    if not 0 <= coeff < GF_SIZE:
        raise ValueError(f"coefficient {coeff} outside GF(2^8)")
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    return _MUL_TABLE[coeff][data]


def gf_addmul_bytes(acc: np.ndarray, coeff: int, data: np.ndarray) -> None:
    """In place, set ``acc ^= coeff * data`` byte-wise over GF(2^8).

    This is the inner loop of erasure encoding/decoding: accumulate a
    scaled source buffer into a destination parity buffer.
    """
    if not 0 <= coeff < GF_SIZE:
        raise ValueError(f"coefficient {coeff} outside GF(2^8)")
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
        return
    np.bitwise_xor(acc, _MUL_TABLE[coeff][data], out=acc)


def gf_matmul_bytes(matrix: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """Multiply a GF(2^8) coefficient ``matrix`` by a stack of shards.

    Args:
        matrix: ``(r, s)`` uint8 array of coefficients.
        shards: ``(s, L)`` uint8 array: ``s`` source buffers of ``L`` bytes.

    Returns:
        ``(r, L)`` uint8 array: each output row is the GF-linear
        combination of the input shards given by the matrix row.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    shards = np.asarray(shards, dtype=np.uint8)
    if matrix.ndim != 2 or shards.ndim != 2:
        raise ValueError("matrix and shards must both be 2-D")
    if matrix.shape[1] != shards.shape[0]:
        raise ValueError(
            f"shape mismatch: matrix {matrix.shape} x shards {shards.shape}"
        )
    rows, _ = matrix.shape
    out = np.zeros((rows, shards.shape[1]), dtype=np.uint8)
    for r in range(rows):
        acc = out[r]
        for s, coeff in enumerate(matrix[r]):
            gf_addmul_bytes(acc, int(coeff), shards[s])
    return out
