"""Repair-plan data structures.

A :class:`RepairPlan` is the output of a planner (FastPR or a
baseline): an ordered list of :class:`RepairRound`\\ s, each holding the
chunk-level migration and reconstruction actions to execute in parallel
— exactly the per-round command batches the paper's coordinator sends
to its agents (Section V).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..cluster.chunk import NodeId, StripeId
from .serde import Schema, SerdeError

#: shared serde protocol; plans embedded in pre-versioning journals
#: load as implicit version 1
REPAIR_PLAN_SCHEMA = Schema(
    kind="RepairPlan",
    version=1,
    fields=("stf_node", "scenario", "rounds"),
    required=("stf_node", "scenario", "rounds"),
    error=SerdeError,
    implicit_version=1,
)


class RepairScenario(enum.Enum):
    """Where repaired chunks are stored (Section II-C)."""

    SCATTERED = "scattered"
    HOT_STANDBY = "hot_standby"


class RepairMethod(enum.Enum):
    """How a chunk is restored."""

    MIGRATION = "migration"
    RECONSTRUCTION = "reconstruction"


@dataclass(frozen=True)
class ChunkRepairAction:
    """Repair of one chunk of the STF node.

    Attributes:
        stripe_id: stripe the chunk belongs to.
        chunk_index: the chunk's index within the stripe.
        method: migration or reconstruction.
        sources: nodes read from — the STF node itself for migration,
            or the ``k`` helper nodes for reconstruction.
        destination: node that stores the repaired chunk.
        pipelined: reconstruct via a helper chain (repair pipelining,
            Li et al. ATC'17 — the paper's related work [20]): helpers
            forward partial sums ``sources[0] -> ... -> sources[-1] ->
            destination`` instead of all sending to the destination.
            The destination then ingests one chunk instead of ``k``.
    """

    stripe_id: StripeId
    chunk_index: int
    method: RepairMethod
    sources: Tuple[NodeId, ...]
    destination: NodeId
    pipelined: bool = False

    def __post_init__(self):
        if self.method is RepairMethod.MIGRATION and len(self.sources) != 1:
            raise ValueError("migration reads from exactly one source (the STF node)")
        if self.method is RepairMethod.RECONSTRUCTION and len(self.sources) < 1:
            raise ValueError("reconstruction needs at least one helper")

    def to_dict(self) -> Dict:
        """JSON-serializable form (repair journal, snapshots)."""
        return {
            "stripe_id": self.stripe_id,
            "chunk_index": self.chunk_index,
            "method": self.method.value,
            "sources": list(self.sources),
            "destination": self.destination,
            "pipelined": self.pipelined,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "ChunkRepairAction":
        return cls(
            stripe_id=document["stripe_id"],
            chunk_index=document["chunk_index"],
            method=RepairMethod(document["method"]),
            sources=tuple(document["sources"]),
            destination=document["destination"],
            pipelined=document.get("pipelined", False),
        )


@dataclass
class RepairRound:
    """One parallel batch of repairs (a repair round, Section IV)."""

    index: int
    reconstructions: List[ChunkRepairAction] = field(default_factory=list)
    migrations: List[ChunkRepairAction] = field(default_factory=list)

    @property
    def cr(self) -> int:
        """Chunks reconstructed this round (the paper's c_r)."""
        return len(self.reconstructions)

    @property
    def cm(self) -> int:
        """Chunks migrated this round (the paper's c_m)."""
        return len(self.migrations)

    def actions(self) -> Iterator[ChunkRepairAction]:
        yield from self.reconstructions
        yield from self.migrations

    def helper_nodes(self) -> List[NodeId]:
        """All distinct helper nodes read by reconstructions this round."""
        nodes = set()
        for action in self.reconstructions:
            nodes.update(action.sources)
        return sorted(nodes)

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "reconstructions": [a.to_dict() for a in self.reconstructions],
            "migrations": [a.to_dict() for a in self.migrations],
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "RepairRound":
        return cls(
            index=document["index"],
            reconstructions=[
                ChunkRepairAction.from_dict(a)
                for a in document["reconstructions"]
            ],
            migrations=[
                ChunkRepairAction.from_dict(a) for a in document["migrations"]
            ],
        )


@dataclass
class RepairPlan:
    """A complete schedule for repairing one STF node."""

    stf_node: NodeId
    scenario: RepairScenario
    rounds: List[RepairRound] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_chunks(self) -> int:
        return sum(r.cr + r.cm for r in self.rounds)

    @property
    def migrated_chunks(self) -> int:
        return sum(r.cm for r in self.rounds)

    @property
    def reconstructed_chunks(self) -> int:
        return sum(r.cr for r in self.rounds)

    def actions(self) -> Iterator[ChunkRepairAction]:
        for round_ in self.rounds:
            yield from round_.actions()

    def validate(self, cluster, stf_chunks=None) -> None:
        """Check plan invariants against a cluster's metadata.

        * every STF chunk repaired exactly once;
        * reconstruction helpers hold chunks of the stripe and exclude
          the STF node; each helper serves at most one chunk per round;
        * migrations read from the STF node;
        * scattered destinations hold no chunk of the stripe and
          receive at most one repaired chunk per round (write path);
        * hot-standby destinations are standby nodes.

        Raises:
            ValueError: on the first violated invariant.
        """
        from ..cluster.node import NodeRole

        if stf_chunks is None:
            stf_chunks = cluster.chunks_on_node(self.stf_node)
        expected = {(c.stripe_id, c.chunk_index) for c in stf_chunks}
        seen: Dict[Tuple[StripeId, int], int] = {}
        for round_ in self.rounds:
            helpers_this_round: Dict[NodeId, int] = {}
            for action in round_.actions():
                key = (action.stripe_id, action.chunk_index)
                seen[key] = seen.get(key, 0) + 1
                stripe = cluster.stripe(action.stripe_id)
                if action.method is RepairMethod.MIGRATION:
                    if action.sources != (self.stf_node,):
                        raise ValueError(
                            f"migration of {key} reads from {action.sources}, "
                            f"not the STF node {self.stf_node}"
                        )
                else:
                    for helper in action.sources:
                        if helper == self.stf_node:
                            raise ValueError(
                                f"reconstruction of {key} uses the STF node"
                            )
                        if not stripe.stores_on(helper):
                            raise ValueError(
                                f"helper {helper} holds no chunk of stripe "
                                f"{action.stripe_id}"
                            )
                        helpers_this_round[helper] = (
                            helpers_this_round.get(helper, 0) + 1
                        )
                if self.scenario is RepairScenario.SCATTERED:
                    if stripe.stores_on(action.destination):
                        raise ValueError(
                            f"destination {action.destination} already stores a "
                            f"chunk of stripe {action.stripe_id}"
                        )
                    if cluster.node(action.destination).role is not NodeRole.STORAGE:
                        raise ValueError(
                            f"scattered repair must target storage nodes, got "
                            f"{action.destination}"
                        )
                else:
                    if not cluster.node(action.destination).is_standby:
                        raise ValueError(
                            f"hot-standby repair must target standby nodes, got "
                            f"{action.destination}"
                        )
            over = [n for n, cnt in helpers_this_round.items() if cnt > 1]
            if over:
                raise ValueError(
                    f"round {round_.index}: helper nodes {over} serve more "
                    "than one reconstruction"
                )
        if set(seen) != expected:
            missing = expected - set(seen)
            extra = set(seen) - expected
            raise ValueError(
                f"plan covers wrong chunk set; missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        repeated = [key for key, cnt in seen.items() if cnt > 1]
        if repeated:
            raise ValueError(f"chunks repaired more than once: {repeated[:5]}")

    def to_dict(self) -> Dict:
        """JSON-serializable form, exact enough to resume a repair from."""
        return REPAIR_PLAN_SCHEMA.dump(
            {
                "stf_node": self.stf_node,
                "scenario": self.scenario.value,
                "rounds": [r.to_dict() for r in self.rounds],
            }
        )

    @classmethod
    def from_dict(cls, document: Dict) -> "RepairPlan":
        body = REPAIR_PLAN_SCHEMA.load(document)
        return cls(
            stf_node=body["stf_node"],
            scenario=RepairScenario(body["scenario"]),
            rounds=[RepairRound.from_dict(r) for r in body["rounds"]],
        )

    def summary(self) -> str:
        """Human-readable one-liner for logs and examples."""
        return (
            f"RepairPlan(stf={self.stf_node}, {self.scenario.value}, "
            f"rounds={self.num_rounds}, reconstructed={self.reconstructed_chunks}, "
            f"migrated={self.migrated_chunks})"
        )


@dataclass(frozen=True)
class ShardMap:
    """Consistent hash of the stripe space over ``num_shards`` owners.

    Shard assignment is ``crc32("stripe:<id>") % num_shards`` — stable
    across processes and Python versions (unlike ``hash()``), the same
    idiom the fault injector's link RNG uses.  Every coordinator,
    agent-side tool and the simulator derive an identical mapping from
    just the shard count, so there is no shard-map metadata to
    replicate or recover: a takeover only moves *ownership*, never the
    mapping.
    """

    num_shards: int

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")

    def shard_of(self, stripe_id: StripeId) -> int:
        """Owning shard of one stripe."""
        return zlib.crc32(f"stripe:{stripe_id}".encode()) % self.num_shards

    def coordinator_id(self, shard: int) -> NodeId:
        """Transport endpoint of the shard's coordinator: ``-(shard+1)``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return -(shard + 1)

    def shards(self) -> range:
        return range(self.num_shards)


def split_plan(plan: RepairPlan, shard_map: ShardMap) -> List[RepairPlan]:
    """Partition a validated plan into one sub-plan per shard.

    Each action lands in the shard owning its stripe; round structure
    is preserved per shard (an action in the full plan's round ``r``
    stays coupled with its shard-mates from round ``r``), then empty
    rounds are squeezed out and the rest re-indexed so each shard
    executes a dense round sequence.  Only the *full* plan satisfies
    the global validation invariants (complete STF chunk coverage) —
    validate before splitting, not after.
    """
    rounds_per_shard: List[List[RepairRound]] = [
        [] for _ in shard_map.shards()
    ]
    for round_ in plan.rounds:
        buckets: Dict[int, RepairRound] = {}
        for action in round_.reconstructions:
            shard = shard_map.shard_of(action.stripe_id)
            bucket = buckets.setdefault(shard, RepairRound(index=0))
            bucket.reconstructions.append(action)
        for action in round_.migrations:
            shard = shard_map.shard_of(action.stripe_id)
            bucket = buckets.setdefault(shard, RepairRound(index=0))
            bucket.migrations.append(action)
        for shard, bucket in buckets.items():
            bucket.index = len(rounds_per_shard[shard])
            rounds_per_shard[shard].append(bucket)
    return [
        RepairPlan(
            stf_node=plan.stf_node,
            scenario=plan.scenario,
            rounds=rounds,
        )
        for rounds in rounds_per_shard
    ]
