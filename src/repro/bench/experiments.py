"""Reproductions of every figure in the paper's evaluation.

Each ``figN_*`` function regenerates the corresponding figure:

* Figures 2-3 — Section III mathematical analysis (closed form).
* Figures 8-10 — Section VI-A large-scale simulation (planners +
  discrete-event simulator).
* Figures 11-14 — Section VI-B testbed experiments, on the emulated
  local testbed (see DESIGN.md for the EC2 substitution and scaling).
* Figure 15 — Algorithm 1 microbenchmarks.

Scaling notes (also in EXPERIMENTS.md):

* Simulations default to 400 stripes instead of the paper's 1,000 and
  average fewer runs; Figure 10 (both the paper's and ours) shows the
  stripe count stops mattering past ~400.
* Testbed runs scale 64 MB chunks to 256 KiB and EC2's measured
  142 MB/s disk / 5 Gb/s network to 25 MB/s / 110 MB/s — the same
  bn/bd ratio — so every run finishes in seconds while preserving the
  bottleneck structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import StorageCluster
from ..core.analysis import (
    AnalyticalModel,
    BandwidthProfile,
    gbit_per_s,
    mb_per_s,
    mib,
)
from ..core.plan import RepairScenario
from ..core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    model_for,
)
from ..core.reconstruction_sets import ReconstructionSetFinder
from ..ec.codec import make_codec
from ..runtime.testbed import EmulatedTestbed
from ..sim.cost_model import evaluate_plan
from ..sim.workload import (
    SimulationConfig,
    build_cluster_with_stf,
    fixed_stf_chunk_count,
)
from .harness import Experiment, Panel, average_runs

OPTIMUM = "optimum"
FASTPR = "fastpr"
RECONSTRUCTION = "reconstruction"
MIGRATION = "migration"

#: paper's coding schemes: QFS, Facebook f4, Azure.
PAPER_CODES: Tuple[Tuple[int, int], ...] = ((9, 6), (14, 10), (16, 12))

#: simulations: fewer stripes/runs than the paper (see module docstring).
DEFAULT_SIM_STRIPES = 400
DEFAULT_SIM_RUNS = 3

#: testbed: fewer averaged runs than the paper's five.
DEFAULT_TESTBED_RUNS = 2


# ----------------------------------------------------------------------
# Figures 2-3: mathematical analysis
# ----------------------------------------------------------------------


def fig2_math_scattered() -> Experiment:
    """Figure 2: analysis of scattered repair (4 panels)."""
    exp = Experiment("fig2", "Mathematical analysis in scattered repair")

    panel = Panel("Fig 2(a) — varying M", "# of nodes")
    for num_nodes in range(20, 101, 10):
        model = AnalyticalModel(num_nodes=num_nodes, k=6)
        panel.add_point(num_nodes, _analysis_point(model))
    exp.panels.append(panel)

    panel = Panel("Fig 2(b) — varying RS(n,k)", "erasure code")
    for n, k in PAPER_CODES:
        model = AnalyticalModel(num_nodes=100, k=k)
        panel.add_point(f"RS({n},{k})", _analysis_point(model))
    exp.panels.append(panel)

    panel = Panel("Fig 2(c) — varying disk bandwidth", "bd (MB/s)")
    for bd in (100, 200, 300, 400, 500):
        profile = BandwidthProfile(disk_bandwidth=mb_per_s(bd))
        model = AnalyticalModel(num_nodes=100, k=6, profile=profile)
        panel.add_point(bd, _analysis_point(model))
    exp.panels.append(panel)

    panel = Panel("Fig 2(d) — varying network bandwidth", "bn (Gb/s)")
    for bn in (0.5, 1, 2, 5, 10):
        profile = BandwidthProfile(network_bandwidth=gbit_per_s(bn))
        model = AnalyticalModel(num_nodes=100, k=6, profile=profile)
        panel.add_point(bn, _analysis_point(model))
    exp.panels.append(panel)
    return exp


def fig3_math_hotstandby() -> Experiment:
    """Figure 3: analysis of hot-standby repair (2 panels)."""
    exp = Experiment("fig3", "Mathematical analysis in hot-standby repair")

    panel = Panel("Fig 3(a) — varying M", "# of nodes")
    for num_nodes in range(20, 101, 10):
        model = AnalyticalModel(num_nodes=num_nodes, k=6, hot_standby=3)
        panel.add_point(num_nodes, _analysis_point(model))
    exp.panels.append(panel)

    panel = Panel("Fig 3(b) — varying h", "# of hot-standby nodes")
    for h in range(3, 10):
        model = AnalyticalModel(num_nodes=100, k=6, hot_standby=h)
        panel.add_point(h, _analysis_point(model))
    exp.panels.append(panel)
    return exp


def _analysis_point(model: AnalyticalModel) -> Dict[str, float]:
    return {
        "predictive": model.predictive_time_per_chunk(),
        "reactive": model.reactive_time_per_chunk(),
    }


# ----------------------------------------------------------------------
# Figures 8-10: large-scale simulation
# ----------------------------------------------------------------------


def sim_group_size(num_nodes: int, k: int) -> int:
    """Chunk-group size for Algorithm 1 in simulations (Section IV-D).

    Four rounds' worth of maximum parallelism keeps set quality while
    bounding Algorithm 1's polynomial blow-up at small M (large |C|).
    """
    return max(4 * ((num_nodes - 1) // k), 24)


def simulate_point(
    config: SimulationConfig,
    scenario: RepairScenario,
    runs: int = DEFAULT_SIM_RUNS,
    include_migration: bool = True,
) -> Dict[str, float]:
    """Average per-chunk repair times of all approaches at one config."""
    labels = [OPTIMUM, FASTPR, RECONSTRUCTION] + (
        [MIGRATION] if include_migration else []
    )
    acc: Dict[str, List[float]] = {label: [] for label in labels}
    base_seed = config.seed if config.seed is not None else 0
    for run in range(runs):
        cfg = config.with_(seed=base_seed + 101 * run)
        cluster, stf = build_cluster_with_stf(cfg)
        group = sim_group_size(cfg.num_nodes, cfg.k)
        planners = [
            FastPRPlanner(scenario=scenario, seed=run, group_size=group),
            ReconstructionOnlyPlanner(scenario=scenario, seed=run, group_size=group),
        ]
        if include_migration:
            planners.append(MigrationOnlyPlanner(scenario=scenario))
        for planner in planners:
            plan = planner.plan(cluster, stf)
            result = evaluate_plan(cluster, plan)
            acc[planner.name].append(result.time_per_chunk)
        model = model_for(cluster, scenario, cfg.k)
        acc[OPTIMUM].append(model.predictive_time_per_chunk())
    return {label: average_runs(values) for label, values in acc.items()}


def fig8_sim_scattered(
    runs: int = DEFAULT_SIM_RUNS, num_stripes: int = DEFAULT_SIM_STRIPES
) -> Experiment:
    """Figure 8 / Experiment A.1: simulated scattered repair."""
    exp = Experiment("fig8", "Simulation: scattered repair (Experiment A.1)")
    base = SimulationConfig(num_stripes=num_stripes, seed=11)
    scenario = RepairScenario.SCATTERED

    panel = Panel("Fig 8(a) — varying M", "# of nodes")
    for num_nodes in (20, 40, 60, 80, 100):
        cfg = base.with_(num_nodes=num_nodes)
        panel.add_point(num_nodes, simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)

    panel = Panel("Fig 8(b) — varying RS(n,k)", "erasure code")
    for n, k in PAPER_CODES:
        cfg = base.with_(n=n, k=k)
        panel.add_point(f"RS({n},{k})", simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)

    panel = Panel("Fig 8(c) — varying disk bandwidth", "bd (MB/s)")
    for bd in (100, 200, 300, 400, 500):
        cfg = base.with_(disk_bandwidth=mb_per_s(bd))
        panel.add_point(bd, simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)

    panel = Panel("Fig 8(d) — varying network bandwidth", "bn (Gb/s)")
    for bn in (0.5, 1, 2, 5, 10):
        cfg = base.with_(network_bandwidth=gbit_per_s(bn))
        panel.add_point(bn, simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)
    return exp


def fig9_sim_hotstandby(
    runs: int = DEFAULT_SIM_RUNS, num_stripes: int = DEFAULT_SIM_STRIPES
) -> Experiment:
    """Figure 9 / Experiment A.2: simulated hot-standby repair."""
    exp = Experiment("fig9", "Simulation: hot-standby repair (Experiment A.2)")
    base = SimulationConfig(num_stripes=num_stripes, seed=23)
    scenario = RepairScenario.HOT_STANDBY

    panel = Panel("Fig 9(a) — varying M", "# of nodes")
    for num_nodes in (20, 40, 60, 80, 100):
        cfg = base.with_(num_nodes=num_nodes)
        panel.add_point(num_nodes, simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)

    panel = Panel("Fig 9(b) — varying h", "# of hot-standby nodes")
    for h in range(3, 10):
        cfg = base.with_(num_hot_standby=h)
        panel.add_point(h, simulate_point(cfg, scenario, runs))
    exp.panels.append(panel)
    return exp


def fig10_stripes(runs: int = DEFAULT_SIM_RUNS) -> Experiment:
    """Figure 10 / Experiment A.3: impact of the number of stripes."""
    exp = Experiment("fig10", "Simulation: impact of the number of stripes")
    for scenario, title in (
        (RepairScenario.SCATTERED, "Fig 10(a) — scattered repair"),
        (RepairScenario.HOT_STANDBY, "Fig 10(b) — hot-standby repair"),
    ):
        panel = Panel(title, "# of stripes")
        for num_stripes in (200, 400, 600, 800, 1000):
            cfg = SimulationConfig(num_stripes=num_stripes, seed=37)
            point = simulate_point(cfg, scenario, runs, include_migration=False)
            panel.add_point(
                num_stripes,
                {OPTIMUM: point[OPTIMUM], FASTPR: point[FASTPR]},
            )
        exp.panels.append(panel)
    return exp


# ----------------------------------------------------------------------
# Figures 11-14: emulated testbed
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TestbedConfig:
    """Scaled-down counterpart of the paper's EC2 deployment.

    The paper: 21 storage instances + 3 hot-standbys, RS(9,6), 64 MB
    chunks, 4 MB packets, 142 MB/s disk, 5 Gb/s network, STF node fixed
    at 50 chunks.  Scaled: 2 MiB chunks (1/32), bandwidths reduced to
    keep runs in seconds while preserving the EC2 network/disk ratio
    bn/bd ≈ 4.4, and 10 STF chunks.  The chunk size is kept large
    enough that emulated transfer times dominate Python's per-packet
    overhead (smaller scales invert the Experiment B.1 pipelining
    effect and penalize high-fan-in reconstruction).
    """

    num_nodes: int = 21
    num_hot_standby: int = 3
    stf_chunks: int = 10
    extra_stripes: int = 20
    n: int = 9
    k: int = 6
    chunk_size: int = 2 * 1024 * 1024
    packet_size: int = 128 * 1024  # the paper's 4 MB at 1/32 scale
    disk_bandwidth: float = 10e6  # stands in for EC2's 142 MB/s
    network_bandwidth: float = 44e6  # stands in for EC2's 5 Gb/s
    pipeline_depth: int = 2
    seed: int = 0

    def with_(self, **kwargs) -> "TestbedConfig":
        return replace(self, **kwargs)


def testbed_point(
    config: TestbedConfig,
    scenario: RepairScenario,
    runs: int = DEFAULT_TESTBED_RUNS,
    packet_size: Optional[int] = None,
    verify: bool = True,
) -> Dict[str, float]:
    """Average per-chunk wall-clock repair times on the emulated testbed."""
    acc: Dict[str, List[float]] = {
        FASTPR: [],
        RECONSTRUCTION: [],
        MIGRATION: [],
    }
    for run in range(runs):
        sim_cfg = SimulationConfig(
            num_nodes=config.num_nodes,
            num_stripes=config.stf_chunks + config.extra_stripes,
            n=config.n,
            k=config.k,
            num_hot_standby=config.num_hot_standby,
            chunk_size=config.chunk_size,
            disk_bandwidth=config.disk_bandwidth,
            network_bandwidth=config.network_bandwidth,
            seed=config.seed + 97 * run,
        )
        cluster, stf = fixed_stf_chunk_count(sim_cfg, config.stf_chunks)
        codec = make_codec(f"rs({config.n},{config.k})")
        planners = [
            FastPRPlanner(scenario=scenario, seed=run),
            ReconstructionOnlyPlanner(scenario=scenario, seed=run),
            MigrationOnlyPlanner(scenario=scenario),
        ]
        with EmulatedTestbed(
            cluster,
            codec,
            packet_size=config.packet_size,
            pipeline_depth=config.pipeline_depth,
        ) as testbed:
            testbed.load_random_data(seed=sim_cfg.seed)
            for planner in planners:
                plan = planner.plan(cluster, stf)
                result = testbed.execute(plan, packet_size=packet_size)
                if verify:
                    testbed.verify_plan(plan)
                acc[planner.name].append(result.time_per_chunk)
    return {label: average_runs(values) for label, values in acc.items()}


def _both_scenarios(
    title_prefix: str,
    xlabel: str,
    points: Sequence[Tuple[str, TestbedConfig, Optional[int]]],
    runs: int,
) -> List[Panel]:
    panels = []
    for scenario, suffix in (
        (RepairScenario.SCATTERED, "scattered repair"),
        (RepairScenario.HOT_STANDBY, "hot-standby repair"),
    ):
        panel = Panel(f"{title_prefix} — {suffix}", xlabel)
        for xtick, config, packet_override in points:
            panel.add_point(
                xtick, testbed_point(config, scenario, runs, packet_override)
            )
        panels.append(panel)
    return panels


def fig11_packet_size(runs: int = DEFAULT_TESTBED_RUNS) -> Experiment:
    """Figure 11 / Experiment B.1: impact of the packet size.

    The paper's 1/4/16/64 MB packets map to chunk/64, chunk/16,
    chunk/4 and chunk-sized packets (64 MB packets = no pipelining).
    """
    exp = Experiment("fig11", "Testbed: impact of the packet size (B.1)")
    config = TestbedConfig()
    chunk = config.chunk_size
    points = [
        (label, config, packet)
        for label, packet in (
            ("1MB(scaled)", chunk // 64),
            ("4MB(scaled)", chunk // 16),
            ("16MB(scaled)", chunk // 4),
            ("64MB(scaled)", chunk),
        )
    ]
    exp.panels.extend(_both_scenarios("Fig 11", "packet size", points, runs))
    return exp


def fig12_chunk_size(runs: int = DEFAULT_TESTBED_RUNS) -> Experiment:
    """Figure 12 / Experiment B.2: impact of the chunk size.

    32/64/128 MB chunks map to 128/256/512 KiB at the 1/256 scale; the
    packet size stays fixed (the paper fixes 4 MB).
    """
    exp = Experiment("fig12", "Testbed: impact of the chunk size (B.2)")
    base = TestbedConfig()
    points = [
        (label, base.with_(chunk_size=size), None)
        for label, size in (
            ("32MB(scaled)", 1024 * 1024),
            ("64MB(scaled)", 2048 * 1024),
            ("128MB(scaled)", 4096 * 1024),
        )
    ]
    exp.panels.extend(_both_scenarios("Fig 12", "chunk size", points, runs))
    return exp


def fig13_codes(runs: int = DEFAULT_TESTBED_RUNS) -> Experiment:
    """Figure 13 / Experiment B.3: impact of different erasure codes."""
    exp = Experiment("fig13", "Testbed: impact of erasure codes (B.3)")
    base = TestbedConfig()
    points = [
        (f"RS({n},{k})", base.with_(n=n, k=k), None) for n, k in PAPER_CODES
    ]
    exp.panels.extend(_both_scenarios("Fig 13", "erasure code", points, runs))
    return exp


def fig14_bandwidth(runs: int = DEFAULT_TESTBED_RUNS) -> Experiment:
    """Figure 14 / Experiment B.4: impact of network bandwidth.

    EC2's 0.5/1/5 Gb/s map to 4.4/8.8/44 MB/s emulated rates (same
    ratios to the emulated disk bandwidth as on EC2).
    """
    exp = Experiment("fig14", "Testbed: impact of network bandwidth (B.4)")
    base = TestbedConfig()
    points = [
        ("0.5Gb/s(scaled)", base.with_(network_bandwidth=4.4e6), None),
        ("1Gb/s(scaled)", base.with_(network_bandwidth=8.8e6), None),
        ("5Gb/s(scaled)", base.with_(network_bandwidth=44e6), None),
    ]
    exp.panels.extend(
        _both_scenarios("Fig 14", "network bandwidth", points, runs)
    )
    return exp


# ----------------------------------------------------------------------
# Figure 15: Algorithm 1 microbenchmarks
# ----------------------------------------------------------------------


def fig15_microbench(
    sizes: Sequence[int] = (20, 40, 60, 80, 100),
    runs: int = 3,
) -> Experiment:
    """Figure 15 / Experiment B.5: Algorithm 1 microbenchmarks.

    Panel (a): reduction of d_opt (with swap optimization) over d_ini
    (initial greedy only).  Panel (b): Algorithm 1 running time.  The
    paper sweeps 100-1,000 repaired chunks with its C++ prototype; the
    Python sweep is scaled to 20-100 chunks (the growth shape, not the
    absolute times, is the comparable quantity).
    """
    exp = Experiment("fig15", "Microbenchmarks of Algorithm 1 (B.5)")
    panel_a = Panel(
        "Fig 15(a) — reduction of d_opt over d_ini",
        "# of repaired chunks",
        ylabel="reduction fraction",
    )
    panel_b = Panel(
        "Fig 15(b) — running time of Algorithm 1",
        "# of repaired chunks",
        ylabel="seconds",
    )
    for num_chunks in sizes:
        reductions: List[float] = []
        timings: List[float] = []
        for run in range(runs):
            cfg = SimulationConfig(
                num_nodes=100,
                num_stripes=num_chunks + 200,
                seed=13 + 97 * run,
            )
            cluster, stf = fixed_stf_chunk_count(cfg, num_chunks)
            finder_ini = ReconstructionSetFinder(cluster, stf, optimize=False)
            d_ini = len(finder_ini.find_all())
            finder_opt = ReconstructionSetFinder(cluster, stf, optimize=True)
            started = time.perf_counter()
            d_opt = len(finder_opt.find_all())
            timings.append(time.perf_counter() - started)
            reductions.append(1.0 - d_opt / d_ini)
        panel_a.add_point(num_chunks, {"reduction": average_runs(reductions)})
        panel_b.add_point(num_chunks, {"algorithm1": average_runs(timings)})
    exp.panels.append(panel_a)
    exp.panels.append(panel_b)
    return exp


def hotpath_codec(
    batches: Sequence[int] = (1, 4, 16, 64),
    chunk_bytes: int = 4096,
    scheme: str = "rs(9,6)",
    repeats: int = 3,
) -> Experiment:
    """Batched codec hot path vs the per-stripe loop it replaced.

    Sweeps the stripe batch size at a fixed chunk size and reports
    encode/decode throughput (MB of source data per second) for the
    old per-stripe calls against ``encode_batch``/``decode_batch``.
    The batched entry points fold the whole window into one wide
    GF(256) matrix product (DESIGN.md §13).  Small chunks are the
    interesting regime: per-call overhead dominates and a single
    chunk sits right at the uint16 paired-lookup threshold, so only
    the widened batch runs the fast kernel.  At chunk sizes past
    ~32 KiB both paths are kernel-bound and the gap closes.
    """
    import random

    codec = make_codec(scheme)
    rng = random.Random(7)
    exp = Experiment(
        "hotpath_codec", f"Batched vs per-stripe codec hot path [{scheme}]"
    )
    panel_enc = Panel(
        "Encode — per-stripe loop vs encode_batch",
        "stripes per batch",
        ylabel="MB/s of source data",
    )
    panel_dec = Panel(
        "Decode (1 lost chunk) — per-stripe loop vs decode_batch",
        "stripes per batch",
        ylabel="MB/s of helper data",
    )
    mb = 1024 * 1024

    def best(fn) -> float:
        elapsed = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            elapsed = min(elapsed, time.perf_counter() - started)
        return elapsed

    for batch in batches:
        stripes = [
            [rng.randbytes(chunk_bytes) for _ in range(codec.k)]
            for _ in range(batch)
        ]
        data_mb = batch * codec.k * chunk_bytes / mb
        t_loop = best(lambda: [codec.encode(s) for s in stripes])
        t_batch = best(lambda: codec.encode_batch(stripes))
        panel_enc.add_point(
            batch,
            {"per_stripe": data_mb / t_loop, "batched": data_mb / t_batch},
        )

        coded = codec.encode_batch(stripes)
        # predictive repair's common case: one failed chunk, identical
        # erasure set across the window, k helpers per stripe.
        available = [
            {i: chunks[i] for i in range(1, codec.n)} for chunks in coded
        ]
        wanted = [0]
        t_loop = best(lambda: [codec.decode(a, wanted) for a in available])
        t_batch = best(lambda: codec.decode_batch(available, wanted))
        panel_dec.add_point(
            batch,
            {"per_stripe": data_mb / t_loop, "batched": data_mb / t_batch},
        )
    exp.panels.append(panel_enc)
    exp.panels.append(panel_dec)
    return exp


#: registry used by the CLI and the bench files
ALL_EXPERIMENTS = {
    "fig2": fig2_math_scattered,
    "fig3": fig3_math_hotstandby,
    "fig8": fig8_sim_scattered,
    "fig9": fig9_sim_hotstandby,
    "fig10": fig10_stripes,
    "fig11": fig11_packet_size,
    "fig12": fig12_chunk_size,
    "fig13": fig13_codes,
    "fig14": fig14_bandwidth,
    "fig15": fig15_microbench,
    "hotpath_codec": hotpath_codec,
}
