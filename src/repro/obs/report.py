"""Per-round repair breakdown from a trace document.

This is the analysis layer behind ``repro report``: fold the span tree
emitted by a repair run (testbed or simulator — same schema) into one
:class:`RoundBreakdown` per repair round, splitting each round's time
into its migration and reconstruction components the way the paper's
Figs. 8-10 do, and render the result as a table (or JSON via ``-o``).

A round's *migration seconds* is the span from the round start to the
last migration action's completion (the STF node migrates serially, so
this is the migration chain's critical path); *reconstruction seconds*
likewise for reconstruction actions.  The round duration itself is the
round span's own length — slightly larger than either split because it
includes command issue and ACK collection overhead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .tracing import TraceDocument, TraceError, duration_of

#: schema version of the rendered report JSON
REPORT_SCHEMA_VERSION = 1


@dataclass
class RoundBreakdown:
    """Where one repair round's time went."""

    index: int
    duration: float
    migrations: int = 0
    reconstructions: int = 0
    migration_seconds: float = 0.0
    reconstruction_seconds: float = 0.0
    retries: int = 0

    @property
    def actions(self) -> int:
        return self.migrations + self.reconstructions

    def to_dict(self) -> dict:
        return {
            "round": self.index,
            "duration_s": self.duration,
            "actions": self.actions,
            "migrations": self.migrations,
            "reconstructions": self.reconstructions,
            "migration_s": self.migration_seconds,
            "reconstruction_s": self.reconstruction_seconds,
            "retries": self.retries,
        }


@dataclass
class RepairBreakdown:
    """A whole repair run, folded round by round."""

    rounds: List[RoundBreakdown] = field(default_factory=list)
    total_seconds: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def total_actions(self) -> int:
        return sum(r.actions for r in self.rounds)

    def to_dict(self) -> dict:
        return {
            "version": REPORT_SCHEMA_VERSION,
            "total_s": self.total_seconds,
            "attrs": dict(self.attrs),
            "rounds": [r.to_dict() for r in self.rounds],
        }


def breakdown_from_trace(
    trace: Union[TraceDocument, dict]
) -> RepairBreakdown:
    """Fold a trace document into per-round breakdowns.

    Raises:
        TraceError: if the document holds no ``repair`` span.
    """
    if not isinstance(trace, TraceDocument):
        trace = TraceDocument(trace)
    repairs = trace.named("repair")
    if not repairs:
        raise TraceError("trace holds no 'repair' span; nothing to report")
    # Multiple repair spans (crash/recover cycles) fold into one
    # breakdown: later incarnations re-report rounds they skipped as
    # already complete, so rounds are keyed — not appended — by index.
    breakdown = RepairBreakdown()
    rounds: Dict[int, RoundBreakdown] = {}
    for repair in repairs:
        breakdown.total_seconds += duration_of(repair)
        for key, value in repair["attrs"].items():
            breakdown.attrs.setdefault(key, value)
        for round_span in trace.children_of(repair["id"], "round"):
            index = int(round_span["attrs"].get("round", len(rounds)))
            duration = duration_of(round_span)
            entry = rounds.get(index)
            if entry is None:
                entry = rounds[index] = RoundBreakdown(index, 0.0)
            entry.duration += duration
            start = round_span["start"]
            for action in trace.children_of(round_span["id"], "action"):
                method = action["attrs"].get("method", "reconstruction")
                elapsed = (action.get("end") or start) - start
                entry.retries += int(action["attrs"].get("retries", 0))
                if method == "migration":
                    entry.migrations += 1
                    entry.migration_seconds = max(
                        entry.migration_seconds, elapsed
                    )
                else:
                    entry.reconstructions += 1
                    entry.reconstruction_seconds = max(
                        entry.reconstruction_seconds, elapsed
                    )
    breakdown.rounds = [rounds[i] for i in sorted(rounds)]
    return breakdown


def render_breakdown(breakdown: RepairBreakdown) -> str:
    """The ``repro report`` table."""
    header = (
        f"{'round':>5s} {'actions':>8s} {'migr':>6s} {'recon':>6s} "
        f"{'duration(s)':>12s} {'migration(s)':>13s} "
        f"{'reconstruction(s)':>18s} {'retries':>8s}"
    )
    lines = []
    attrs = breakdown.attrs
    if attrs:
        described = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        lines.append(f"repair: {described}")
    lines.append(header)
    for entry in breakdown.rounds:
        lines.append(
            f"{entry.index:>5d} {entry.actions:>8d} {entry.migrations:>6d} "
            f"{entry.reconstructions:>6d} {entry.duration:>12.3f} "
            f"{entry.migration_seconds:>13.3f} "
            f"{entry.reconstruction_seconds:>18.3f} {entry.retries:>8d}"
        )
    lines.append(
        f"total: {breakdown.total_seconds:.3f}s over "
        f"{len(breakdown.rounds)} rounds, {breakdown.total_actions} actions"
    )
    return "\n".join(lines)


def metrics_summary(metrics_doc: dict) -> str:
    """One-line-per-family summary of a ``--metrics-out`` JSON file."""
    lines = []
    for family in metrics_doc.get("metrics", []):
        name, kind = family["name"], family["type"]
        if kind == "counter" or kind == "gauge":
            total = sum(s["value"] for s in family["samples"])
            lines.append(f"{name:48s} {kind:10s} {total:.6g}")
        elif kind == "histogram":
            count = sum(s["count"] for s in family["samples"])
            total = sum(s["sum"] for s in family["samples"])
            mean = total / count if count else 0.0
            lines.append(
                f"{name:48s} {kind:10s} count={count} mean={mean:.6g}s"
            )
    return "\n".join(lines)


def load_report_inputs(
    trace_path: Union[str, Path],
    metrics_path: Optional[Union[str, Path]] = None,
):
    """Load the trace (and optional metrics) files ``repro report`` takes."""
    trace = TraceDocument.load(trace_path)
    metrics_doc = None
    if metrics_path is not None:
        metrics_doc = json.loads(Path(metrics_path).read_text())
    return trace, metrics_doc
