"""Tests for the paper-faithful cost-model simulator."""

import pytest

from repro.cluster import StorageCluster
from repro.core.analysis import AnalyticalModel
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    profile_from_cluster,
)
from repro.core.plan import RepairScenario
from repro.sim.cost_model import CostModelSimulator, evaluate_plan
from repro.sim.simulator import simulate_repair

CHUNK = 1000
BD = 100.0
BN = 250.0


def make_cluster(standby=3, seed=7):
    return StorageCluster.random(
        20,
        60,
        5,
        3,
        num_hot_standby=standby,
        seed=seed,
        disk_bandwidth=BD,
        network_bandwidth=BN,
        chunk_size=CHUNK,
    )


@pytest.fixture
def stf_setup():
    cluster = make_cluster()
    stf = max(cluster.storage_node_ids(), key=cluster.load_of)
    cluster.node(stf).mark_soon_to_fail()
    return cluster, stf


class TestCostModel:
    def test_migration_only_exact(self, stf_setup):
        cluster, stf = stf_setup
        plan = MigrationOnlyPlanner().plan(cluster, stf)
        result = evaluate_plan(cluster, plan)
        model = AnalyticalModel(
            num_nodes=cluster.num_storage_nodes,
            k=3,
            profile=profile_from_cluster(cluster),
        )
        expected = cluster.load_of(stf) * model.migration_time()
        assert result.total_time == pytest.approx(expected)

    def test_reconstruction_round_is_tr(self, stf_setup):
        cluster, stf = stf_setup
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        result = evaluate_plan(cluster, plan)
        model = AnalyticalModel(
            num_nodes=cluster.num_storage_nodes,
            k=3,
            profile=profile_from_cluster(cluster),
        )
        assert result.total_time == pytest.approx(
            plan.num_rounds * model.reconstruction_time()
        )

    def test_round_time_is_max_of_methods(self, stf_setup):
        cluster, stf = stf_setup
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        result = evaluate_plan(cluster, plan)
        model = AnalyticalModel(
            num_nodes=cluster.num_storage_nodes,
            k=3,
            profile=profile_from_cluster(cluster),
        )
        for round_, t in zip(plan.rounds, result.round_times):
            expected = 0.0
            if round_.cr:
                expected = model.reconstruction_time(groups=round_.cr)
            expected = max(expected, round_.cm * model.migration_time())
            assert t == pytest.approx(expected)

    def test_traffic_accounting(self, stf_setup):
        cluster, stf = stf_setup
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        result = evaluate_plan(cluster, plan)
        expected_tx = (
            plan.reconstructed_chunks * 3 + plan.migrated_chunks
        ) * CHUNK
        assert result.bytes_transferred == expected_tx
        assert result.bytes_written == plan.total_chunks * CHUNK

    def test_hot_standby_uses_eq6(self, stf_setup):
        cluster, stf = stf_setup
        plan = ReconstructionOnlyPlanner(
            scenario=RepairScenario.HOT_STANDBY, seed=0
        ).plan(cluster, stf)
        result = evaluate_plan(cluster, plan)
        model = AnalyticalModel(
            num_nodes=cluster.num_storage_nodes,
            k=3,
            profile=profile_from_cluster(cluster),
            hot_standby=cluster.num_hot_standby,
        )
        expected = sum(
            model.reconstruction_time(groups=r.cr) for r in plan.rounds
        )
        assert result.total_time == pytest.approx(expected)

    def test_event_sim_at_least_cost_model_scattered(self, stf_setup):
        # The cost model ignores interference; the DES charges it.
        cluster, stf = stf_setup
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        model_time = evaluate_plan(cluster, plan).total_time
        des_time = simulate_repair(cluster, plan).total_time
        assert des_time >= model_time * 0.85

    def test_k_prime_speeds_up(self, stf_setup):
        cluster, stf = stf_setup
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        base = evaluate_plan(cluster, plan).total_time
        # k' < k would mean fewer helper reads per repaired chunk; the
        # cost model must reflect the cheaper transfers.
        lrc_like = evaluate_plan(cluster, plan, k_prime=1).total_time
        assert lrc_like < base
