"""Erasure-coding substrate: GF(2^8), Reed-Solomon, and LRC codecs."""

from .codec import (
    DecodeError,
    ErasureCodec,
    RepairCost,
    make_codec,
    register_codec,
    registered_schemes,
)
from .galois import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_addmul_bytes,
    gf_matmul_bytes,
    gf_pow,
)
from .lrc import LocalReconstructionCodec
from .matrix import SingularMatrixError, cauchy, identity, invert, rank, vandermonde
from .msr import MsrCodec
from .reed_solomon import ReedSolomonCodec

__all__ = [
    "DecodeError",
    "ErasureCodec",
    "RepairCost",
    "LocalReconstructionCodec",
    "MsrCodec",
    "ReedSolomonCodec",
    "SingularMatrixError",
    "cauchy",
    "identity",
    "invert",
    "rank",
    "vandermonde",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_mul_bytes",
    "gf_addmul_bytes",
    "gf_matmul_bytes",
    "gf_pow",
    "make_codec",
    "register_codec",
    "registered_schemes",
]
