"""Matrix algebra over GF(2^8).

Provides the small dense-matrix operations needed by the Reed-Solomon
and LRC codecs: construction of Vandermonde and Cauchy matrices,
Gauss-Jordan inversion, rank, and systematic-form conversion.

Matrices are plain ``uint8`` numpy arrays; all arithmetic routes through
:mod:`repro.ec.galois`.
"""

from __future__ import annotations

import numpy as np

from .galois import GF_SIZE, gf_div, gf_inv, gf_mul, gf_pow


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


def identity(n: int) -> np.ndarray:
    """Return the n x n identity matrix over GF(2^8)."""
    return np.eye(n, dtype=np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return a ``rows x cols`` Vandermonde matrix ``V[i][j] = i^j``.

    Note that a raw Vandermonde matrix over GF(2^8) does *not*
    guarantee that every square submatrix is invertible; use
    :func:`systematize` (as Jerasure does) or :func:`cauchy` for MDS
    generator matrices.
    """
    if rows > GF_SIZE:
        raise ValueError(f"at most {GF_SIZE} rows supported, got {rows}")
    mat = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            mat[i, j] = gf_pow(i, j) if i > 0 else (1 if j == 0 else 0)
    return mat


def cauchy(rows: int, cols: int) -> np.ndarray:
    """Return a ``rows x cols`` Cauchy matrix over GF(2^8).

    Uses ``x_i = i`` (for rows) and ``y_j = rows + j`` (for columns);
    every square submatrix of a Cauchy matrix is invertible, which makes
    it directly usable as the parity part of a systematic MDS code.
    """
    if rows + cols > GF_SIZE:
        raise ValueError(
            f"rows + cols must be <= {GF_SIZE} for distinct Cauchy points"
        )
    mat = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            mat[i, j] = gf_inv(i ^ (rows + j))
    return mat


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two coefficient matrices over GF(2^8)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            acc = 0
            for t in range(a.shape[1]):
                acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


def invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises:
        SingularMatrixError: if the matrix is not invertible.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    n, m = matrix.shape
    if n != m:
        raise ValueError(f"cannot invert non-square matrix {matrix.shape}")
    # Work on [A | I] with int rows for convenience.
    work = np.concatenate([matrix.astype(np.int32), np.eye(n, dtype=np.int32)], axis=1)
    for col in range(n):
        # Find pivot.
        pivot_row = next((r for r in range(col, n) if work[r, col] != 0), None)
        if pivot_row is None:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
        # Scale pivot row to make the pivot 1.
        pivot = int(work[col, col])
        if pivot != 1:
            for j in range(2 * n):
                work[col, j] = gf_div(int(work[col, j]), pivot)
        # Eliminate the column from every other row.
        for r in range(n):
            if r == col or work[r, col] == 0:
                continue
            factor = int(work[r, col])
            for j in range(2 * n):
                work[r, j] ^= gf_mul(factor, int(work[col, j]))
    return work[:, n:].astype(np.uint8)


def rank(matrix: np.ndarray) -> int:
    """Return the rank of a matrix over GF(2^8)."""
    work = np.asarray(matrix, dtype=np.int32).copy()
    rows, cols = work.shape
    r = 0
    for col in range(cols):
        pivot_row = next((i for i in range(r, rows) if work[i, col] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            work[[r, pivot_row]] = work[[pivot_row, r]]
        pivot = int(work[r, col])
        for j in range(cols):
            work[r, j] = gf_div(int(work[r, j]), pivot)
        for i in range(rows):
            if i == r or work[i, col] == 0:
                continue
            factor = int(work[i, col])
            for j in range(cols):
                work[i, j] ^= gf_mul(factor, int(work[r, j]))
        r += 1
        if r == rows:
            break
    return r


def systematize(generator: np.ndarray, k: int) -> np.ndarray:
    """Convert an ``n x k`` generator matrix to systematic form.

    The returned matrix has the identity in its first ``k`` rows and
    spans the same code (each row remains a valid codeword position).
    This mirrors Jerasure's construction of a systematic Vandermonde RS
    generator.

    Raises:
        SingularMatrixError: if the top k x k block cannot be made
            invertible (the input is not a valid MDS generator).
    """
    generator = np.asarray(generator, dtype=np.uint8)
    n = generator.shape[0]
    if generator.shape[1] != k:
        raise ValueError(f"expected {k} columns, got {generator.shape[1]}")
    if n < k:
        raise ValueError(f"generator must have at least k={k} rows")
    top = generator[:k, :]
    inv_top = invert(top)
    systematic = matmul(generator, inv_top)
    # Clean numerical noise: the top block must be exactly identity.
    if not np.array_equal(systematic[:k, :], identity(k)):
        raise SingularMatrixError("systematization failed to yield identity")
    return systematic


def is_mds(generator: np.ndarray, k: int) -> bool:
    """Check the MDS property: every k x k submatrix is invertible.

    Exhaustive over all row subsets, so only usable for small ``n``
    (tests use it for the code parameters in the paper, n <= 16).
    """
    from itertools import combinations

    generator = np.asarray(generator, dtype=np.uint8)
    n = generator.shape[0]
    for rows in combinations(range(n), k):
        if rank(generator[list(rows), :]) != k:
            return False
    return True
