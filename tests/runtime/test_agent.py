"""Tests for the repair agent's protocol handling."""

import queue
import time

import numpy as np
import pytest

from repro.ec.galois import gf_mul
from repro.runtime.agent import Agent, AgentError
from repro.runtime.datanode import ChunkStore
from repro.runtime.messages import (
    DataPacket,
    ReceiveCommand,
    RepairAck,
    SendCommand,
    WriteComplete,
)
from repro.runtime.throttle import RateLimiter
from repro.runtime.transport import Network

COORD = -1


@pytest.fixture
def rig(tmp_path):
    """Two agents (0 sender, 1 receiver) plus a coordinator endpoint."""
    net = Network()
    coord = net.attach(COORD, None)
    agents = {}
    for node_id in (0, 1):
        net.attach(node_id, None)
        store = ChunkStore(tmp_path / f"n{node_id}", node_id, RateLimiter(None))
        agents[node_id] = Agent(node_id, store, net, COORD, pipeline_depth=2)
        agents[node_id].start()
    yield net, coord, agents
    for agent in agents.values():
        agent.stop()


def wait_ack(coord, timeout=10.0):
    return coord.inbox.get(timeout=timeout)


class TestMigrationPath:
    def test_chunk_moves_and_acks(self, rig):
        net, coord, agents = rig
        payload = bytes(range(256)) * 16  # 4096 bytes
        agents[0].store.put(7, payload)
        net.send(
            COORD,
            1,
            ReceiveCommand(
                stripe_id=7,
                chunk_index=2,
                chunk_size=len(payload),
                packet_size=1024,
                sources={0: 1},
            ),
        )
        net.send(
            COORD,
            0,
            SendCommand(stripe_id=7, chunk_index=2, destination=1, packet_size=1024),
        )
        ack = wait_ack(coord)
        assert ack == RepairAck(7, 2, 1)
        assert agents[1].store.read(7) == payload
        assert not agents[0].errors and not agents[1].errors

    def test_single_packet_no_pipelining(self, rig):
        net, coord, agents = rig
        payload = b"z" * 512
        agents[0].store.put(3, payload)
        net.send(
            COORD,
            1,
            ReceiveCommand(3, 0, len(payload), len(payload), sources={0: 1}),
        )
        net.send(COORD, 0, SendCommand(3, 0, 1, len(payload)))
        wait_ack(coord)
        assert agents[1].store.read(3) == payload


class TestReconstructionPath:
    def test_coefficients_applied(self, tmp_path):
        net = Network()
        coord = net.attach(COORD, None)
        agents = {}
        for node_id in (0, 1, 2):
            net.attach(node_id, None)
            store = ChunkStore(tmp_path / f"n{node_id}", node_id, RateLimiter(None))
            agents[node_id] = Agent(node_id, store, net, COORD)
            agents[node_id].start()
        try:
            a = bytes([5] * 128)
            b = bytes([9] * 128)
            agents[0].store.put(4, a)
            agents[1].store.put(4, b)
            coeffs = {0: 3, 1: 7}
            net.send(
                COORD, 2, ReceiveCommand(4, 1, 128, 64, sources=coeffs)
            )
            net.send(COORD, 0, SendCommand(4, 1, 2, 64))
            net.send(COORD, 1, SendCommand(4, 1, 2, 64))
            ack = coord.inbox.get(timeout=10)
            assert ack.key == (4, 1)
            expected = gf_mul(3, 5) ^ gf_mul(7, 9)
            assert agents[2].store.read(4) == bytes([expected] * 128)
        finally:
            for agent in agents.values():
                agent.stop()


class TestSynchronousRoundTrip:
    def test_sender_waits_for_write_complete(self, rig):
        net, coord, agents = rig
        payload = b"a" * 2048
        agents[0].store.put(1, payload)
        agents[0].store.put(2, payload)
        for stripe in (1, 2):
            net.send(
                COORD, 1, ReceiveCommand(stripe, 0, 2048, 512, sources={0: 1})
            )
            net.send(COORD, 0, SendCommand(stripe, 0, 1, 512))
        acks = {wait_ack(coord).key for _ in range(2)}
        assert acks == {(1, 0), (2, 0)}


class TestErrors:
    def test_early_packet_buffers_until_command(self, rig):
        """Packets racing ahead of their ReceiveCommand are not lost."""
        net, coord, agents = rig
        payload = b"e" * 256
        # Data first (as can happen on a pipelined path)...
        net.send(0, 1, DataPacket(9, 0, 0, 0, payload))
        time.sleep(0.05)
        assert not agents[1].errors
        # ...then the command arrives and drains the buffer.
        net.send(
            COORD, 1, ReceiveCommand(9, 0, 256, 256, sources={0: 1})
        )
        ack = wait_ack(coord)
        assert ack.key == (9, 0)
        assert agents[1].store.read(9) == payload

    def test_stop_is_idempotent(self, rig):
        net, coord, agents = rig
        agents[0].stop()
        agents[0].stop()
