"""Tests for the experiment result containers."""

import math

import pytest

from repro.bench.harness import Experiment, Panel, Series, average_runs, reduction


class TestPanel:
    def test_add_point_builds_series(self):
        panel = Panel("p", "x")
        panel.add_point(1, {"a": 1.0, "b": 2.0})
        panel.add_point(2, {"a": 3.0, "b": 4.0})
        assert panel.xticks == ["1", "2"]
        assert panel.values_of("a") == [1.0, 3.0]
        assert panel.values_of("b") == [2.0, 4.0]

    def test_unknown_series(self):
        panel = Panel("p", "x")
        panel.add_point(1, {"a": 1.0})
        with pytest.raises(KeyError):
            panel.values_of("zzz")

    def test_render_contains_data(self):
        panel = Panel("Fig X", "nodes")
        panel.add_point(10, {"fastpr": 0.5})
        text = panel.render()
        assert "Fig X" in text
        assert "fastpr" in text
        assert "0.5000" in text

    def test_get_missing_returns_none(self):
        assert Panel("p", "x").get("a") is None


class TestExperiment:
    def test_panel_lookup(self):
        exp = Experiment("fig0", "t")
        exp.panels.append(Panel("alpha", "x"))
        assert exp.panel("alpha").title == "alpha"
        with pytest.raises(KeyError):
            exp.panel("beta")

    def test_render_includes_all_panels(self):
        exp = Experiment("fig0", "title")
        for name in ("one", "two"):
            panel = Panel(name, "x")
            panel.add_point(0, {"s": 1.0})
            exp.panels.append(panel)
        text = exp.render()
        assert "fig0" in text
        assert "one" in text and "two" in text


class TestHelpers:
    def test_average_runs(self):
        assert average_runs([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            average_runs([])

    def test_reduction(self):
        assert reduction(2.0, 1.0) == pytest.approx(0.5)
        assert reduction(2.0, 2.0) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            reduction(0.0, 1.0)
