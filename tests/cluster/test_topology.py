"""Tests for rack topology and rack-aware placement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import StorageCluster
from repro.cluster.topology import (
    RackAwarePlacement,
    RackTopology,
    RackViolationError,
    verify_rack_tolerance,
)


@pytest.fixture
def topology():
    return RackTopology.uniform(list(range(12)), num_racks=4)


class TestRackTopology:
    def test_uniform_spread(self, topology):
        assert topology.num_racks == 4
        for rack in topology.racks():
            assert len(topology.nodes_in_rack(rack)) == 3

    def test_rack_counts(self, topology):
        counts = topology.rack_counts([0, 4, 8, 1])
        assert counts == {0: 3, 1: 1}

    def test_needs_a_rack(self):
        with pytest.raises(ValueError):
            RackTopology.uniform([0, 1], 0)


class TestRackAwarePlacement:
    def test_respects_per_rack_bound(self, topology):
        cluster = StorageCluster(12)
        policy = RackAwarePlacement(topology, max_per_rack=1, seed=0)
        for _ in range(20):
            placement = policy.choose(cluster, 4)
            cluster.add_stripe(4, 2, placement)
            counts = topology.rack_counts(placement)
            assert max(counts.values()) == 1

    def test_wider_stripes_need_bigger_bound(self, topology):
        cluster = StorageCluster(12)
        policy = RackAwarePlacement(topology, max_per_rack=1, seed=0)
        with pytest.raises(ValueError, match="capacity"):
            policy.choose(cluster, 5)
        relaxed = RackAwarePlacement(topology, max_per_rack=2, seed=0)
        placement = relaxed.choose(cluster, 5)
        assert max(topology.rack_counts(placement).values()) <= 2

    def test_populate_and_verify(self, topology):
        cluster = StorageCluster(12)
        RackAwarePlacement(topology, max_per_rack=2, seed=1).populate(
            cluster, 25, 5, 3
        )
        cluster.verify_fault_tolerance()
        # n - k = 2: a rack loss never exceeds the code's tolerance.
        verify_rack_tolerance(cluster, topology)

    def test_balances_load(self, topology):
        from repro.cluster import placement_balance

        cluster = StorageCluster(12)
        RackAwarePlacement(topology, max_per_rack=1, seed=2).populate(
            cluster, 30, 4, 2
        )
        assert placement_balance(cluster) < 1.3

    def test_bad_bound(self, topology):
        with pytest.raises(ValueError):
            RackAwarePlacement(topology, max_per_rack=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16), st.integers(2, 5))
    def test_property_bound_holds(self, seed, racks):
        topology = RackTopology.uniform(list(range(15)), racks)
        cluster = StorageCluster(15)
        policy = RackAwarePlacement(topology, max_per_rack=2, seed=seed)
        n = min(5, racks * 2)
        placement = policy.choose(cluster, n)
        assert len(set(placement)) == n
        assert max(topology.rack_counts(placement).values()) <= 2


class TestVerifyRackTolerance:
    def test_violation_detected(self, topology):
        cluster = StorageCluster(12)
        # All four chunks in rack 0 (nodes 0, 4, 8 are rack 0; add 1).
        cluster.add_stripe(4, 2, [0, 4, 8, 1])
        with pytest.raises(RackViolationError, match="stripe 0"):
            verify_rack_tolerance(cluster, topology)

    def test_explicit_bound(self, topology):
        cluster = StorageCluster(12)
        cluster.add_stripe(4, 2, [0, 4, 1, 5])  # two per rack 0 and 1
        verify_rack_tolerance(cluster, topology, max_per_rack=2)
        with pytest.raises(RackViolationError):
            verify_rack_tolerance(cluster, topology, max_per_rack=1)
