"""Cluster-lifetime simulation: prediction, repair and upkeep over months.

Ties the whole reproduction together the way an operator would run it:
SMART telemetry streams in daily; the predictor raises soon-to-fail
alarms; each alarm triggers a predictive repair (FastPR by default)
that is timed with the cost model and committed to the metadata;
unpredicted failures fall back to reactive repair; repaired nodes are
decommissioned; and the rebalancer periodically evens the chunk
distribution (the paper's background-rebalance assumption).

The resulting :class:`TimelineReport` aggregates what the paper's
motivation cares about: how much repair time — and therefore window of
vulnerability — predictive repair saved over the horizon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cluster.cluster import StorageCluster
from ..cluster.rebalance import Rebalancer
from ..core.plan import RepairPlan, RepairScenario
from ..core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    apply_plan,
)
from ..core.reactive import plan_failed_node_repair
from ..failure.monitor import ClusterFailureMonitor, MissedFailure, StfEvent
from ..failure.predictor import FailurePredictor
from ..failure.smart import DiskTrace
from .cost_model import evaluate_plan

PLANNERS = {
    "fastpr": FastPRPlanner,
    "reconstruction": ReconstructionOnlyPlanner,
    "migration": MigrationOnlyPlanner,
}


class EventKind(enum.Enum):
    PREDICTIVE_REPAIR = "predictive_repair"
    REACTIVE_REPAIR = "reactive_repair"
    REBALANCE = "rebalance"


@dataclass(frozen=True)
class TimelineEvent:
    """One operational event over the horizon."""

    day: int
    kind: EventKind
    node_id: int
    chunks: int = 0
    repair_time: float = 0.0
    #: lead time in days for predictive repairs (None: false alarm)
    lead_days: Optional[int] = None
    moves: int = 0


@dataclass
class TimelineReport:
    """Aggregated outcome of a lifetime run."""

    events: List[TimelineEvent] = field(default_factory=list)

    def of_kind(self, kind: EventKind) -> List[TimelineEvent]:
        return [e for e in self.events if e.kind is kind]

    @property
    def predictive_repairs(self) -> List[TimelineEvent]:
        return self.of_kind(EventKind.PREDICTIVE_REPAIR)

    @property
    def reactive_repairs(self) -> List[TimelineEvent]:
        return self.of_kind(EventKind.REACTIVE_REPAIR)

    @property
    def total_repair_time(self) -> float:
        return sum(e.repair_time for e in self.events)

    @property
    def total_chunks_repaired(self) -> int:
        return sum(e.chunks for e in self.events)

    @property
    def false_alarm_repairs(self) -> List[TimelineEvent]:
        return [
            e for e in self.predictive_repairs if e.lead_days is None
        ]

    def summary(self) -> str:
        return (
            f"TimelineReport(predictive={len(self.predictive_repairs)}, "
            f"reactive={len(self.reactive_repairs)}, "
            f"false_alarms={len(self.false_alarm_repairs)}, "
            f"chunks={self.total_chunks_repaired}, "
            f"repair_time={self.total_repair_time:.0f}s)"
        )


class ClusterLifetime:
    """Runs a cluster through a telemetry horizon with automated upkeep.

    Args:
        cluster: the cluster; mutated in place.
        traces: one disk trace per storage node.
        predictor: soon-to-fail classifier.
        planner: "fastpr" | "reconstruction" | "migration" — the
            strategy used for predictive repairs (reactive repairs are
            always reconstruction-only: a dead node cannot migrate).
        scenario: scattered or hot-standby repair.
        rebalance_every: run the background rebalancer every N days
            after the first repair (0 disables).
        group_size: Algorithm 1 chunk-grouping (planner speed knob).
        seed: planner randomization.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        traces: Sequence[DiskTrace],
        predictor: FailurePredictor,
        planner: str = "fastpr",
        scenario: RepairScenario = RepairScenario.SCATTERED,
        rebalance_every: int = 0,
        group_size: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        if planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose from {sorted(PLANNERS)}"
            )
        self.cluster = cluster
        self.traces = list(traces)
        self.predictor = predictor
        self.planner_name = planner
        self.scenario = scenario
        self.rebalance_every = rebalance_every
        self.group_size = group_size
        self.seed = seed
        self._last_rebalance_day: Optional[int] = None

    def _make_planner(self):
        cls = PLANNERS[self.planner_name]
        kwargs = {"scenario": self.scenario, "seed": self.seed}
        if cls is not MigrationOnlyPlanner and self.group_size:
            kwargs["group_size"] = self.group_size
        return cls(**kwargs)

    def run(self) -> TimelineReport:
        """Replay the horizon; returns the event log and aggregates."""
        report = TimelineReport()

        def on_stf(event: StfEvent) -> Optional[RepairPlan]:
            plan = self._make_planner().plan(self.cluster, event.node_id)
            result = evaluate_plan(self.cluster, plan)
            apply_plan(self.cluster, plan)
            self.cluster.decommission(event.node_id)
            self._turn_over_standbys()
            report.events.append(
                TimelineEvent(
                    day=event.day,
                    kind=EventKind.PREDICTIVE_REPAIR,
                    node_id=event.node_id,
                    chunks=plan.total_chunks,
                    repair_time=result.total_time,
                    lead_days=event.lead_days,
                )
            )
            self._maybe_rebalance(event.day, report)
            return plan

        def on_failure(missed: MissedFailure) -> None:
            plan = plan_failed_node_repair(
                self.cluster,
                missed.node_id,
                scenario=self.scenario,
                seed=self.seed,
            )
            result = evaluate_plan(self.cluster, plan)
            apply_plan(self.cluster, plan)
            self._turn_over_standbys()
            report.events.append(
                TimelineEvent(
                    day=missed.day,
                    kind=EventKind.REACTIVE_REPAIR,
                    node_id=missed.node_id,
                    chunks=plan.total_chunks,
                    repair_time=result.total_time,
                )
            )
            self._maybe_rebalance(missed.day, report)

        monitor = ClusterFailureMonitor(
            self.cluster, self.traces, self.predictor
        )
        monitor.run(on_stf=on_stf, on_failure=on_failure)
        self.cluster.verify_fault_tolerance()
        return report

    def _turn_over_standbys(self) -> None:
        """After a hot-standby repair, the standbys go into service.

        The paper's standby nodes "take over the service of the STF
        node after repair" (Section II-C); the operator then racks
        replacement standbys, keeping ``h`` constant for the next
        repair.
        """
        if self.scenario is not RepairScenario.HOT_STANDBY:
            return
        consumed = self.cluster.hot_standby_ids()
        for node_id in consumed:
            self.cluster.promote_standby(node_id)
        if consumed:
            self.cluster.add_hot_standby(len(consumed))

    def _maybe_rebalance(self, day: int, report: TimelineReport) -> None:
        if not self.rebalance_every:
            return
        if (
            self._last_rebalance_day is not None
            and day - self._last_rebalance_day < self.rebalance_every
        ):
            return
        moves = Rebalancer(seed=self.seed).run(self.cluster)
        self._last_rebalance_day = day
        if moves:
            report.events.append(
                TimelineEvent(
                    day=day,
                    kind=EventKind.REBALANCE,
                    node_id=-1,
                    moves=len(moves),
                )
            )
