"""Pin the public API surface of the ``repro`` package.

The names exported from ``repro/__init__.py`` are the stable contract
users (and the examples) program against; everything deeper is
implementation detail.  This snapshot makes any surface change — a
removed export, an accidental new one, a renamed alias — an explicit
diff in review rather than a silent break.
"""

from __future__ import annotations

import repro

# The snapshot. Extending the surface means updating this list — a
# deliberate act — and removals should ring loud alarm bells.
PUBLIC_API = [
    # erasure coding
    "ErasureCodec",
    "LocalReconstructionCodec",
    "MsrCodec",
    "ReedSolomonCodec",
    "make_codec",
    # cluster model
    "ChunkLocation",
    "RackTopology",
    "StorageCluster",
    "Stripe",
    # planning + analysis
    "AnalyticalModel",
    "BandwidthProfile",
    "BudgetTimeout",
    "FastPRPlanner",
    "HelperBudget",
    "MigrationOnlyPlanner",
    "ReconstructionOnlyPlanner",
    "RepairPlan",
    "RepairRound",
    "RepairScenario",
    "ShardMap",
    "find_reconstruction_sets",
    "split_plan",
    "stagger_concurrent_plans",
    # emulated runtime backend
    "Agent",
    "Coordinator",
    "CoordinatorCrash",
    "DaemonCrash",
    "DaemonCrashFault",
    "DomainCrashFault",
    "EmulatedTestbed",
    "FaultPlan",
    "MultiCoordinator",
    "MultiRepairResult",
    "RepairAgent",
    "RepairDaemon",
    "RepairFailedError",
    "RuntimeConfig",
    "Scrubber",
    "ShardFailedError",
    "StorageClient",
    "TakeoverEvent",
    "ShmNetwork",
    "TcpNetwork",
    "Testbed",
    # unified repair-session front door
    "PIPELINING_MODES",
    "RepairSession",
    "RepairSummary",
    "apply_pipelining",
    # client-facing object gateway
    "GatewayError",
    "GatewayServer",
    "ObjectClient",
    "ObjectManifest",
    "ObjectStore",
    "TrafficArbiter",
    # simulator backend
    "LifetimeConfig",
    "LifetimeReport",
    "RepairSimulator",
    "ShardedRepairResult",
    "TraceReplayProcess",
    "WeibullFailureProcess",
    "durability_study",
    "run_lifetime",
    "simulate_repair",
    "simulate_sharded_repair",
    # observability
    "MetricsRegistry",
    "Tracer",
    "__version__",
]


def test_all_matches_snapshot():
    assert sorted(repro.__all__) == sorted(PUBLIC_API)


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_stable_aliases():
    # Paper-vocabulary aliases point at the implementation classes.
    assert repro.Testbed is repro.EmulatedTestbed
    assert repro.RepairAgent is repro.Agent


def test_exports_come_from_repro_modules():
    for name in repro.__all__:
        obj = getattr(repro, name)
        module = getattr(obj, "__module__", "repro")
        assert module.startswith("repro"), f"{name} leaks {module}"


def test_deprecated_net_drivers_removed():
    # The PR-8 one-release DeprecationWarning shims are gone: the
    # per-transport drivers live only in repro.net.launch, and
    # RepairSession is the supported way to drive a repair.
    import repro.net as net

    for name in ("run_tcp_repair", "run_shm_repair",
                 "run_tcp_multicoord_repair"):
        assert not hasattr(net, name), name
        assert name not in net.__all__, name


def test_obs_surface():
    # The observability names the CLI and bench harness program against.
    from repro import obs

    for name in (
        "MetricsRegistry",
        "Tracer",
        "SimClock",
        "TraceDocument",
        "breakdown_from_trace",
        "render_breakdown",
        "parse_prometheus",
    ):
        assert name in obs.__all__, name
