"""Tests for the systematic Reed-Solomon codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.codec import DecodeError
from repro.ec.galois import gf_mul
from repro.ec.matrix import is_mds
from repro.ec.reed_solomon import ReedSolomonCodec


def random_chunks(k: int, size: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8).tobytes() for _ in range(k)]


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(3, 3)
        with pytest.raises(ValueError):
            ReedSolomonCodec(3, 0)
        with pytest.raises(ValueError):
            ReedSolomonCodec(2, 3)
        with pytest.raises(ValueError):
            ReedSolomonCodec(256, 250)

    def test_generator_is_systematic(self):
        codec = ReedSolomonCodec(9, 6)
        gen = codec.generator_matrix
        assert np.array_equal(gen[:6], np.eye(6, dtype=np.uint8))

    def test_generator_is_mds_small(self):
        codec = ReedSolomonCodec(6, 3)
        assert is_mds(codec.generator_matrix, 3)

    def test_storage_overhead(self):
        assert ReedSolomonCodec(9, 6).storage_overhead == pytest.approx(1.5)

    def test_single_repair_cost(self):
        cost = ReedSolomonCodec(14, 10).single_repair_cost()
        assert cost.helpers == 10
        assert cost.traffic_chunks == 10.0


class TestEncode:
    def test_systematic_prefix(self):
        codec = ReedSolomonCodec(5, 3)
        data = random_chunks(3, 64)
        coded = codec.encode(data)
        assert len(coded) == 5
        assert coded[:3] == data

    def test_wrong_chunk_count(self):
        codec = ReedSolomonCodec(5, 3)
        with pytest.raises(ValueError):
            codec.encode(random_chunks(2, 64))

    def test_unequal_sizes(self):
        codec = ReedSolomonCodec(5, 3)
        chunks = random_chunks(3, 64)
        chunks[1] = chunks[1][:32]
        with pytest.raises(ValueError):
            codec.encode(chunks)

    def test_parity_is_linear(self):
        codec = ReedSolomonCodec(5, 3)
        zero = [b"\x00" * 16] * 3
        coded = codec.encode(zero)
        assert all(c == b"\x00" * 16 for c in coded)


class TestDecode:
    def test_all_erasure_patterns_rs_5_3(self):
        codec = ReedSolomonCodec(5, 3)
        data = random_chunks(3, 128, seed=5)
        coded = codec.encode(data)
        for survivors in itertools.combinations(range(5), 3):
            available = {i: coded[i] for i in survivors}
            lost = [i for i in range(5) if i not in survivors]
            rebuilt = codec.decode(available, lost)
            for i in lost:
                assert rebuilt[i] == coded[i], f"pattern {survivors}, chunk {i}"

    def test_decode_rs_9_6_single_loss(self):
        codec = ReedSolomonCodec(9, 6)
        coded = codec.encode(random_chunks(6, 256, seed=9))
        for lost in range(9):
            available = {i: coded[i] for i in range(9) if i != lost}
            rebuilt = codec.decode(available, [lost])
            assert rebuilt[lost] == coded[lost]

    def test_decode_wanted_already_available(self):
        codec = ReedSolomonCodec(5, 3)
        coded = codec.encode(random_chunks(3, 32))
        out = codec.decode({0: coded[0], 1: coded[1], 2: coded[2]}, [1])
        assert out[1] == coded[1]

    def test_insufficient_chunks(self):
        codec = ReedSolomonCodec(5, 3)
        coded = codec.encode(random_chunks(3, 32))
        with pytest.raises(DecodeError):
            codec.decode({0: coded[0], 1: coded[1]}, [4])

    def test_bad_index(self):
        codec = ReedSolomonCodec(5, 3)
        coded = codec.encode(random_chunks(3, 32))
        with pytest.raises(ValueError):
            codec.decode({i: coded[i] for i in range(3)}, [7])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 64))
    def test_roundtrip_random(self, seed, size):
        codec = ReedSolomonCodec(6, 4)
        data = random_chunks(4, size, seed=seed)
        coded = codec.encode(data)
        available = {i: coded[i] for i in (1, 3, 4, 5)}
        rebuilt = codec.decode(available, [0, 2])
        assert rebuilt[0] == coded[0]
        assert rebuilt[2] == coded[2]


class TestRepairHelpers:
    def test_returns_k_survivors(self):
        codec = ReedSolomonCodec(9, 6)
        helpers = codec.repair_helpers(2, list(range(9)))
        assert len(helpers) == 6
        assert 2 not in helpers

    def test_too_few_survivors(self):
        codec = ReedSolomonCodec(9, 6)
        with pytest.raises(DecodeError):
            codec.repair_helpers(0, [0, 1, 2, 3])


class TestRecoveryCoefficients:
    def test_streaming_repair_equals_lost_chunk(self):
        codec = ReedSolomonCodec(9, 6)
        coded = codec.encode(random_chunks(6, 128, seed=3))
        for lost in (0, 5, 8):
            helpers = [i for i in range(9) if i != lost][:6]
            coeffs = codec.recovery_coefficients(lost, helpers)
            acc = np.zeros(128, dtype=np.uint8)
            for helper, coeff in coeffs.items():
                chunk = np.frombuffer(coded[helper], dtype=np.uint8)
                table = np.array(
                    [gf_mul(coeff, v) for v in range(256)], dtype=np.uint8
                )
                acc ^= table[chunk]
            assert acc.tobytes() == coded[lost]

    def test_wrong_helper_count(self):
        codec = ReedSolomonCodec(5, 3)
        with pytest.raises(DecodeError):
            codec.recovery_coefficients(0, [1, 2])

    def test_duplicate_helpers(self):
        codec = ReedSolomonCodec(5, 3)
        with pytest.raises(DecodeError):
            codec.recovery_coefficients(0, [1, 1, 2])

    def test_lost_in_helpers(self):
        codec = ReedSolomonCodec(5, 3)
        with pytest.raises(DecodeError):
            codec.recovery_coefficients(1, [1, 2, 3])

    def test_systematic_chunk_from_data_chunks(self):
        # Rebuilding a parity chunk from the k data chunks uses the
        # generator row directly.
        codec = ReedSolomonCodec(5, 3)
        coeffs = codec.recovery_coefficients(4, [0, 1, 2])
        gen = codec.generator_matrix
        assert [coeffs[i] for i in range(3)] == [int(v) for v in gen[4]]
