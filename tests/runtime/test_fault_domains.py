"""Failure domains: machine/rack topology and correlated crash faults."""

import pytest

from repro.cluster.topology import DOMAIN_KINDS, RackTopology
from repro.runtime.faults import CrashFault, DomainCrashFault, FaultPlan


# ----------------------------------------------------------------------
# topology domains
# ----------------------------------------------------------------------


class TestMachineDomains:
    def test_uniform_without_machines(self):
        topo = RackTopology.uniform(list(range(6)), 3)
        assert topo.machine_of is None
        assert topo.machines() == []
        assert topo.nodes_in_machine(0) == []

    def test_uniform_with_machines(self):
        topo = RackTopology.uniform(list(range(8)), 2, nodes_per_machine=2)
        # Machines are dealt round-robin onto racks, never straddling.
        assert topo.machines() == [0, 1, 2, 3]
        for machine in topo.machines():
            racks = {topo.rack_of[n] for n in topo.nodes_in_machine(machine)}
            assert len(racks) == 1, f"machine {machine} straddles racks"
        assert topo.nodes_in_machine(0) == [0, 1]

    def test_nodes_in_domain(self):
        topo = RackTopology.uniform(list(range(8)), 2, nodes_per_machine=2)
        assert set(DOMAIN_KINDS) == {"rack", "machine"}
        assert topo.nodes_in_domain("rack", 0) == topo.nodes_in_rack(0)
        assert topo.nodes_in_domain("machine", 1) == topo.nodes_in_machine(1)
        with pytest.raises(ValueError):
            topo.nodes_in_domain("datacenter", 0)

    def test_machine_domain_requires_machine_map(self):
        topo = RackTopology.uniform(list(range(6)), 3)
        with pytest.raises(ValueError):
            topo.nodes_in_domain("machine", 0)


# ----------------------------------------------------------------------
# domain crash faults
# ----------------------------------------------------------------------


class TestDomainCrashFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            DomainCrashFault(kind="datacenter", index=0)
        with pytest.raises(ValueError):
            DomainCrashFault(kind="rack", index=0, at_time=-1.0)
        with pytest.raises(ValueError):
            DomainCrashFault(kind="rack", index=0, coordinators=(-1,))
        fault = DomainCrashFault(
            kind="rack", index=1, at_time=2.0, coordinators=[1, 0]
        )
        assert fault.coordinators == (1, 0)

    def test_resolve_domains_expands_to_node_crashes(self):
        topo = RackTopology.uniform(list(range(9)), 3)
        plan = FaultPlan(
            domain_crashes=[
                DomainCrashFault(kind="rack", index=1, at_time=3.0)
            ]
        )
        resolved = plan.resolve_domains(topo)
        crashed = {c.node for c in resolved.crashes}
        assert crashed == set(topo.nodes_in_rack(1))
        assert all(c.at_time == 3.0 for c in resolved.crashes)
        # Domain entries survive so injectors can fire coordinator kills.
        assert resolved.domain_crashes == plan.domain_crashes

    def test_resolve_domains_skips_already_crashed_nodes(self):
        topo = RackTopology.uniform(list(range(6)), 2)
        plan = FaultPlan(
            crashes=[CrashFault(node=0, at_time=0.5)],
            domain_crashes=[
                DomainCrashFault(kind="rack", index=0, at_time=9.0)
            ],
        )
        resolved = plan.resolve_domains(topo)
        zero = [c for c in resolved.crashes if c.node == 0]
        assert len(zero) == 1 and zero[0].at_time == 0.5

    def test_round_trip_through_dict(self):
        plan = FaultPlan(
            domain_crashes=[
                DomainCrashFault(
                    kind="machine", index=2, at_time=1.5, coordinators=(0,)
                )
            ],
            seed=9,
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.domain_crashes == plan.domain_crashes


# ----------------------------------------------------------------------
# load-time node validation (satellite)
# ----------------------------------------------------------------------


class TestLoadTimeValidation:
    def test_from_dict_rejects_unknown_crash_targets(self):
        document = FaultPlan(
            crashes=[CrashFault(node=99, at_time=1.0)]
        ).to_dict()
        with pytest.raises(ValueError, match="unknown node"):
            FaultPlan.from_dict(document, node_ids=range(10))

    def test_from_dict_accepts_known_targets(self):
        document = FaultPlan(
            crashes=[CrashFault(node=3, at_time=1.0)]
        ).to_dict()
        plan = FaultPlan.from_dict(document, node_ids=range(10))
        assert plan.crashes[0].node == 3

    def test_validate_nodes_names_the_offenders(self):
        plan = FaultPlan(
            crashes=[
                CrashFault(node=7, at_time=0.0),
                CrashFault(node=42, at_time=0.0),
            ]
        )
        with pytest.raises(ValueError, match="42"):
            plan.validate_nodes([7, 8, 9])
        plan.validate_nodes([7, 42])  # fine when all known
