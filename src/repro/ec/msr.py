"""Product-matrix Minimum-Storage Regenerating (MSR) codes.

The paper's related work (Section II-A) cites MSR codes [8], [29],
[32], [40] as the storage-optimal family that minimizes single-chunk
repair traffic: instead of reading ``k`` whole chunks, a repair
contacts ``d`` helpers that each send a small *sub-symbol*, for total
traffic well below ``k`` chunks.  This module implements the classic
product-matrix MSR construction of Rashmi, Shah and Kumar (IEEE T-IT
2011) at the ``d = 2k - 2`` point over GF(2^8):

* every node stores ``α = k - 1`` sub-chunks (same total size as RS);
* the ``B = k(k-1)`` message sub-symbols fill two symmetric
  ``α x α`` matrices ``S1, S2``;
* node ``i`` with encoding row ``ψ_i = [φ_i, λ_i φ_i]`` stores
  ``φ_i^T S1 + λ_i φ_i^T S2``, where ``φ_i`` is a Vandermonde row in
  ``x_i`` and ``λ_i = x_i^α``;
* **repair**: each of ``d`` helpers sends the scalar product of its
  stored row with ``φ_f`` — one sub-chunk each, so repair traffic is
  ``d / α = 2`` chunks instead of ``k``;
* **reconstruction**: any ``k`` nodes determine ``S1`` and ``S2``
  (hence everything) via the pairwise λ-elimination decode.

The code is *not systematic*: all ``n`` chunks are coded.  ``encode``
packs the ``k`` input chunks into the message matrices and returns the
``n`` node chunks; ``decode`` recovers any requested node chunks (and
:meth:`MsrCodec.decode_data` the original inputs) from any ``k``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .codec import (
    DecodeError,
    ErasureCodec,
    RepairCost,
    check_equal_sizes,
    register_codec,
)
from .galois import gf_matmul_bytes, gf_mul, gf_pow
from .matrix import SingularMatrixError, invert, matmul


class MsrCodec(ErasureCodec):
    """Product-matrix MSR(n, k) at the d = 2k - 2 repair degree.

    Args:
        n: total nodes per stripe; requires ``n >= 2k - 1`` so that
            ``d = 2k - 2`` helpers exist.
        k: reconstruction threshold; requires ``k >= 3`` (below that,
            the MSR point degenerates).
    """

    def __init__(self, n: int, k: int):
        if k < 3:
            raise ValueError(f"product-matrix MSR needs k >= 3, got k={k}")
        if n < 2 * k - 1:
            raise ValueError(
                f"d = 2k-2 = {2 * k - 2} helpers need n >= {2 * k - 1}, "
                f"got n={n}"
            )
        if n > 254:
            raise ValueError("GF(2^8) construction supports at most n=254")
        self.n = n
        self.k = k
        self.alpha = k - 1
        self.d = 2 * k - 2
        # Distinct nonzero evaluation points x_i, chosen greedily so
        # the lambda_i = x_i^alpha are also distinct (x -> x^alpha is
        # not injective in GF(2^8) when gcd(alpha, 255) > 1; the image
        # has 255/gcd(alpha,255) elements, which bounds n).
        self._points: List[int] = []
        seen_lambda = set()
        for x in range(1, 256):
            lam = gf_pow(x, self.alpha)
            if lam in seen_lambda:
                continue
            seen_lambda.add(lam)
            self._points.append(x)
            if len(self._points) == n:
                break
        if len(self._points) < n:
            raise ValueError(
                f"GF(2^8) admits only {len(self._points)} nodes with "
                f"distinct x^alpha for alpha={self.alpha}; n={n} too large"
            )
        self._phi = np.zeros((n, self.alpha), dtype=np.uint8)
        for i, x in enumerate(self._points):
            for j in range(self.alpha):
                self._phi[i, j] = gf_pow(x, j)
        self._lam = np.array(
            [gf_pow(x, self.alpha) for x in self._points], dtype=np.uint8
        )
        # psi_i = [phi_i, lambda_i * phi_i]  (n x d)
        self._psi = np.zeros((n, self.d), dtype=np.uint8)
        self._psi[:, : self.alpha] = self._phi
        for i in range(n):
            for j in range(self.alpha):
                self._psi[i, self.alpha + j] = gf_mul(
                    int(self._lam[i]), int(self._phi[i, j])
                )

    # ------------------------------------------------------------------
    # Message packing
    # ------------------------------------------------------------------

    @property
    def message_symbols(self) -> int:
        """B = k(k-1) sub-symbols per stripe."""
        return self.k * self.alpha

    def _sub_size(self, chunk_size: int) -> int:
        if chunk_size % self.alpha != 0:
            raise ValueError(
                f"chunk size {chunk_size} must be divisible by "
                f"alpha={self.alpha}"
            )
        return chunk_size // self.alpha

    def _symmetric_slots(self) -> List[Tuple[int, int]]:
        """Upper-triangle fill order of an alpha x alpha symmetric matrix."""
        return [
            (r, c) for r in range(self.alpha) for c in range(r, self.alpha)
        ]

    def _pack_message(
        self, data_chunks: Sequence[bytes]
    ) -> Tuple[np.ndarray, int]:
        """Pack k chunks into the d x alpha message matrix of sub-symbols.

        Returns ``(M, sub_size)`` where ``M[row, col]`` indexes a
        sub-symbol and the matrix is materialized as an object-free
        uint8 array of shape ``(d, alpha, sub_size)``.
        """
        size = check_equal_sizes(data_chunks)
        sub = self._sub_size(size)
        flat = np.frombuffer(b"".join(data_chunks), dtype=np.uint8)
        symbols = flat.reshape(self.message_symbols, sub)
        M = np.zeros((self.d, self.alpha, sub), dtype=np.uint8)
        slots = self._symmetric_slots()
        half = len(slots)  # = alpha(alpha+1)/2 ... per symmetric matrix
        # S1 takes the first half of the symbols, S2 the second half.
        for idx, (r, c) in enumerate(slots):
            M[r, c] = symbols[idx]
            M[c, r] = symbols[idx]
        for idx, (r, c) in enumerate(slots):
            M[self.alpha + r, c] = symbols[half + idx]
            M[self.alpha + c, r] = symbols[half + idx]
        return M, sub

    def _unpack_message(self, S1: np.ndarray, S2: np.ndarray) -> List[bytes]:
        """Inverse of :meth:`_pack_message`: symmetric matrices -> chunks."""
        sub = S1.shape[2] if S1.ndim == 3 else S1.shape[-1]
        slots = self._symmetric_slots()
        pieces = [S1[r, c] for (r, c) in slots] + [S2[r, c] for (r, c) in slots]
        flat = np.concatenate([np.asarray(p, dtype=np.uint8) for p in pieces])
        chunk_size = self.alpha * sub
        return [
            flat[i * chunk_size : (i + 1) * chunk_size].tobytes()
            for i in range(self.k)
        ]

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------

    def encode(self, data_chunks: Sequence[bytes]) -> List[bytes]:
        if len(data_chunks) != self.k:
            raise ValueError(
                f"MSR({self.n},{self.k}) expects {self.k} data chunks, "
                f"got {len(data_chunks)}"
            )
        M, sub = self._pack_message(data_chunks)
        # node i row: psi_i^T M  -> alpha sub-symbols
        flatM = M.reshape(self.d, self.alpha * sub)
        coded = gf_matmul_bytes(self._psi, flatM)  # (n, alpha*sub)
        return [coded[i].tobytes() for i in range(self.n)]

    # ------------------------------------------------------------------
    # Repair-by-transfer
    # ------------------------------------------------------------------

    def repair_helpers(self, lost_index: int, alive: Sequence[int]) -> List[int]:
        alive = [i for i in alive if i != lost_index]
        if len(alive) < self.d:
            raise DecodeError(
                f"MSR repair of chunk {lost_index} needs d={self.d} helpers, "
                f"only {len(alive)} alive"
            )
        return sorted(alive)[: self.d]

    def repair_symbol(
        self, helper_index: int, helper_chunk: bytes, lost_index: int
    ) -> bytes:
        """The sub-symbol helper ``i`` sends to repair node ``f``.

        ``(stored row of helper) · φ_f`` — one sub-chunk, i.e. a
        ``1/α`` fraction of the helper's data.
        """
        if helper_index == lost_index:
            raise DecodeError("a node cannot help repair itself")
        sub = self._sub_size(len(helper_chunk))
        stored = np.frombuffer(helper_chunk, dtype=np.uint8).reshape(
            self.alpha, sub
        )
        phi_f = self._phi[lost_index]
        out = np.zeros(sub, dtype=np.uint8)
        from .galois import gf_addmul_bytes

        for j in range(self.alpha):
            gf_addmul_bytes(out, int(phi_f[j]), stored[j])
        return out.tobytes()

    def repair_from_symbols(
        self, lost_index: int, symbols: Dict[int, bytes]
    ) -> bytes:
        """Rebuild a lost chunk from the d helper sub-symbols.

        Args:
            lost_index: the failed node.
            symbols: helper node index -> its repair sub-symbol.
        """
        if len(symbols) < self.d:
            raise DecodeError(
                f"need {self.d} repair symbols, got {len(symbols)}"
            )
        helper_ids = sorted(symbols)[: self.d]
        sub = check_equal_sizes([symbols[i] for i in helper_ids])
        received = np.stack(
            [np.frombuffer(symbols[i], dtype=np.uint8) for i in helper_ids]
        )  # (d, sub) = Psi_D (M phi_f)
        psi_d = self._psi[helper_ids, :]
        try:
            inv = invert(psi_d)
        except SingularMatrixError as exc:  # cannot happen: Vandermonde
            raise DecodeError(f"singular helper matrix: {exc}") from exc
        m_phi = gf_matmul_bytes(inv, received)  # (d, sub): [S1 phi_f; S2 phi_f]
        s1_phi = m_phi[: self.alpha]
        s2_phi = m_phi[self.alpha :]
        # lost row = phi_f^T S1 + lambda_f phi_f^T S2
        #          = (S1 phi_f)^T phi-combined via symmetry.
        phi_f = self._phi[lost_index]
        lam_f = int(self._lam[lost_index])
        from .galois import gf_addmul_bytes

        out = np.zeros((self.alpha, sub), dtype=np.uint8)
        # stored[j] = sum_t phi_f? No: stored = phi_f^T S1 + lam phi_f^T S2
        # has entries (S1 phi_f)_j + lam * (S2 phi_f)_j by symmetry.
        for j in range(self.alpha):
            np.bitwise_xor(out[j], s1_phi[j], out=out[j])
            gf_addmul_bytes(out[j], lam_f, s2_phi[j])
        return out.reshape(-1).tobytes()

    def single_repair_cost(self) -> RepairCost:
        return RepairCost(
            helpers=self.d, traffic_chunks=self.d / self.alpha
        )

    # ------------------------------------------------------------------
    # Data reconstruction from any k nodes
    # ------------------------------------------------------------------

    def _solve_message(
        self, available: Dict[int, bytes]
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Recover S1, S2 (each alpha x alpha x sub) from any k chunks."""
        if len(available) < self.k:
            raise DecodeError(
                f"need {self.k} chunks to reconstruct, have {len(available)}"
            )
        ids = sorted(available)[: self.k]
        size = check_equal_sizes([available[i] for i in ids])
        sub = self._sub_size(size)
        # C = Phi_k S1 + Lambda_k Phi_k S2   (k x alpha of sub-symbols)
        C = np.stack(
            [
                np.frombuffer(available[i], dtype=np.uint8).reshape(
                    self.alpha, sub
                )
                for i in ids
            ]
        )
        phi = self._phi[ids]  # (k, alpha)
        lam = [int(self._lam[i]) for i in ids]
        # P = C Phi^T: P[i][j] = A[i][j] + lam_i * B[i][j] where
        # A = Phi S1 Phi^T and B = Phi S2 Phi^T are symmetric.
        P = np.zeros((self.k, self.k, sub), dtype=np.uint8)
        from .galois import gf_addmul_bytes

        for i in range(self.k):
            for j in range(self.k):
                for t in range(self.alpha):
                    gf_addmul_bytes(P[i, j], int(phi[j, t]), C[i, t])
        # Pairwise elimination for the off-diagonal A, B entries.
        A = np.zeros_like(P)
        B = np.zeros_like(P)
        from .galois import gf_div, gf_mul as _mul

        for i in range(self.k):
            for j in range(i + 1, self.k):
                # P_ij = A_ij + lam_i B_ij ; P_ji = A_ij + lam_j B_ij
                denom = lam[i] ^ lam[j]
                diff = P[i, j] ^ P[j, i]  # (lam_i ^ lam_j) B_ij
                inv_denom = gf_div(1, denom)
                b_ij = np.zeros(sub, dtype=np.uint8)
                gf_addmul_bytes(b_ij, inv_denom, diff)
                a_ij = P[i, j].copy()
                gf_addmul_bytes(a_ij, lam[i], b_ij)
                A[i, j] = a_ij
                A[j, i] = a_ij
                B[i, j] = b_ij
                B[j, i] = b_ij
        S1 = self._solve_symmetric(A, phi, sub)
        S2 = self._solve_symmetric(B, phi, sub)
        return S1, S2, sub

    def _solve_symmetric(
        self, G: np.ndarray, phi: np.ndarray, sub: int
    ) -> np.ndarray:
        """Solve ``G = Phi S Phi^T`` (off-diagonal known) for symmetric S.

        For each column j of ``Phi S``, the k-1 = alpha rows i != j give
        ``Phi_{-j} (S phi_j) = G[., j]`` with ``Phi_{-j}`` invertible
        (any alpha rows of a Vandermonde Phi are independent).
        """
        s_phi = np.zeros((self.alpha, self.k, sub), dtype=np.uint8)
        for j in range(self.k):
            rows = [i for i in range(self.k) if i != j]
            phi_sub = phi[rows, :]  # (alpha, alpha)
            rhs = G[rows, j]  # (alpha, sub)
            inv = invert(phi_sub)
            s_phi[:, j] = gf_matmul_bytes(inv, rhs)  # S phi_j
        # S = (S Phi~^T) (Phi~^T)^{-1} using the first alpha columns.
        phi_t = phi[: self.alpha, :].T.copy()  # (alpha, alpha) = Phi~^T
        inv_phi_t = invert(np.ascontiguousarray(phi_t))
        s_phi_first = s_phi[:, : self.alpha]  # (alpha, alpha, sub)
        S = np.zeros((self.alpha, self.alpha, sub), dtype=np.uint8)
        from .galois import gf_addmul_bytes

        for r in range(self.alpha):
            for c in range(self.alpha):
                for t in range(self.alpha):
                    gf_addmul_bytes(
                        S[r, c], int(inv_phi_t[t, c]), s_phi_first[r, t]
                    )
        return S

    def decode_data(self, available: Dict[int, bytes]) -> List[bytes]:
        """Recover the original k input chunks from any k coded chunks."""
        S1, S2, _ = self._solve_message(available)
        return self._unpack_message(S1, S2)

    def decode(
        self,
        available: Dict[int, bytes],
        wanted: Sequence[int],
    ) -> Dict[int, bytes]:
        wanted = list(wanted)
        for idx in wanted:
            if not 0 <= idx < self.n:
                raise ValueError(f"chunk index {idx} outside stripe of {self.n}")
        result = {i: bytes(available[i]) for i in wanted if i in available}
        missing = [i for i in wanted if i not in available]
        if not missing:
            return result
        S1, S2, sub = self._solve_message(available)
        from .galois import gf_addmul_bytes

        for idx in missing:
            phi_f = self._phi[idx]
            lam_f = int(self._lam[idx])
            out = np.zeros((self.alpha, sub), dtype=np.uint8)
            for j in range(self.alpha):
                for t in range(self.alpha):
                    gf_addmul_bytes(out[j], int(phi_f[t]), S1[t, j])
                    coeff = gf_mul(lam_f, int(phi_f[t]))
                    gf_addmul_bytes(out[j], coeff, S2[t, j])
            result[idx] = out.reshape(-1).tobytes()
        return result


def _msr_factory(n: int, k: int) -> MsrCodec:
    return MsrCodec(n, k)


register_codec("msr", _msr_factory)
