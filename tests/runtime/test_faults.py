"""Fault-injection matrix: the runtime must survive what the paper fears.

FastPR exists because a soon-to-fail node may actually die.  These
tests kill the STF node at various migration progress points, kill
helpers, drop/corrupt/duplicate packets and degrade NICs — and assert
that every repaired chunk still comes out byte-identical, with the
degraded-mode bookkeeping (retries, replans, conversions) visible in
the result.
"""

import dataclasses
import time

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import RepairMethod
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    UnrecoverableChunkError,
    heal_action,
)
from repro.ec import make_codec
from repro.runtime import (
    AgentError,
    CrashFault,
    FaultInjector,
    FaultPlan,
    Heartbeat,
    LinkFault,
    Network,
    RepairTimeoutError,
    RuntimeConfig,
    Scrubber,
    SlowNicFault,
)
from repro.runtime.messages import DataPacket
from repro.runtime.testbed import EmulatedTestbed
from repro.sim.simulator import RepairSimulator

CHUNK = 16 * 1024

#: tight timings so fault detection happens in test time, not ops time
FAST = RuntimeConfig(
    ack_timeout=1.5,
    join_timeout=5.0,
    deadline_margin=4.0,
    min_deadline=0.8,
    max_retries=3,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=0.2,
    probe_timeout=0.4,
    heartbeat_interval=0.1,
    poll_interval=0.05,
)


def make_cluster(num_stripes=8, seed=21, chunk=CHUNK, bandwidth=1e9):
    cluster = StorageCluster.random(
        num_nodes=10,
        num_stripes=num_stripes,
        n=5,
        k=3,
        num_hot_standby=2,
        seed=seed,
        disk_bandwidth=bandwidth,
        network_bandwidth=bandwidth,
        chunk_size=chunk,
    )
    cluster.node(0).mark_soon_to_fail()
    return cluster


def make_testbed(tmp_path, faults=None, config=FAST, packet_size=None, **kw):
    cluster = make_cluster(**kw)
    testbed = EmulatedTestbed(
        cluster,
        make_codec("rs(5,3)"),
        packet_size=packet_size or CHUNK // 4,
        workdir=tmp_path / "bed",
        config=config,
        faults=faults,
    )
    testbed.start()
    testbed.load_random_data(seed=1)
    return cluster, testbed


def migrated_bytes(plan, chunk=CHUNK):
    migrations = sum(
        1 for a in plan.actions() if a.method is RepairMethod.MIGRATION
    )
    return migrations * chunk


class TestStfCrash:
    """The headline scenario: the STF node dies mid-repair."""

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75])
    def test_stf_crash_mid_migration(self, tmp_path, fraction):
        # Size the byte trigger from an identical (deterministic) plan.
        plan_preview = FastPRPlanner().plan(make_cluster(), 0)
        total = migrated_bytes(plan_preview)
        assert total > 0, "scenario needs at least one migration"
        if fraction == 0.0:
            crash = CrashFault(node=0, at_time=0.0)
        else:
            crash = CrashFault(node=0, after_sent_bytes=int(fraction * total))
        cluster, testbed = make_testbed(
            tmp_path, faults=FaultPlan(crashes=[crash])
        )
        try:
            plan = FastPRPlanner().plan(cluster, 0)
            result = testbed.execute(plan)
            # Byte-identical repair at the *effective* destinations,
            # and zero corrupt chunks anywhere else in the cluster.
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert result.dead_nodes == [0]
            assert result.degraded
            assert result.replans >= 1
            assert result.converted_migrations >= 1
            assert result.chunks_repaired == plan.total_chunks
        finally:
            testbed.shutdown()

    def test_stf_crash_at_start_converts_every_migration(self, tmp_path):
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(crashes=[CrashFault(node=0, at_time=0.0)]),
        )
        try:
            plan = FastPRPlanner().plan(cluster, 0)
            migrations = sum(
                1 for a in plan.actions() if a.method is RepairMethod.MIGRATION
            )
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert result.converted_migrations == migrations
            # Healed actions never touch the dead node.
            for action in result.executed_actions:
                assert 0 not in action.sources
                assert action.destination != 0
        finally:
            testbed.shutdown()


class TestHelperCrash:
    def test_helper_crash_resolves_with_survivors(self, tmp_path):
        plan_preview = ReconstructionOnlyPlanner(seed=1).plan(make_cluster(), 0)
        helper = next(iter(plan_preview.actions())).sources[0]
        assert helper != 0
        crash = CrashFault(node=helper, after_sent_bytes=CHUNK // 2)
        cluster, testbed = make_testbed(
            tmp_path, faults=FaultPlan(crashes=[crash])
        )
        try:
            plan = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert result.dead_nodes == [helper]
            assert result.replans >= 1
        finally:
            testbed.shutdown()


class TestLinkFaults:
    @pytest.mark.parametrize("drop", [0.05, 0.10])
    def test_packet_loss_is_retried(self, tmp_path, drop):
        config = dataclasses.replace(FAST, ack_timeout=1.0)
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(links=[LinkFault(drop=drop)], seed=11),
            config=config,
            packet_size=CHUNK // 2,
            num_stripes=6,
        )
        try:
            plan = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert testbed.faults.stats["dropped"] >= 1
            assert result.retries >= 1
            assert result.degraded
            assert result.dead_nodes == []  # lossy, but nobody died
        finally:
            testbed.shutdown()

    def test_corrupt_payload_detected_and_retried(self, tmp_path):
        config = dataclasses.replace(FAST, ack_timeout=0.8, max_retries=6)
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(links=[LinkFault(corrupt=0.3)], seed=5),
            config=config,
            packet_size=CHUNK // 2,
            num_stripes=6,
        )
        try:
            plan = MigrationOnlyPlanner().plan(cluster, 0)
            result = testbed.execute(plan)
            # The checksum caught every flipped byte: despite in-flight
            # corruption, the stored chunks are byte-identical.
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert testbed.faults.stats["corrupted"] >= 1
            assert result.retries >= 1
        finally:
            testbed.shutdown()

    def test_duplicated_packets_are_harmless(self, tmp_path):
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(links=[LinkFault(duplicate=0.5)], seed=3),
            num_stripes=6,
        )
        try:
            plan = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            assert testbed.faults.stats["duplicated"] >= 1
            # Deduplication means no retries were ever needed.
            assert not result.degraded
        finally:
            testbed.shutdown()

    def test_slow_nic_degrades_but_completes(self, tmp_path):
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(slow_nics=[SlowNicFault(node=0, factor=0.25)]),
            bandwidth=400e6,
            num_stripes=6,
        )
        try:
            plan = FastPRPlanner().plan(cluster, 0)
            result = testbed.execute(plan)
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            endpoint = testbed.network.endpoint(0)
            assert endpoint.nic_out.rate == pytest.approx(0.25 * 400e6)
            assert endpoint.nic_in.rate == pytest.approx(0.25 * 400e6)
        finally:
            testbed.shutdown()


class TestTimeoutsAndErrors:
    def test_unrecoverable_stall_raises_timeout_naming_actions(self, tmp_path):
        # Every data packet vanishes but every node answers pings: the
        # coordinator must classify this as transient, exhaust its
        # retries, and fail loudly with the pending action keys.
        config = dataclasses.replace(
            FAST, ack_timeout=0.6, min_deadline=0.5, max_retries=1
        )
        cluster, testbed = make_testbed(
            tmp_path,
            faults=FaultPlan(links=[LinkFault(drop=1.0)]),
            config=config,
            num_stripes=4,
        )
        try:
            plan = MigrationOnlyPlanner().plan(cluster, 0)
            with pytest.raises(RepairTimeoutError) as excinfo:
                testbed.execute(plan)
            assert excinfo.value.pending
            key = excinfo.value.pending[0]
            assert str(key) in str(excinfo.value)
        finally:
            testbed.shutdown(check_errors=False)

    def test_shutdown_surfaces_agent_errors(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        # Garbage with no action key: recorded locally, raised at
        # teardown instead of vanishing into a daemon thread.
        testbed.network.endpoint(1).inbox.put(object())
        deadline = time.monotonic() + 5
        while not testbed.agents[1].errors and time.monotonic() < deadline:
            time.sleep(0.02)
        assert testbed.agents[1].errors
        with pytest.raises(AgentError, match="unhandled errors"):
            testbed.shutdown()

    def test_crashed_agents_are_excused_at_teardown(self, tmp_path):
        cluster, testbed = make_testbed(tmp_path)
        testbed.crash_node(3)
        testbed.agents[3].errors.append(RuntimeError("post-mortem noise"))
        testbed.shutdown()  # must not raise


class TestNetworkMembership:
    def test_detach_black_holes_then_replacement_attaches(self):
        net = Network()
        net.attach(1, None)
        second = net.attach(2, None)
        net.send(1, 2, Heartbeat(1))
        assert isinstance(second.inbox.get_nowait(), Heartbeat)
        removed = net.detach(2)
        assert removed.closed
        net.send(1, 2, Heartbeat(1))  # silently dropped, no error
        with pytest.raises(KeyError):
            net.endpoint(2)
        replacement = net.attach(2, None)
        net.send(1, 2, Heartbeat(1))
        assert isinstance(replacement.inbox.get_nowait(), Heartbeat)

    def test_send_to_never_attached_node_still_raises(self):
        net = Network()
        net.attach(1, None)
        with pytest.raises(KeyError):
            net.send(1, 99, Heartbeat(1))

    def test_detach_unknown_node_raises(self):
        net = Network()
        with pytest.raises(KeyError):
            net.detach(7)


def _packet(payload=b"x" * 64):
    return DataPacket(
        stripe_id=1, chunk_index=0, source=0, offset=0, payload=payload
    )


class TestFaultInjectorUnit:
    def test_link_decisions_are_deterministic(self):
        plan = FaultPlan(
            links=[LinkFault(drop=0.3, duplicate=0.2, corrupt=0.1)], seed=7
        )
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        seq_a = [first.on_data_packet(0, 1, _packet()) for _ in range(200)]
        seq_b = [second.on_data_packet(0, 1, _packet()) for _ in range(200)]
        assert seq_a == seq_b
        # A different link draws from an independent stream.
        seq_c = [second.on_data_packet(0, 2, _packet()) for _ in range(200)]
        assert seq_c != seq_b

    def test_byte_triggered_crash_fires_once(self):
        deaths = []
        plan = FaultPlan(crashes=[CrashFault(node=0, after_sent_bytes=100)])
        injector = FaultInjector(plan, on_crash=deaths.append)
        assert injector.on_data_packet(0, 1, _packet(b"x" * 60)).deliver
        assert not injector.is_crashed(0)
        # 120 cumulative bytes >= 100: the node dies; the packet that
        # tripped the trigger is itself lost.
        assert not injector.on_data_packet(0, 1, _packet(b"x" * 60)).deliver
        assert injector.is_crashed(0)
        assert deaths == [0]
        # Crashed nodes neither send nor receive anything.
        assert not injector.filter_message(0, 5)
        assert not injector.filter_message(5, 0)
        assert not injector.on_data_packet(3, 0, _packet()).deliver
        injector.kill(0)  # idempotent
        assert deaths == [0]

    def test_crash_fault_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            CrashFault(node=0)
        with pytest.raises(ValueError):
            CrashFault(node=0, at_time=1.0, after_sent_bytes=10)

    def test_link_fault_validates_probabilities(self):
        with pytest.raises(ValueError):
            LinkFault(drop=1.5)
        with pytest.raises(ValueError):
            LinkFault(delay=-0.1)

    def test_slow_nic_fault_validates_factor(self):
        with pytest.raises(ValueError):
            SlowNicFault(node=0, factor=0.0)


class TestRuntimeConfig:
    def test_backoff_grows_exponentially_to_cap(self):
        config = RuntimeConfig(
            backoff_base=0.05, backoff_factor=2.0, backoff_cap=0.15
        )
        assert config.backoff(1) == pytest.approx(0.05)
        assert config.backoff(2) == pytest.approx(0.10)
        assert config.backoff(3) == pytest.approx(0.15)  # capped
        assert config.backoff(10) == pytest.approx(0.15)

    def test_config_is_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RuntimeConfig().ack_timeout = 1.0


class TestHealAction:
    def test_action_without_dead_nodes_is_untouched(self):
        cluster = make_cluster()
        plan = FastPRPlanner().plan(cluster, 0)
        action = next(plan.actions())
        assert heal_action(cluster, 0, action, dead=set()) is action

    def test_unrecoverable_when_too_few_helpers_survive(self):
        cluster = make_cluster()
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        action = next(plan.actions())
        stripe = cluster.stripe(action.stripe_id)
        # Kill the STF node and all but one other chunk holder: fewer
        # than k survivors remain.
        dead = set(stripe.nodes) - {action.destination}
        dead.discard(next(n for n in stripe.nodes if n != 0))
        dead.add(0)
        with pytest.raises(UnrecoverableChunkError):
            heal_action(cluster, 0, action, dead=dead)


class TestSimulatorMirror:
    def test_time_triggered_crash_converts_migrations(self):
        cluster = make_cluster()
        plan = FastPRPlanner().plan(cluster, 0)
        migrations = sum(
            1 for a in plan.actions() if a.method is RepairMethod.MIGRATION
        )
        assert migrations > 0
        sim = RepairSimulator(cluster)
        clean = sim.run(plan)
        faults = FaultPlan(crashes=[CrashFault(node=0, at_time=0.0)])
        degraded = sim.run(plan, faults=faults)
        assert degraded.dead_nodes == [0]
        assert degraded.replans == 1
        assert degraded.converted_migrations == migrations
        assert degraded.chunks_repaired == plan.total_chunks
        # Reconstruction moves k chunks per repaired chunk: the
        # degraded repair pays strictly more traffic.
        assert degraded.bytes_transferred > clean.bytes_transferred
        assert clean.replans == 0 and clean.dead_nodes == []

    def test_detection_delay_shifts_the_timeline(self):
        cluster = make_cluster()
        plan = FastPRPlanner().plan(cluster, 0)
        faults = FaultPlan(crashes=[CrashFault(node=0, at_time=0.0)])
        sim = RepairSimulator(cluster)
        base = sim.run(plan, faults=faults)
        delayed = sim.run(plan, faults=faults, detection_delay=0.5)
        assert delayed.total_time == pytest.approx(
            base.total_time + 0.5, abs=1e-3
        )

    def test_late_crash_only_affects_later_rounds(self):
        cluster = make_cluster()
        plan = FastPRPlanner().plan(cluster, 0)
        sim = RepairSimulator(cluster)
        clean = sim.run(plan)
        # Crash long after the repair finished: nothing changes.
        faults = FaultPlan(
            crashes=[CrashFault(node=0, at_time=clean.total_time * 10)]
        )
        result = sim.run(plan, faults=faults)
        assert result.total_time == pytest.approx(clean.total_time)
        assert result.dead_nodes == []
        assert result.converted_migrations == 0
