"""Disk-failure predictors over SMART windows.

Two predictor families the literature (and the paper's Section II-B)
describes:

* :class:`ThresholdPredictor` — RAIDShield-style [22]: flag a disk
  once its reallocated-sector count exceeds a threshold.
* :class:`LogisticPredictor` — a machine-learned classifier in the
  spirit of [18], [23], [45]: logistic regression (implemented from
  scratch on numpy) over windowed SMART features (levels + slopes).

Both consume a fixed-length window of recent samples and answer
"is this disk soon-to-fail?".  :func:`evaluate` computes the metrics
the prediction papers report: precision, recall (failure-detection
rate), false-alarm rate, and prediction lead time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .smart import DEGRADATION_ATTRIBUTES, DiskTrace, SmartSample


class FailurePredictor(ABC):
    """Binary soon-to-fail classifier over a window of samples."""

    #: days of history the predictor expects
    window_days: int = 7

    @abstractmethod
    def predict(self, window: Sequence[SmartSample]) -> bool:
        """True if the disk behind ``window`` is predicted soon-to-fail."""

    def score(self, window: Sequence[SmartSample]) -> float:
        """Soft score in [0, 1] where available; default maps predict()."""
        return 1.0 if self.predict(window) else 0.0


class ThresholdPredictor(FailurePredictor):
    """Flag when a monitored attribute exceeds a fixed threshold.

    RAIDShield [22] uses the reallocated-sector count; that is the
    default here.
    """

    def __init__(
        self,
        attribute: str = "smart_5_reallocated_sectors",
        threshold: float = 20.0,
        window_days: int = 1,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.attribute = attribute
        self.threshold = threshold
        self.window_days = window_days

    def predict(self, window: Sequence[SmartSample]) -> bool:
        if not window:
            return False
        return window[-1].values.get(self.attribute, 0.0) >= self.threshold


def window_features(window: Sequence[SmartSample]) -> np.ndarray:
    """Feature vector: last level and within-window slope per attribute."""
    if not window:
        raise ValueError("empty window")
    features: List[float] = []
    days = np.array([s.day for s in window], dtype=float)
    for name in DEGRADATION_ATTRIBUTES:
        series = np.array([s.values.get(name, 0.0) for s in window])
        features.append(float(series[-1]))
        if len(series) >= 2 and np.ptp(days) > 0:
            slope = float(np.polyfit(days, series, 1)[0])
        else:
            slope = 0.0
        features.append(slope)
    return np.array(features, dtype=float)


class LogisticPredictor(FailurePredictor):
    """Logistic regression trained with batch gradient descent.

    Args:
        window_days: samples per prediction window.
        lead_days: during training, windows ending within this many
            days of a disk's failure are labeled positive.
        learning_rate / epochs / l2: optimizer hyper-parameters.
        decision_threshold: probability cutoff for flagging.
    """

    def __init__(
        self,
        window_days: int = 7,
        lead_days: int = 10,
        learning_rate: float = 0.1,
        epochs: int = 400,
        l2: float = 1e-3,
        decision_threshold: float = 0.5,
        seed: Optional[int] = None,
    ):
        self.window_days = window_days
        self.lead_days = lead_days
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.decision_threshold = decision_threshold
        self._seed = seed
        self._weights: Optional[np.ndarray] = None
        self._bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- training --------------------------------------------------------

    def fit(self, traces: Sequence[DiskTrace]) -> "LogisticPredictor":
        """Train on a fleet of labeled traces; returns self."""
        X, y = self._training_matrix(traces)
        if len(np.unique(y)) < 2:
            raise ValueError(
                "training fleet needs both failing and surviving disks"
            )
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xn = (X - self._mean) / self._std
        rng = np.random.default_rng(self._seed)
        weights = rng.normal(0, 0.01, Xn.shape[1])
        bias = 0.0
        # Weight positives up: failures are rare.
        pos_weight = max(1.0, (y == 0).sum() / max((y == 1).sum(), 1))
        sample_weight = np.where(y == 1, pos_weight, 1.0)
        for _ in range(self.epochs):
            z = Xn @ weights + bias
            p = _sigmoid(z)
            grad_common = sample_weight * (p - y)
            grad_w = Xn.T @ grad_common / len(y) + self.l2 * weights
            grad_b = float(grad_common.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self._weights = weights
        self._bias = bias
        return self

    def _training_matrix(
        self, traces: Sequence[DiskTrace]
    ) -> Tuple[np.ndarray, np.ndarray]:
        rows: List[np.ndarray] = []
        labels: List[int] = []
        for trace in traces:
            last_day = trace.samples[-1].day
            for end in range(self.window_days - 1, last_day + 1):
                window = trace.window(end, self.window_days)
                if len(window) < self.window_days:
                    continue
                rows.append(window_features(window))
                positive = (
                    trace.will_fail
                    and trace.failure_day - end <= self.lead_days
                )
                labels.append(1 if positive else 0)
        if not rows:
            raise ValueError("no training windows; traces too short?")
        return np.vstack(rows), np.array(labels, dtype=float)

    # -- inference --------------------------------------------------------

    def score(self, window: Sequence[SmartSample]) -> float:
        if self._weights is None:
            raise RuntimeError("predictor not fitted; call fit() first")
        x = (window_features(window) - self._mean) / self._std
        return float(_sigmoid(x @ self._weights + self._bias))

    def predict(self, window: Sequence[SmartSample]) -> bool:
        if len(window) < self.window_days:
            return False
        return self.score(window) >= self.decision_threshold


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


@dataclass(frozen=True)
class PredictionMetrics:
    """Fleet-level evaluation of a predictor."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int
    mean_lead_days: float

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_alarm_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0


def evaluate(
    predictor: FailurePredictor, traces: Sequence[DiskTrace]
) -> PredictionMetrics:
    """Per-disk evaluation: does the first alarm precede the failure?

    A failing disk counts as a true positive if the predictor raises an
    alarm on any day strictly before its failure day; a surviving disk
    with any alarm is a false positive.
    """
    tp = fp = fn = tn = 0
    leads: List[float] = []
    for trace in traces:
        alarm_day = first_alarm_day(predictor, trace)
        if trace.will_fail:
            if alarm_day is not None and alarm_day < trace.failure_day:
                tp += 1
                leads.append(trace.failure_day - alarm_day)
            else:
                fn += 1
        else:
            if alarm_day is not None:
                fp += 1
            else:
                tn += 1
    mean_lead = float(np.mean(leads)) if leads else 0.0
    return PredictionMetrics(tp, fp, fn, tn, mean_lead)


def first_alarm_day(
    predictor: FailurePredictor, trace: DiskTrace
) -> Optional[int]:
    """The first day the predictor flags the disk, or None."""
    for sample in trace.samples:
        window = trace.window(sample.day, predictor.window_days)
        if len(window) < predictor.window_days:
            continue
        if predictor.predict(window):
            return sample.day
    return None
