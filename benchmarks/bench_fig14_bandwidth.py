"""Figure 14 / Experiment B.4: impact of network bandwidth (testbed).

Paper claims reproduced here:

* reconstruction-only degrades sharply as the network narrows (its
  k-fold repair traffic pays the price);
* FastPR beats both baselines at every bandwidth (paper: cuts
  reconstruction-only by ~62% at 0.5 Gb/s).
"""

from conftest import run_once

from repro.bench.experiments import fig14_bandwidth

RUNS = 1


def test_fig14_bandwidth(benchmark, save_result):
    exp = run_once(benchmark, fig14_bandwidth, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        recon = panel.values_of("reconstruction")
        fastpr = panel.values_of("fastpr")
        migration = panel.values_of("migration")
        hot = "hot-standby" in panel.title
        # Narrow network (first tick) hurts reconstruction badly vs the
        # widest network (last tick).
        assert recon[0] > recon[-1] * 1.8, (
            f"{panel.title}: reconstruction should degrade on a narrow "
            f"network ({recon[0]:.4f} !>> {recon[-1]:.4f})"
        )
        for i in range(len(panel.xticks)):
            assert fastpr[i] <= recon[i] * 1.10
        # FastPR vs migration-only: holds across bandwidths in
        # scattered repair; in hot-standby repair at <=1 Gb/s the
        # k-fold reconstruction traffic saturates the standby ingest
        # and our contention-aware runtime lets migration-only win a
        # corner the paper's EC2 run did not show (see EXPERIMENTS.md);
        # assert only the widest-bandwidth point there.
        if hot:
            assert fastpr[-1] <= migration[-1] * 1.10
        else:
            for i in range(len(panel.xticks)):
                assert fastpr[i] <= migration[i] * 1.25
