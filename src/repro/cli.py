"""Command-line interface for the FastPR reproduction.

Figure regeneration (the original entry point)::

    fastpr list                     # available experiments
    fastpr fig8 --runs 3            # one figure
    fastpr all                      # everything

Operational commands::

    fastpr snapshot --nodes 30 --stripes 120 --code "rs(9,6)" -o c.json
    fastpr plan --snapshot c.json --stf 3 [--scenario hot_standby]
    fastpr repair --snapshot c.json --stf 3 [--fault-plan faults.json] \
        [--metrics-out m.json] [--trace-out t.json]
    fastpr report --trace t.json [--metrics m.json]
    fastpr scrub --snapshot c.json [--corrupt 3]
    fastpr fleet --disks 200 --days 120 -o fleet.csv
    fastpr predict --fleet fleet.csv
    fastpr daemon --snapshot c.json --fleet fleet.csv --scrub-interval 7
    fastpr lifetime --trials 50 --code "rs(9,6)" --process both -o d.json

Multi-process mode (DESIGN.md §10) — every storage node a real OS
process, messages as length-prefixed CRC-checked frames over TCP::

    fastpr agent --snapshot c.json --node 3 --listen 127.0.0.1:9103 \
        --peers coordinator=127.0.0.1:9099 --workdir /tmp/run
    fastpr repair --snapshot c.json --stf 3 --transport tcp \
        --peers @peers.json --workdir /tmp/run

``plan`` marks the node soon-to-fail, runs FastPR and both baselines,
and prints each plan with its cost-model repair time.  ``repair``
actually executes the FastPR plan on the emulated testbed (real bytes,
emulated bandwidths); ``--fault-plan`` injects a JSON-described
:class:`~repro.runtime.faults.FaultPlan` — including coordinator
crashes, which the command survives by recovering from its write-ahead
journal.  ``repair`` can also export the run's observability artifacts
(``--metrics-out``/``--trace-out``), which ``report`` folds into a
per-round migration/reconstruction breakdown table.  ``scrub``
checksum-verifies every chunk and repairs silent corruption in place.
``fleet`` and ``predict`` exercise the failure-prediction substrate on
CSV dumps.

Conventions shared by every subcommand: ``--seed`` pins all randomness
and ``-o/--output`` writes the command's primary artifact to a file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .bench.experiments import ALL_EXPERIMENTS

_FIGURE_WORDS = set(ALL_EXPERIMENTS) | {"all", "list"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastpr",
        description="Reproduce 'Fast Predictive Repair in Erasure-Coded "
        "Storage' (DSN 2019): figures, planning, failure prediction.",
    )
    sub = parser.add_subparsers(dest="command")

    figures = sub.add_parser(
        "figures", help="regenerate a paper figure (fig2..fig15, all, list)"
    )
    figures.add_argument("experiment")
    figures.add_argument("--runs", type=int, default=None)
    figures.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed forwarded to experiments that take one",
    )
    figures.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the harness results as a JSON list of experiments",
    )

    snapshot = sub.add_parser(
        "snapshot", help="generate a random cluster snapshot (JSON)"
    )
    snapshot.add_argument("--nodes", type=int, default=30)
    snapshot.add_argument("--stripes", type=int, default=120)
    snapshot.add_argument("--code", default="rs(9,6)")
    snapshot.add_argument("--hot-standby", type=int, default=3)
    snapshot.add_argument("--seed", type=int, default=None)
    snapshot.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="chunk size in bytes (scale down for fast emulated runs)",
    )
    snapshot.add_argument("-o", "--output", required=True)

    plan = sub.add_parser(
        "plan", help="plan the repair of an STF node from a snapshot"
    )
    plan.add_argument("--snapshot", required=True)
    plan.add_argument("--stf", type=int, required=True)
    plan.add_argument(
        "--scenario",
        choices=("scattered", "hot_standby"),
        default="scattered",
    )
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the FastPR plan as JSON",
    )

    repair = sub.add_parser(
        "repair",
        help="execute a FastPR repair on the emulated testbed "
        "(real bytes, journaled, crash-recoverable)",
    )
    repair.add_argument("--snapshot", required=True)
    repair.add_argument("--stf", type=int, required=True)
    repair.add_argument(
        "--scenario",
        choices=("scattered", "hot_standby"),
        default="scattered",
    )
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument(
        "--fault-plan",
        default=None,
        help="JSON file describing a FaultPlan to inject "
        "(node crashes, link faults, coordinator crashes)",
    )
    repair.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal path (default: auto when the fault "
        "plan crashes the coordinator)",
    )
    repair.add_argument("--packet-size", type=int, default=None)
    repair.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry as JSON (readable by "
        "'fastpr report --metrics')",
    )
    repair.add_argument(
        "--trace-out",
        default=None,
        help="write the run's span trace as JSON (readable by "
        "'fastpr report --trace')",
    )
    repair.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the run summary (timings, retries, scrub verdict) as JSON",
    )
    repair.add_argument(
        "--transport",
        choices=("memory", "tcp", "shm"),
        default="memory",
        help="'memory' runs the whole repair in-process on the emulated "
        "fabric; 'tcp' drives standalone 'fastpr agent' processes over "
        "real sockets; 'shm' drives same-host agent processes over "
        "shared-memory rings (no peer spec — names derive from "
        "--workdir)",
    )
    repair.add_argument(
        "--peers",
        default=None,
        help="(tcp) node=host:port list or @file.json mapping every agent "
        "and 'coordinator' to its listen address",
    )
    repair.add_argument(
        "--workdir",
        default=None,
        help="(tcp/shm) shared directory holding each agent's chunk store "
        "(node_<id>/); used to verify repaired chunks byte-identical",
    )
    repair.add_argument(
        "--resume",
        action="store_true",
        help="(tcp/shm) recover from --journal instead of starting fresh: "
        "fence the dead coordinator's epoch and re-issue unfinished "
        "actions",
    )
    repair.add_argument(
        "--agent-timeout",
        type=float,
        default=60.0,
        help="(tcp/shm) seconds to wait for every agent to answer a ping "
        "before giving up",
    )
    repair.add_argument(
        "--config",
        default=None,
        help="RuntimeConfig JSON (timeouts, retry policy, queue bounds); "
        "omitted fields keep defaults",
    )
    repair.add_argument(
        "--coordinators",
        type=int,
        default=1,
        help="shard the stripe space across N coordinators, each with "
        "its own journal and epoch; a crashed shard's ownership hands "
        "off to a survivor (with --journal naming the journal "
        "directory when N > 1)",
    )
    repair.add_argument(
        "--racks",
        type=int,
        default=None,
        help="group the snapshot's nodes into R uniform racks so the "
        "fault plan's domain crashes (kind: rack) resolve to node "
        "crashes plus co-located coordinator kills",
    )
    repair.add_argument(
        "--pipelining",
        choices=("off", "chain"),
        default="off",
        help="'chain' streams each reconstruction's partial sums "
        "through an ordered helper chain (slowest links first) instead "
        "of star fan-in; works uniformly across every --transport and "
        "--coordinators setting",
    )
    repair.add_argument(
        "--slices",
        type=int,
        default=0,
        help="(with --pipelining chain) carve each chunk into N slices "
        "streamed as SlicePacket frames with per-slice completion "
        "reports; 0 keeps packet-granular chaining",
    )

    agent = sub.add_parser(
        "agent",
        help="run one storage node's repair agent as a standalone "
        "process (serves repair traffic over TCP or shared memory "
        "until the coordinator sends Shutdown)",
    )
    agent.add_argument("--snapshot", required=True)
    agent.add_argument(
        "--node", type=int, required=True, help="this agent's node id"
    )
    agent.add_argument(
        "--transport",
        choices=("tcp", "shm"),
        default="tcp",
        help="'tcp' listens on --listen and dials --peers; 'shm' derives "
        "every ring name from --workdir (no --listen/--peers needed)",
    )
    agent.add_argument(
        "--listen",
        default=None,
        help="(tcp) host:port this agent accepts frames on",
    )
    agent.add_argument(
        "--peers",
        default=None,
        help="(tcp) node=host:port list or @file.json; must include "
        "'coordinator=host:port'",
    )
    agent.add_argument(
        "--workdir",
        required=True,
        help="directory for this node's chunk store (node_<id>/)",
    )
    agent.add_argument("--seed", type=int, default=0)
    agent.add_argument(
        "--config",
        default=None,
        help="RuntimeConfig JSON; must match the coordinator's so "
        "timeouts and fencing agree",
    )
    agent.add_argument(
        "--fault-plan",
        default=None,
        help="JSON FaultPlan shared by the whole cluster; this process "
        "injects the faults that apply to its sends",
    )
    agent.add_argument(
        "--no-load",
        action="store_true",
        help="skip deterministic data loading (store already populated, "
        "e.g. when resuming)",
    )

    gateway = sub.add_parser(
        "gateway",
        help="client-facing object store: serve PUT/GET over live "
        "agents, or act as the object client",
    )
    gsub = gateway.add_subparsers(dest="gateway_command")
    gserve = gsub.add_parser(
        "serve",
        help="run the object gateway against a live agent cluster "
        "(stripes PUTs through the codec, serves GETs degraded when a "
        "datanode is down)",
    )
    gserve.add_argument("--snapshot", required=True)
    gserve.add_argument(
        "--transport",
        choices=("tcp", "shm"),
        default="shm",
        help="'shm' derives every ring from --workdir; 'tcp' listens "
        "on --listen and dials --peers",
    )
    gserve.add_argument(
        "--workdir",
        required=True,
        help="the repair cluster's shared workdir (shm ring namespace, "
        "manifest directory)",
    )
    gserve.add_argument(
        "--listen", default=None, help="(tcp) host:port for the gateway"
    )
    gserve.add_argument(
        "--peers",
        default=None,
        help="(tcp) node=host:port list or @file.json; include "
        "'client=host:port' so replies reach the object client",
    )
    gserve.add_argument(
        "--chunk-size",
        type=int,
        default=64 * 1024,
        help="bytes per erasure-coded chunk (default 64 KiB)",
    )
    gserve.add_argument(
        "--client-floor",
        type=float,
        default=0.5,
        help="fraction of NIC bandwidth guaranteed to client traffic "
        "by the QoS arbiter (default 0.5)",
    )
    gserve.add_argument(
        "--max-seconds",
        type=float,
        default=0.0,
        help="exit after this many seconds (0 = serve until ^C)",
    )
    for gcmd, ghelp in (
        ("put", "store a file (or stdin) as an object"),
        ("get", "fetch an object to a file (or stdout)"),
    ):
        gp = gsub.add_parser(gcmd, help=ghelp)
        gp.add_argument("key", help="object key, e.g. videos/cat.mp4")
        gp.add_argument(
            "path",
            nargs="?",
            default="-",
            help="local file ('-' = stdin/stdout)",
        )
        gp.add_argument(
            "--transport", choices=("tcp", "shm"), default="shm"
        )
        gp.add_argument("--workdir", required=True)
        gp.add_argument("--listen", default=None)
        gp.add_argument("--peers", default=None)
        gp.add_argument(
            "--timeout",
            type=float,
            default=30.0,
            help="seconds to wait for the gateway's reply",
        )

    scrub = sub.add_parser(
        "scrub",
        help="checksum-verify every chunk and repair silent corruption",
    )
    scrub.add_argument("--snapshot", required=True)
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument(
        "--corrupt",
        type=int,
        default=0,
        help="flip a byte in this many randomly chosen chunks first "
        "(demonstrates detection + in-place repair)",
    )
    scrub.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the scrub report as JSON",
    )

    fleet = sub.add_parser(
        "fleet", help="generate a synthetic SMART fleet (CSV)"
    )
    fleet.add_argument("--disks", type=int, default=200)
    fleet.add_argument("--days", type=int, default=120)
    fleet.add_argument("--afr", type=float, default=0.1)
    fleet.add_argument("--seed", type=int, default=None)
    fleet.add_argument("-o", "--output", required=True)

    predict = sub.add_parser(
        "predict", help="train/evaluate the failure predictor on a fleet CSV"
    )
    predict.add_argument("--fleet", required=True)
    predict.add_argument("--train-fraction", type=float, default=0.7)
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument(
        "--model",
        choices=("logistic", "cart", "threshold"),
        default="logistic",
    )
    predict.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the evaluation metrics as JSON",
    )

    daemon = sub.add_parser(
        "daemon",
        help="run the always-on repair daemon: replay a SMART fleet "
        "against a snapshot, queueing and executing predictive/reactive "
        "repairs day by day (journaled, crash-resumable)",
    )
    daemon.add_argument("--snapshot", required=True)
    daemon.add_argument(
        "--fleet",
        required=True,
        help="SMART fleet CSV ('fastpr fleet'); trace i drives storage "
        "node i's disk",
    )
    daemon.add_argument(
        "--model",
        choices=("threshold", "logistic", "cart"),
        default="threshold",
        help="failure predictor watching the fleet (logistic/cart train "
        "on the fleet itself)",
    )
    daemon.add_argument(
        "--scenario",
        choices=("scattered", "hot_standby"),
        default="scattered",
    )
    daemon.add_argument("--seed", type=int, default=0)
    daemon.add_argument(
        "--journal",
        default=None,
        help="daemon queue journal (default: <workdir>/daemon.journal); "
        "reuse with --resume to continue after a crash",
    )
    daemon.add_argument(
        "--workdir",
        default=None,
        help="directory for chunk stores + journals (default: temp dir)",
    )
    daemon.add_argument(
        "--helper-budget",
        type=int,
        default=None,
        help="max repairs admitted per day; when spent, predictive "
        "repairs defer to the next day (reactive always admit)",
    )
    daemon.add_argument(
        "--scrub-interval",
        type=int,
        default=0,
        help="run a scrub cycle every N days (0 disables)",
    )
    daemon.add_argument(
        "--max-days",
        type=int,
        default=None,
        help="observe at most N telemetry days (default: full horizon)",
    )
    daemon.add_argument(
        "--fault-plan",
        default=None,
        help="JSON FaultPlan; coordinator_crashes and daemon_crashes "
        "kill the daemon mid-queue (it recovers from its journals)",
    )
    daemon.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry (queue depth, task "
        "outcomes, scrub counters) as JSON",
    )
    daemon.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the daemon report (events, repairs, crashes) as JSON",
    )

    lifetime = sub.add_parser(
        "lifetime",
        help="Monte-Carlo cluster-lifetime simulation: lost-stripe "
        "probability over simulated years, predictive vs reactive",
    )
    lifetime.add_argument("--trials", type=int, default=50)
    lifetime.add_argument("--years", type=float, default=1.0)
    lifetime.add_argument("--disks", type=int, default=30)
    lifetime.add_argument("--stripes", type=int, default=120)
    lifetime.add_argument("--code", default="rs(9,6)")
    lifetime.add_argument(
        "--process",
        choices=("weibull", "trace-replay", "both"),
        default="weibull",
    )
    lifetime.add_argument(
        "--fleet",
        default=None,
        help="SMART fleet CSV for the trace-replay process (synthesized "
        "when omitted)",
    )
    lifetime.add_argument(
        "--afr",
        type=float,
        default=0.04,
        help="annual disk failure rate of the Weibull process",
    )
    lifetime.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="simultaneous whole-disk repairs the cluster sustains",
    )
    lifetime.add_argument(
        "--latent-rate",
        type=float,
        default=0.0,
        help="latent sector errors per disk-year (0 disables)",
    )
    lifetime.add_argument(
        "--scrub-interval",
        type=float,
        default=14.0,
        help="scrub sweep period in days surfacing latent errors",
    )
    lifetime.add_argument("--seed", type=int, default=0)
    lifetime.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the durability study (both modes per process) as JSON",
    )

    report = sub.add_parser(
        "report",
        help="render a per-round breakdown from a repair trace "
        "(--trace-out of 'fastpr repair')",
    )
    report.add_argument(
        "--trace", required=True, help="trace JSON from --trace-out"
    )
    report.add_argument(
        "--metrics",
        default=None,
        help="optional metrics JSON from --metrics-out (summarized below "
        "the table)",
    )
    report.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the breakdown as JSON",
    )
    return parser


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------


def build_experiment(
    name: str, runs: Optional[int] = None, seed: Optional[int] = None
):
    """Run one named experiment, forwarding only the kwargs it takes."""
    factory = ALL_EXPERIMENTS[name]
    kwargs = {}
    if runs is not None and "runs" in factory.__code__.co_varnames:
        kwargs["runs"] = runs
    if seed is not None and "seed" in factory.__code__.co_varnames:
        kwargs["seed"] = seed
    return factory(**kwargs)


def run_experiment(
    name: str, runs: Optional[int], seed: Optional[int] = None, collect=None
) -> str:
    started = time.perf_counter()
    experiment = build_experiment(name, runs, seed)
    elapsed = time.perf_counter() - started
    if collect is not None:
        collect.append(experiment)
    return experiment.render() + f"\n[{name} completed in {elapsed:.1f}s]\n"


def _cmd_figures(args) -> int:
    if args.experiment == "list":
        for name, factory in ALL_EXPERIMENTS.items():
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    collected: list = []
    if args.experiment == "all":
        for name in ALL_EXPERIMENTS:
            print(run_experiment(name, args.runs, args.seed, collected))
    elif args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    else:
        print(run_experiment(args.experiment, args.runs, args.seed, collected))
    if args.output is not None:
        import json as json_mod

        with open(args.output, "w") as f:
            json_mod.dump(
                [experiment.to_dict() for experiment in collected], f, indent=2
            )
        print(f"wrote {len(collected)} experiment(s) to {args.output}")
    return 0


# ----------------------------------------------------------------------
# operational commands
# ----------------------------------------------------------------------


def _cmd_snapshot(args) -> int:
    from .cluster import StorageCluster
    from .cluster import snapshot as snapshot_mod
    from .ec import make_codec

    codec = make_codec(args.code)
    extra = {}
    if args.chunk_size is not None:
        extra["chunk_size"] = args.chunk_size
    cluster = StorageCluster.random(
        args.nodes,
        args.stripes,
        codec.n,
        codec.k,
        num_hot_standby=args.hot_standby,
        seed=args.seed,
        **extra,
    )
    snapshot_mod.save(cluster, args.output)
    print(
        f"wrote {cluster} with {args.code} stripes to {args.output}"
    )
    return 0


def _cmd_plan(args) -> int:
    from .cluster import snapshot as snapshot_mod
    from .core.plan import RepairScenario
    from .core.planner import (
        FastPRPlanner,
        MigrationOnlyPlanner,
        ReconstructionOnlyPlanner,
    )
    from .sim.cost_model import evaluate_plan

    cluster = snapshot_mod.load(args.snapshot)
    scenario = RepairScenario(args.scenario)
    node = cluster.node(args.stf)
    if node.is_failed:
        print(f"node {args.stf} already failed", file=sys.stderr)
        return 2
    node.mark_soon_to_fail()
    chunks = cluster.load_of(args.stf)
    print(f"{cluster}; STF node {args.stf} stores {chunks} chunks\n")
    print(
        f"{'planner':16s} {'rounds':>6s} {'migrate':>8s} {'reconstruct':>12s} "
        f"{'time (s)':>9s} {'s/chunk':>8s}"
    )
    fastpr_plan = None
    for planner in (
        FastPRPlanner(scenario=scenario, seed=args.seed),
        ReconstructionOnlyPlanner(scenario=scenario, seed=args.seed),
        MigrationOnlyPlanner(scenario=scenario),
    ):
        plan = planner.plan(cluster, args.stf)
        plan.validate(cluster)
        if fastpr_plan is None:
            fastpr_plan = plan  # the FastPR planner runs first
        result = evaluate_plan(cluster, plan)
        print(
            f"{planner.name:16s} {plan.num_rounds:>6d} "
            f"{plan.migrated_chunks:>8d} {plan.reconstructed_chunks:>12d} "
            f"{result.total_time:>9.1f} {result.time_per_chunk:>8.3f}"
        )
    if args.output is not None:
        import json as json_mod

        with open(args.output, "w") as f:
            json_mod.dump(fastpr_plan.to_dict(), f, indent=2)
        print(f"\nwrote FastPR plan to {args.output}")
    return 0


def _infer_codec(cluster):
    from .ec import make_codec

    stripes = list(cluster.stripes())
    if not stripes:
        raise SystemExit("snapshot has no stripes; nothing to repair")
    first = stripes[0]
    return make_codec(f"rs({first.n},{first.k})")


def _cmd_repair(args) -> int:
    import json as json_mod

    from .cluster import snapshot as snapshot_mod
    from .core.plan import RepairScenario
    from .core.planner import FastPRPlanner
    from .obs import MetricsRegistry, Tracer
    from .runtime import FaultPlan
    from .runtime.testbed import VerificationError
    from .session import RepairSession

    config = _load_runtime_config(args.config)
    cluster = snapshot_mod.load(args.snapshot)
    codec = _infer_codec(cluster)
    node = cluster.node(args.stf)
    if node.is_failed:
        print(f"node {args.stf} already failed", file=sys.stderr)
        return 2
    node.mark_soon_to_fail()
    faults = None
    if args.fault_plan is not None:
        with open(args.fault_plan) as f:
            try:
                faults = FaultPlan.from_dict(
                    json_mod.load(f), node_ids=cluster.nodes
                )
            except ValueError as exc:
                print(f"bad --fault-plan: {exc}", file=sys.stderr)
                return 2
    topology = None
    if args.racks is not None:
        from .cluster.topology import RackTopology

        topology = RackTopology.uniform(sorted(cluster.nodes), args.racks)
    if args.transport == "shm":
        from .net import shm_available

        if not shm_available():
            print(
                "shared-memory transport needs POSIX shm + flock",
                file=sys.stderr,
            )
            return 2
    plan = FastPRPlanner(
        scenario=RepairScenario(args.scenario), seed=args.seed
    ).plan(cluster, args.stf)
    plan.validate(cluster)
    print(plan.summary())
    metrics = MetricsRegistry()
    tracer = Tracer()
    try:
        # The session builder is the single validator for transport /
        # coordinators / pipelining combinations: a bad mix fails here,
        # before any process, journal or data load exists.
        session = RepairSession(
            cluster,
            codec,
            plan,
            transport=args.transport,
            coordinators=args.coordinators,
            pipelining=args.pipelining,
            slices=args.slices,
            peers=args.peers,
            workdir=args.workdir,
            seed=args.seed,
            config=config,
            packet_size=args.packet_size,
            journal_path=args.journal if args.coordinators <= 1 else None,
            journal_dir=args.journal if args.coordinators > 1 else None,
            faults=faults,
            topology=topology,
            metrics=metrics,
            tracer=tracer,
            resume=args.resume,
            agent_timeout=args.agent_timeout,
            scrub=(args.transport == "memory"),
            log=print,
        )
    except ValueError as exc:
        print(f"bad repair invocation: {exc}", file=sys.stderr)
        return 2
    try:
        summary = session.run()
    except VerificationError as exc:
        # Verification failure must surface as a non-zero exit with the
        # full list of mismatching chunk ids, never a silent success.
        print(f"post-repair verification failed: {exc}", file=sys.stderr)
        for mismatch in getattr(exc, "mismatches", []):
            print(
                f"mismatching chunk: stripe {mismatch.stripe_id} "
                f"index {mismatch.chunk_index} at node {mismatch.node_id} "
                f"({mismatch.reason})",
                file=sys.stderr,
            )
        return 1
    except Exception as exc:
        print(f"repair failed: {exc}", file=sys.stderr)
        return 1
    if args.metrics_out is not None:
        metrics.save(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.trace_out is not None:
        tracer.save(args.trace_out)
        print(f"wrote trace to {args.trace_out}")
    report = summary.scrub_report
    if args.output is not None:
        document = {
            "version": 1,
            **summary.to_dict(),
            "recovered_chunks": getattr(
                summary.result, "recovered_chunks", 0
            ),
            "converted_migrations": getattr(
                summary.result, "converted_migrations", 0
            ),
        }
        if report is not None:
            document["scrub"] = {
                "chunks_checked": report.chunks_checked,
                "corrupt": len(report.corrupt),
            }
        with open(args.output, "w") as f:
            json_mod.dump(document, f, indent=2)
        print(f"wrote run summary to {args.output}")
    pipelined = ""
    if args.pipelining != "off":
        pipelined = f" pipelining={args.pipelining}"
        if args.slices:
            pipelined += f" slices={args.slices}"
    if args.transport == "memory":
        print(
            f"repaired {summary.chunks_repaired} chunks "
            f"(+{getattr(summary.result, 'recovered_chunks', 0)} recovered) "
            f"in {summary.total_time:.2f}s over {len(summary.round_times)} "
            f"rounds; retries={summary.retries} replans={summary.replans} "
            f"coordinator_restarts={summary.restarts}{pipelined}"
        )
        print(
            f"post-repair scrub: {report.chunks_checked} chunks checked, "
            f"{len(report.corrupt)} corrupt"
        )
        if not report.clean:
            for corrupt in report.corrupt:
                print(
                    f"corrupt chunk: stripe {corrupt.stripe_id} "
                    f"index {corrupt.chunk_index} at node "
                    f"{corrupt.node_id}",
                    file=sys.stderr,
                )
            return 1
        print("all repaired chunks verified byte-identical")
        return 0
    sharded = (
        f" ({args.coordinators} coordinators, {summary.restarts} takeovers)"
        if args.coordinators > 1
        else ""
    )
    wire = "shared memory" if args.transport == "shm" else "TCP"
    print(
        f"repaired {summary.chunks_repaired} chunks over {wire} in "
        f"{summary.total_time:.2f}s{sharded}{pipelined}; "
        f"{summary.chunks_verified} chunks verified byte-identical"
    )
    return 0


def _load_runtime_config(path):
    """Load a RuntimeConfig JSON file, or None when no path given."""
    if path is None:
        return None
    import json as json_mod

    from .runtime import RuntimeConfig

    with open(path) as f:
        return RuntimeConfig.from_dict(json_mod.load(f))


def _cmd_agent(args) -> int:
    import json as json_mod
    from pathlib import Path

    from .cluster import snapshot as snapshot_mod
    from .net import (
        PeerSpecError,
        parse_peer_spec,
        run_agent_process,
        run_shm_agent_process,
        shm_available,
    )
    from .runtime import FaultPlan
    from .runtime.coordinator import COORDINATOR_ID

    cluster = snapshot_mod.load(args.snapshot)
    codec = _infer_codec(cluster)
    faults = None
    if args.fault_plan is not None:
        with open(args.fault_plan) as f:
            try:
                faults = FaultPlan.from_dict(
                    json_mod.load(f), node_ids=cluster.nodes
                )
            except ValueError as exc:
                print(f"bad --fault-plan: {exc}", file=sys.stderr)
                return 2
    if args.transport == "shm":
        if not shm_available():
            print(
                "shared-memory transport needs POSIX shm + flock",
                file=sys.stderr,
            )
            return 2
        loaded = run_shm_agent_process(
            cluster,
            codec,
            args.node,
            Path(args.workdir),
            seed=args.seed,
            config=_load_runtime_config(args.config),
            load_data=not args.no_load,
            faults=faults,
        )
        print(f"agent {args.node} done ({loaded} chunks served)")
        return 0
    if args.peers is None or args.listen is None:
        print(
            "--transport tcp needs --listen and --peers", file=sys.stderr
        )
        return 2
    try:
        peers = parse_peer_spec(args.peers)
    except PeerSpecError as exc:
        print(f"bad --peers: {exc}", file=sys.stderr)
        return 2
    if COORDINATOR_ID not in peers:
        print("--peers must include coordinator=host:port", file=sys.stderr)
        return 2
    host, sep, port = args.listen.rpartition(":")
    if not sep:
        print("--listen must be host:port", file=sys.stderr)
        return 2
    loaded = run_agent_process(
        cluster,
        codec,
        args.node,
        (host, int(port)),
        peers,
        Path(args.workdir),
        seed=args.seed,
        config=_load_runtime_config(args.config),
        load_data=not args.no_load,
        faults=faults,
    )
    print(f"agent {args.node} done ({loaded} chunks served)")
    return 0


def _gateway_tcp_network(args, own_id: int):
    """Build a listening TcpNetwork for a gateway-side CLI process."""
    from .net import PeerSpecError, TcpNetwork, parse_peer_spec

    if args.listen is None or args.peers is None:
        print(
            "--transport tcp needs --listen and --peers", file=sys.stderr
        )
        return None
    try:
        peers = parse_peer_spec(args.peers)
    except PeerSpecError as exc:
        print(f"bad --peers: {exc}", file=sys.stderr)
        return None
    host, sep, port = args.listen.rpartition(":")
    if not sep:
        print("--listen must be host:port", file=sys.stderr)
        return None
    network = TcpNetwork()
    network.listen(host, int(port))
    for peer_id, (peer_host, peer_port) in peers.items():
        if peer_id != own_id:
            network.add_peer(peer_id, peer_host, peer_port)
    return network


def _gateway_shm_network(args, own_id: int, peer_ids):
    """Build a listening ShmNetwork keyed off the shared workdir."""
    from pathlib import Path

    from .net import ShmNetwork, shm_available, shm_ring_name

    if not shm_available():
        print(
            "shared-memory transport needs POSIX shm + flock",
            file=sys.stderr,
        )
        return None
    workdir = Path(args.workdir)
    network = ShmNetwork()
    ring = shm_ring_name(workdir, own_id)
    try:
        network.listen(ring)
    except FileExistsError:
        # A crashed previous process (usually a one-shot client) left
        # its segment linked; reclaim the name and retry once.
        from multiprocessing import shared_memory

        stale = shared_memory.SharedMemory(name=ring)
        stale.close()
        stale.unlink()
        network.listen(ring)
    for peer_id in peer_ids:
        if peer_id != own_id:
            network.add_peer(peer_id, shm_ring_name(workdir, peer_id))
    return network


def _cmd_gateway(args) -> int:
    if args.gateway_command is None:
        print(
            "gateway needs a subcommand: serve, put or get",
            file=sys.stderr,
        )
        return 2
    if args.gateway_command == "serve":
        return _cmd_gateway_serve(args)
    return _cmd_gateway_client(args)


def _cmd_gateway_serve(args) -> int:
    import time as time_mod
    from pathlib import Path

    from .cluster import snapshot as snapshot_mod
    from .gateway import CLIENT_ID, GATEWAY_ID, GatewayServer, TrafficArbiter

    cluster = snapshot_mod.load(args.snapshot)
    codec = _infer_codec(cluster)
    workdir = Path(args.workdir)
    if args.transport == "shm":
        network = _gateway_shm_network(
            args, GATEWAY_ID, list(cluster.nodes) + [CLIENT_ID]
        )
    else:
        network = _gateway_tcp_network(args, GATEWAY_ID)
    if network is None:
        return 2
    arbiter = TrafficArbiter(
        cluster.network_bandwidth, client_floor=args.client_floor
    )
    network.arbiter = arbiter
    server = GatewayServer(
        cluster,
        codec,
        network,
        bandwidth=cluster.network_bandwidth,
        chunk_size=args.chunk_size,
        manifest_dir=workdir / "manifests",
    )
    print(
        f"gateway serving {codec!r} objects over {args.transport} "
        f"(client floor {args.client_floor:.0%}); ^C to stop"
    )
    try:
        if args.max_seconds > 0:
            time_mod.sleep(args.max_seconds)
        else:
            while True:
                time_mod.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        network.close()
    print(f"gateway done ({len(server.keys())} objects cataloged)")
    return 0


def _cmd_gateway_client(args) -> int:
    from pathlib import Path

    from .gateway import CLIENT_ID, GATEWAY_ID, GatewayError, ObjectClient

    if args.transport == "shm":
        network = _gateway_shm_network(args, CLIENT_ID, [GATEWAY_ID])
    else:
        network = _gateway_tcp_network(args, CLIENT_ID)
    if network is None:
        return 2
    client = ObjectClient(network, timeout=args.timeout)
    try:
        if args.gateway_command == "put":
            if args.path == "-":
                data = sys.stdin.buffer.read()
            else:
                data = Path(args.path).read_bytes()
            reply = client.put(args.key, data)
            print(
                f"put {args.key}: {reply.size} bytes across "
                f"{len(reply.stripes)} stripe(s) {list(reply.stripes)}"
            )
        else:
            reply = client.get(args.key)
            if args.path == "-":
                sys.stdout.buffer.write(reply.payload)
                sys.stdout.buffer.flush()
            else:
                Path(args.path).write_bytes(reply.payload)
            mode = "degraded" if reply.degraded else "healthy"
            print(
                f"get {args.key}: {len(reply.payload)} bytes ({mode})",
                file=sys.stderr,
            )
        return 0
    except GatewayError as exc:
        print(f"gateway error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
        network.close()


def _cmd_scrub(args) -> int:
    import random as random_mod

    from .cluster import snapshot as snapshot_mod
    from .runtime import Scrubber
    from .runtime.testbed import EmulatedTestbed

    cluster = snapshot_mod.load(args.snapshot)
    codec = _infer_codec(cluster)
    testbed = EmulatedTestbed(cluster, codec)
    with testbed:
        testbed.load_random_data(seed=args.seed)
        rng = random_mod.Random(args.seed)
        stripes = list(cluster.stripes())
        for _ in range(args.corrupt):
            stripe = rng.choice(stripes)
            index = rng.randrange(len(stripe.placement))
            store = testbed.stores[stripe.placement[index]]
            data = bytearray(store.read(stripe.stripe_id))
            data[rng.randrange(len(data))] ^= 0xFF
            store.put(stripe.stripe_id, bytes(data))
        report = Scrubber(testbed).scrub()
        if args.output is not None:
            import dataclasses
            import json as json_mod

            document = {
                "version": 1,
                "chunks_checked": report.chunks_checked,
                "corrupt": [dataclasses.asdict(c) for c in report.corrupt],
                "repaired": [dataclasses.asdict(c) for c in report.repaired],
                "unrepairable": [
                    dataclasses.asdict(c) for c in report.unrepairable
                ],
            }
            with open(args.output, "w") as f:
                json_mod.dump(document, f, indent=2)
            print(f"wrote scrub report to {args.output}")
        print(
            f"scrubbed {report.chunks_checked} chunks: "
            f"{len(report.corrupt)} corrupt, {len(report.repaired)} "
            f"repaired in place, {len(report.unrepairable)} unrepairable"
        )
        if report.unrepairable:
            return 1
        rescan = Scrubber(testbed).scan()
        if not rescan.clean:
            print("rescan still found corrupt chunks", file=sys.stderr)
            return 1
    print("store is clean")
    return 0


def _cmd_fleet(args) -> int:
    from .failure import SmartTraceGenerator, save_traces

    traces = SmartTraceGenerator(
        args.disks,
        horizon_days=args.days,
        annual_failure_rate=args.afr,
        seed=args.seed,
    ).generate()
    save_traces(traces, args.output)
    failing = sum(t.will_fail for t in traces)
    print(
        f"wrote {len(traces)} disks x {args.days} days "
        f"({failing} failing) to {args.output}"
    )
    return 0


def _cmd_predict(args) -> int:
    from .failure import (
        CartPredictor,
        LogisticPredictor,
        ThresholdPredictor,
        evaluate,
        load_traces,
    )

    traces = load_traces(args.fleet)
    split = int(len(traces) * args.train_fraction)
    train, test = traces[:split], traces[split:]
    if not train or not test:
        print("fleet too small to split", file=sys.stderr)
        return 2
    try:
        if args.model == "logistic":
            predictor = LogisticPredictor(seed=args.seed).fit(train)
        elif args.model == "cart":
            predictor = CartPredictor().fit(train)
        else:
            predictor = ThresholdPredictor()
    except ValueError as exc:
        print(f"training failed: {exc}", file=sys.stderr)
        return 2
    metrics = evaluate(predictor, test)
    print(
        f"model: {args.model}; disks: {len(train)} train / {len(test)} test\n"
        f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
        f"false-alarm rate={metrics.false_alarm_rate:.4f} "
        f"mean lead={metrics.mean_lead_days:.1f} days"
    )
    if args.output is not None:
        import json as json_mod

        document = {
            "version": 1,
            "model": args.model,
            "train_disks": len(train),
            "test_disks": len(test),
            "precision": metrics.precision,
            "recall": metrics.recall,
            "false_alarm_rate": metrics.false_alarm_rate,
            "mean_lead_days": metrics.mean_lead_days,
        }
        with open(args.output, "w") as f:
            json_mod.dump(document, f, indent=2)
        print(f"wrote evaluation metrics to {args.output}")
    return 0


def _cmd_daemon(args) -> int:
    import json as json_mod
    from pathlib import Path

    from .cluster import snapshot as snapshot_mod
    from .core.plan import RepairScenario
    from .failure import (
        CartPredictor,
        ClusterFailureMonitor,
        LogisticPredictor,
        ThresholdPredictor,
        load_traces,
    )
    from .runtime import CoordinatorCrash, FaultPlan
    from .runtime.daemon import DaemonCrash, RepairDaemon
    from .runtime.testbed import EmulatedTestbed

    cluster = snapshot_mod.load(args.snapshot)
    codec = _infer_codec(cluster)
    traces = load_traces(args.fleet)
    storage_nodes = cluster.storage_node_ids()
    if len(traces) > len(storage_nodes):
        traces = traces[: len(storage_nodes)]
    try:
        if args.model == "logistic":
            predictor = LogisticPredictor(seed=args.seed).fit(traces)
        elif args.model == "cart":
            predictor = CartPredictor().fit(traces)
        else:
            predictor = ThresholdPredictor()
    except ValueError as exc:
        print(f"training failed: {exc}", file=sys.stderr)
        return 2
    faults = None
    if args.fault_plan is not None:
        with open(args.fault_plan) as f:
            try:
                faults = FaultPlan.from_dict(
                    json_mod.load(f), node_ids=cluster.nodes
                )
            except ValueError as exc:
                print(f"bad --fault-plan: {exc}", file=sys.stderr)
                return 2
    testbed = EmulatedTestbed(
        cluster,
        codec,
        workdir=Path(args.workdir) if args.workdir else None,
        faults=faults,
    )
    journal_path = (
        Path(args.journal) if args.journal else testbed.workdir / "daemon.journal"
    )
    monitor = ClusterFailureMonitor(cluster, traces, predictor)
    crashes = 0
    with testbed:
        testbed.load_random_data(seed=args.seed)
        daemon = RepairDaemon(
            testbed,
            monitor,
            journal_path=journal_path,
            scenario=RepairScenario(args.scenario),
            seed=args.seed,
            helper_budget=args.helper_budget,
            scrub_interval_days=args.scrub_interval,
        )
        # Supervised loop: an injected daemon/coordinator death is
        # survived by a successor on the same journals — the always-on
        # property the deployment story needs.
        while True:
            try:
                daemon.resume()
                report = daemon.run(max_days=args.max_days)
                break
            except (CoordinatorCrash, DaemonCrash) as crash:
                crashes += 1
                print(f"daemon died ({crash}); restarting from journal")
                daemon.close()
                daemon = RepairDaemon(
                    testbed,
                    monitor,
                    journal_path=journal_path,
                    scenario=RepairScenario(args.scenario),
                    seed=args.seed,
                    helper_budget=args.helper_budget,
                    scrub_interval_days=args.scrub_interval,
                )
        daemon.close()
    print(
        f"daemon observed {daemon.next_day} days: "
        f"{len(report.stf_events)} predictive alarms "
        f"({len(report.suppressed_alarms)} suppressed), "
        f"{len(report.missed_failures)} missed failures, "
        f"{daemon.completed_tasks} repairs completed, "
        f"{daemon.queue_depth} queued, {crashes} restarts"
    )
    if args.metrics_out is not None:
        testbed.metrics.save(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.output is not None:
        document = {
            "version": 1,
            "days_observed": daemon.next_day,
            "stf_events": len(report.stf_events),
            "suppressed_alarms": len(report.suppressed_alarms),
            "missed_failures": len(report.missed_failures),
            "repairs_completed": daemon.completed_tasks,
            "queue_depth": daemon.queue_depth,
            "restarts": crashes,
        }
        with open(args.output, "w") as f:
            json_mod.dump(document, f, indent=2)
        print(f"wrote daemon report to {args.output}")
    return 0


def _cmd_lifetime(args) -> int:
    import json as json_mod

    from .ec import make_codec
    from .failure import SmartTraceGenerator, ThresholdPredictor, load_traces
    from .sim.lifetime import (
        LifetimeConfig,
        TraceReplayProcess,
        WeibullFailureProcess,
        durability_study,
    )

    codec = make_codec(args.code)
    config = LifetimeConfig(
        num_disks=args.disks,
        num_stripes=args.stripes,
        n=codec.n,
        k=codec.k,
        years=args.years,
        repair_concurrency=args.concurrency,
        latent_errors_per_disk_year=args.latent_rate,
        scrub_interval_days=args.scrub_interval,
    )
    processes = []
    if args.process in ("weibull", "both"):
        processes.append(
            WeibullFailureProcess(annual_failure_rate=args.afr)
        )
    if args.process in ("trace-replay", "both"):
        if args.fleet is not None:
            traces = load_traces(args.fleet)
        else:
            traces = SmartTraceGenerator(
                max(args.disks, 50),
                annual_failure_rate=max(args.afr, 0.05),
                seed=args.seed,
            ).generate()
        processes.append(
            TraceReplayProcess(traces, ThresholdPredictor())
        )
    entries = durability_study(
        processes, config, trials=args.trials, seed=args.seed
    )
    for entry in entries:
        for mode in ("predictive", "reactive"):
            summary = entry[mode]
            print(
                f"{entry['process']:13s} {mode:10s} "
                f"P(loss)={summary['lost_stripe_probability']:.4f}  "
                f"lost/trial={summary['mean_lost_stripes']:.3f}  "
                f"chunk-days at risk={summary['mean_chunk_days_at_risk']:.1f}  "
                f"max queue={summary['max_queue_depth']}"
            )
    if args.output is not None:
        document = {
            "version": 1,
            "trials": args.trials,
            "years": args.years,
            "code": args.code,
            "processes": entries,
        }
        with open(args.output, "w") as f:
            json_mod.dump(document, f, indent=2)
        print(f"wrote durability study to {args.output}")
    return 0


def _cmd_report(args) -> int:
    from .obs import (
        TraceError,
        breakdown_from_trace,
        load_report_inputs,
        metrics_summary,
        render_breakdown,
    )

    try:
        trace, metrics_doc = load_report_inputs(args.trace, args.metrics)
        breakdown = breakdown_from_trace(trace)
    except (OSError, TraceError, ValueError) as exc:
        print(f"cannot build report: {exc}", file=sys.stderr)
        return 2
    print(render_breakdown(breakdown))
    if metrics_doc is not None:
        summary = metrics_summary(metrics_doc)
        if summary:
            print("\nmetrics:")
            print(summary)
    if args.output is not None:
        import json as json_mod

        with open(args.output, "w") as f:
            json_mod.dump(breakdown.to_dict(), f, indent=2)
        print(f"\nwrote breakdown to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: `fastpr fig8` == `fastpr figures fig8`.
    if argv and argv[0] in _FIGURE_WORDS:
        argv = ["figures"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "figures": _cmd_figures,
        "snapshot": _cmd_snapshot,
        "plan": _cmd_plan,
        "repair": _cmd_repair,
        "agent": _cmd_agent,
        "gateway": _cmd_gateway,
        "scrub": _cmd_scrub,
        "fleet": _cmd_fleet,
        "predict": _cmd_predict,
        "daemon": _cmd_daemon,
        "lifetime": _cmd_lifetime,
        "report": _cmd_report,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
