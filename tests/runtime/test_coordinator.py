"""Tests for the coordinator's command generation."""

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import ChunkRepairAction, RepairMethod
from repro.ec import make_codec
from repro.runtime.coordinator import COORDINATOR_ID, Coordinator
from repro.runtime.transport import Network


@pytest.fixture
def setup():
    cluster = StorageCluster(8, chunk_size=1024)
    cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])
    cluster.node(0).mark_soon_to_fail()
    net = Network()
    codec = make_codec("rs(5,3)")
    coordinator = Coordinator(net, cluster, codec, packet_size=256)
    return cluster, net, codec, coordinator


class TestSourceCoefficients:
    def test_migration_unity_coefficient(self, setup):
        cluster, net, codec, coordinator = setup
        action = ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (0,), 5)
        assert coordinator._source_coefficients(action) == {0: 1}

    def test_reconstruction_coefficients_match_codec(self, setup):
        cluster, net, codec, coordinator = setup
        # Stripe 0 placement [0,1,2,3,4]; node i holds chunk index i.
        action = ChunkRepairAction(
            0, 0, RepairMethod.RECONSTRUCTION, (1, 2, 3), 5
        )
        coeffs = coordinator._source_coefficients(action)
        expected = codec.recovery_coefficients(0, [1, 2, 3])
        assert coeffs == {node: expected[node] for node in (1, 2, 3)}

    def test_coefficients_resolve_node_to_chunk_index(self):
        # Shuffled placement: node id != chunk index.
        cluster = StorageCluster(8, chunk_size=1024)
        cluster.add_stripe(5, 3, [4, 3, 2, 1, 0])
        net = Network()
        codec = make_codec("rs(5,3)")
        coordinator = Coordinator(net, cluster, codec, packet_size=256)
        # Repair chunk index 0 (stored on node 4, the "STF" here);
        # helpers are nodes 3, 2, 1 holding chunk indices 1, 2, 3.
        action = ChunkRepairAction(
            0, 0, RepairMethod.RECONSTRUCTION, (3, 2, 1), 5
        )
        coeffs = coordinator._source_coefficients(action)
        expected = codec.recovery_coefficients(0, [1, 2, 3])
        assert coeffs == {3: expected[1], 2: expected[2], 1: expected[3]}

    def test_coordinator_attaches_itself(self, setup):
        cluster, net, codec, coordinator = setup
        assert net.endpoint(COORDINATOR_ID) is coordinator._endpoint
