"""Bipartite matching and max-flow — the engine behind Algorithm 1.

The paper formulates both helper selection (Fig. 4(b)) and repaired-
chunk placement (Fig. 4(c)) as bipartite maximum-matching problems and
solves them "as a maximum flow problem by Ford-Fulkerson".  This module
provides three interchangeable solvers:

* :func:`hopcroft_karp` — classic O(E sqrt(V)) bipartite matching,
* :class:`DinicMaxFlow` — general max-flow (the Ford-Fulkerson family),
* :class:`IncrementalStripeMatcher` — an augmenting-path matcher with
  cheap rollback, tailored to Algorithm 1's MATCH calls, which add one
  stripe (k chunk vertices) at a time to an existing matching.

For helper selection, each stripe to be reconstructed needs ``k``
distinct helper nodes out of the ``n - 1`` nodes holding its surviving
chunks, and a node may serve at most one chunk per repair round.  We
model each stripe as ``k`` chunk "slots"; a full matching saturates
every slot.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# Hopcroft-Karp
# ----------------------------------------------------------------------


def hopcroft_karp(
    adjacency: Sequence[Sequence[int]], num_right: int
) -> Tuple[int, List[int], List[int]]:
    """Maximum bipartite matching via Hopcroft-Karp.

    Args:
        adjacency: ``adjacency[u]`` lists the right-vertices adjacent to
            left-vertex ``u``.
        num_right: number of right vertices.

    Returns:
        ``(size, match_left, match_right)`` where ``match_left[u]`` is
        the right vertex matched to ``u`` (or -1) and vice versa.
    """
    num_left = len(adjacency)
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    INF = float("inf")

    def bfs() -> bool:
        dist = [INF] * num_left
        queue = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif dist[w] is INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        bfs.dist = dist  # type: ignore[attr-defined]
        return found_free

    def dfs(u: int) -> bool:
        dist = bfs.dist  # type: ignore[attr-defined]
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    size = 0
    while bfs():
        for u in range(num_left):
            if match_left[u] == -1 and dfs(u):
                size += 1
    return size, match_left, match_right


# ----------------------------------------------------------------------
# Dinic max-flow
# ----------------------------------------------------------------------


class DinicMaxFlow:
    """Dinic's max-flow on a directed graph with integer capacities."""

    def __init__(self, num_vertices: int):
        self.n = num_vertices
        self.graph: List[List[int]] = [[] for _ in range(num_vertices)]
        # Edge arrays: to[], cap[]; reverse edge is eid ^ 1.
        self._to: List[int] = []
        self._cap: List[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge ``u -> v``; returns its edge id."""
        eid = len(self._to)
        self.graph[u].append(eid)
        self._to.append(v)
        self._cap.append(capacity)
        self.graph[v].append(eid + 1)
        self._to.append(u)
        self._cap.append(0)
        return eid

    def edge_flow(self, eid: int) -> int:
        """Flow currently pushed through edge ``eid``."""
        return self._cap[eid ^ 1]

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow from source to sink."""
        flow = 0
        while True:
            level = self._bfs(source, sink)
            if level is None:
                return flow
            it = [0] * self.n
            while True:
                pushed = self._dfs(source, sink, float("inf"), level, it)
                if not pushed:
                    break
                flow += pushed

    def _bfs(self, source: int, sink: int) -> Optional[List[int]]:
        level = [-1] * self.n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for eid in self.graph[u]:
                v = self._to[eid]
                if self._cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _dfs(self, u, sink, limit, level, it):
        if u == sink:
            return limit
        while it[u] < len(self.graph[u]):
            eid = self.graph[u][it[u]]
            v = self._to[eid]
            if self._cap[eid] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(v, sink, min(limit, self._cap[eid]), level, it)
                if pushed:
                    self._cap[eid] -= pushed
                    self._cap[eid ^ 1] += pushed
                    return pushed
            it[u] += 1
        return 0


def stripe_helper_flow(
    stripe_helpers: Dict[Hashable, Sequence[Hashable]], k: int
) -> Optional[Dict[Hashable, List[Hashable]]]:
    """Solve helper selection as a max-flow problem (Fig. 4(b)).

    Each stripe must receive ``k`` distinct helper nodes from its
    candidate list; each node serves at most one stripe-chunk overall.

    Args:
        stripe_helpers: stripe key -> candidate helper node keys.
        k: helpers needed per stripe.

    Returns:
        stripe -> list of k chosen helper nodes, or ``None`` if the
        demand cannot be fully met (the matching is not "maximum with
        k * |stripes| edges" in the paper's phrasing).
    """
    stripes = list(stripe_helpers)
    nodes = sorted({h for helpers in stripe_helpers.values() for h in helpers})
    node_index = {node: i for i, node in enumerate(nodes)}
    # Vertex ids: 0 = source, 1..S = stripes, S+1..S+N = nodes, last = sink.
    S, N = len(stripes), len(nodes)
    source, sink = 0, S + N + 1
    flow = DinicMaxFlow(S + N + 2)
    stripe_edges: Dict[Hashable, List[Tuple[int, Hashable]]] = {}
    for si, stripe in enumerate(stripes):
        flow.add_edge(source, 1 + si, k)
        edges = []
        for helper in stripe_helpers[stripe]:
            eid = flow.add_edge(1 + si, 1 + S + node_index[helper], 1)
            edges.append((eid, helper))
        stripe_edges[stripe] = edges
    for ni in range(N):
        flow.add_edge(1 + S + ni, sink, 1)
    total = flow.max_flow(source, sink)
    if total != k * S:
        return None
    assignment: Dict[Hashable, List[Hashable]] = {}
    for stripe in stripes:
        chosen = [h for eid, h in stripe_edges[stripe] if flow.edge_flow(eid) > 0]
        assignment[stripe] = chosen
    return assignment


# ----------------------------------------------------------------------
# Incremental Kuhn matcher (Algorithm 1's MATCH workhorse)
# ----------------------------------------------------------------------


class IncrementalStripeMatcher:
    """Augmenting-path matcher that grows one stripe at a time.

    Algorithm 1 repeatedly asks "can R ∪ {Ci} still be matched?".
    Rebuilding a flow network per query is wasteful; instead we keep a
    matching and try to augment it with the ``k`` new chunk slots of the
    candidate stripe, rolling back on failure.

    Node keys are arbitrary hashables (cluster node ids).
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        #: slot id -> candidate helper nodes
        self._slot_candidates: List[Tuple[Hashable, List[Hashable]]] = []
        #: node -> slot id it is matched to
        self._match_of_node: Dict[Hashable, int] = {}
        #: slot id -> node (parallel to _slot_candidates)
        self._match_of_slot: List[Hashable] = []
        #: stripes currently matched, in insertion order
        self._stripes: List[Hashable] = []
        self._slots_of_stripe: Dict[Hashable, List[int]] = {}

    @property
    def stripes(self) -> List[Hashable]:
        """Stripes currently in the matching."""
        return list(self._stripes)

    def clone(self) -> "IncrementalStripeMatcher":
        """Cheap deep-enough copy (candidate lists are shared, state is not)."""
        twin = IncrementalStripeMatcher(self.k)
        twin._slot_candidates = list(self._slot_candidates)
        twin._match_of_node = dict(self._match_of_node)
        twin._match_of_slot = list(self._match_of_slot)
        twin._stripes = list(self._stripes)
        twin._slots_of_stripe = {s: list(v) for s, v in self._slots_of_stripe.items()}
        return twin

    def __len__(self) -> int:
        return len(self._stripes)

    def try_add(self, stripe: Hashable, helpers: Sequence[Hashable]) -> bool:
        """Try to add a stripe needing ``k`` distinct nodes from ``helpers``.

        Returns True (and keeps the stripe) if the enlarged matching
        still saturates every chunk slot; otherwise restores the
        previous matching exactly and returns False.

        Rollback uses an undo trail of the augmenting paths' individual
        reassignments rather than snapshotting the whole matching —
        Algorithm 1 calls this in a tight loop, and copying O(M) state
        per probe dominates its running time otherwise.
        """
        if stripe in self._slots_of_stripe:
            raise ValueError(f"stripe {stripe!r} already in matching")
        helpers = list(dict.fromkeys(helpers))  # dedupe, keep order
        if len(helpers) < self.k:
            return False
        trail: List[tuple] = []
        base = len(self._slot_candidates)
        new_slots = []
        for s in range(self.k):
            self._slot_candidates.append((stripe, helpers))
            self._match_of_slot.append(None)
            new_slots.append(base + s)
        ok = True
        for slot in new_slots:
            if not self._augment(slot, set(), trail):
                ok = False
                break
        if not ok:
            for node, prev_slot in reversed(trail):
                if prev_slot is None:
                    del self._match_of_node[node]
                else:
                    self._match_of_node[node] = prev_slot
                    self._match_of_slot[prev_slot] = node
            del self._slot_candidates[base:]
            del self._match_of_slot[base:]
            return False
        self._stripes.append(stripe)
        self._slots_of_stripe[stripe] = new_slots
        return True

    def would_fit(self, stripe: Hashable, helpers: Sequence[Hashable]) -> bool:
        """Non-mutating feasibility probe (MATCH without commitment)."""
        if self.try_add(stripe, helpers):
            self.remove(stripe)
            return True
        return False

    def remove(self, stripe: Hashable) -> None:
        """Remove a stripe and rebuild the matching without it.

        A full rebuild keeps the implementation simple and is only used
        by :meth:`would_fit` and the swap phase of Algorithm 1.
        """
        if stripe not in self._slots_of_stripe:
            raise KeyError(f"stripe {stripe!r} not in matching")
        remaining = [
            (s, self._slot_candidates[self._slots_of_stripe[s][0]][1])
            for s in self._stripes
            if s != stripe
        ]
        self._reset()
        for s, helpers in remaining:
            if not self.try_add(s, helpers):
                raise AssertionError(
                    "matching became infeasible after removal; invariant broken"
                )

    def assignment(self) -> Dict[Hashable, List[Hashable]]:
        """Current stripe -> chosen helper nodes mapping."""
        result: Dict[Hashable, List[Hashable]] = {}
        for stripe, slots in self._slots_of_stripe.items():
            result[stripe] = [self._match_of_slot[s] for s in slots]
        return result

    def _reset(self) -> None:
        self._slot_candidates = []
        self._match_of_node = {}
        self._match_of_slot = []
        self._stripes = []
        self._slots_of_stripe = {}

    def _augment(self, slot: int, visited: set, trail: Optional[list] = None) -> bool:
        """Kuhn's DFS: find an augmenting path for ``slot``.

        Every (node -> slot) reassignment is appended to ``trail`` as
        ``(node, previous_slot)`` so a failed :meth:`try_add` can undo
        exactly what its augmenting paths changed.
        """
        _, candidates = self._slot_candidates[slot]
        for node in candidates:
            if node in visited:
                continue
            visited.add(node)
            holder = self._match_of_node.get(node)
            if holder is None or self._augment(holder, visited, trail):
                if trail is not None:
                    trail.append((node, holder))
                self._match_of_node[node] = slot
                self._match_of_slot[slot] = node
                return True
        return False


def match_one_per_target(
    candidates: Dict[Hashable, Sequence[Hashable]]
) -> Optional[Dict[Hashable, Hashable]]:
    """Match each key to one distinct value (Fig. 4(c) placement).

    Args:
        candidates: key (stripe being repaired) -> eligible nodes.

    Returns:
        key -> node with all nodes distinct, or None if no perfect
        matching over the keys exists.
    """
    keys = list(candidates)
    values = sorted({v for vs in candidates.values() for v in vs})
    value_index = {v: i for i, v in enumerate(values)}
    adjacency = [
        [value_index[v] for v in candidates[key]] for key in keys
    ]
    size, match_left, _ = hopcroft_karp(adjacency, len(values))
    if size != len(keys):
        return None
    return {key: values[match_left[i]] for i, key in enumerate(keys)}
