"""Tests for the Monte-Carlo cluster-lifetime simulation."""

import random
from dataclasses import replace

import pytest

from repro.failure.predictor import ThresholdPredictor, first_alarm_day
from repro.failure.smart import SmartTraceGenerator
from repro.sim.events import Simulation, SimulationError
from repro.sim.lifetime import (
    DiskEvent,
    LifetimeConfig,
    TraceReplayProcess,
    WeibullFailureProcess,
    durability_study,
    run_lifetime,
)


class TestDiskEvent:
    def test_needs_some_event(self):
        with pytest.raises(ValueError, match="failure or an alarm"):
            DiskEvent(0, None, None)

    def test_alarm_must_precede_failure(self):
        with pytest.raises(ValueError, match="alarm_day"):
            DiskEvent(0, fail_day=10.0, alarm_day=12.0)

    def test_false_alarm_and_miss_are_legal(self):
        assert DiskEvent(0, None, 5.0).fail_day is None
        assert DiskEvent(0, 5.0, None).alarm_day is None


class TestSimulationSchedule:
    def test_schedule_at_runs_in_time_order(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append("b"))
        sim.schedule_at(1.0, lambda: seen.append("a"))
        sim.run()
        assert seen == ["a", "b"]

    def test_schedule_in_past_rejected(self):
        sim = Simulation()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(10.0, lambda: seen.append(10))
        assert sim.run_until(5.0) == 5.0
        assert seen == [1]
        sim.run()
        assert seen == [1, 10]


class TestWeibullProcess:
    def test_deterministic_per_seed(self):
        process = WeibullFailureProcess(annual_failure_rate=0.2)
        a = process.events(random.Random(1), 20, 365.0)
        b = process.events(random.Random(1), 20, 365.0)
        assert a == b

    def test_failure_rate_roughly_matches_afr(self):
        # With shape ~1, failures per disk-year ~ AFR; check the scale
        # calibration lands within a loose statistical band.
        afr = 0.2
        process = WeibullFailureProcess(
            annual_failure_rate=afr, detection_rate=0.0, false_alarm_rate=0.0
        )
        events = process.events(random.Random(3), 500, 365.0)
        failures = sum(1 for e in events if e.fail_day is not None)
        assert 0.5 * afr * 500 < failures < 2.0 * afr * 500

    def test_alarms_lead_failures(self):
        process = WeibullFailureProcess(
            annual_failure_rate=0.5, detection_rate=1.0, lead_days=10.0
        )
        events = process.events(random.Random(7), 50, 365.0)
        predicted = [e for e in events if e.fail_day and e.alarm_day]
        assert predicted
        for event in predicted:
            assert event.alarm_day <= event.fail_day

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            WeibullFailureProcess(shape=0.0)
        with pytest.raises(ValueError, match="annual_failure_rate"):
            WeibullFailureProcess(annual_failure_rate=1.5)


class TestTraceReplayProcess:
    @pytest.fixture(scope="class")
    def traces(self):
        return SmartTraceGenerator(
            num_disks=80, annual_failure_rate=0.3, seed=11
        ).generate()

    def test_alarm_days_come_from_the_predictor(self, traces):
        predictor = ThresholdPredictor()
        process = TraceReplayProcess(traces, predictor)
        spans = {}
        for trace in traces:
            alarm = first_alarm_day(predictor, trace)
            if trace.failure_day is not None and alarm is not None:
                spans[trace.disk_id] = (alarm, trace.failure_day)
        events = process.events(random.Random(5), 30, 365.0)
        predicted = [e for e in events if e.fail_day and e.alarm_day]
        assert predicted  # a 30% AFR fleet predicts *something*
        for event in predicted:
            assert event.alarm_day < event.fail_day

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TraceReplayProcess([], ThresholdPredictor())

    def test_tiles_past_the_trace_span(self, traces):
        process = TraceReplayProcess(traces, ThresholdPredictor())
        events = process.events(random.Random(9), 10, 5 * 365.0)
        # A 120-day fleet only covers 5 years by tiling replacements.
        assert any(e.fail_day and e.fail_day > 365.0 for e in events)


AGGRESSIVE = LifetimeConfig(
    num_disks=12,
    num_stripes=60,
    n=6,
    k=5,
    years=2.0,
    repair_concurrency=1,
    reactive_repair_days=12.0,
    replacement_delay_days=3.0,
    predictive_repair_days=0.5,
)


class TestRunLifetime:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="k < n"):
            LifetimeConfig(n=3, k=3)
        with pytest.raises(ValueError, match="disks"):
            LifetimeConfig(num_disks=5, n=9, k=6)
        with pytest.raises(ValueError, match="concurrency"):
            LifetimeConfig(repair_concurrency=0)

    def test_placement_shared_across_trials(self):
        config = LifetimeConfig(num_disks=12, num_stripes=10, n=9, k=6)
        assert config.placement() == config.placement()
        for disks in config.placement():
            assert len(set(disks)) == config.n

    def test_deterministic_per_seed(self):
        process = WeibullFailureProcess(annual_failure_rate=0.3)
        config = LifetimeConfig(num_disks=12, num_stripes=30, n=9, k=6)
        a = run_lifetime(process, config, trials=5, seed=4)
        b = run_lifetime(process, config, trials=5, seed=4)
        assert a.to_dict() == b.to_dict()

    def test_predictive_repair_cuts_exposure_and_loss(self):
        process = WeibullFailureProcess(
            annual_failure_rate=0.5, detection_rate=0.97, lead_days=20.0
        )
        predictive = run_lifetime(process, AGGRESSIVE, trials=15, seed=9)
        reactive = run_lifetime(
            process, replace(AGGRESSIVE, predictive=False), trials=15, seed=9
        )
        # Under slow single-crew repair and a hot failure process, the
        # paper's mechanism is the difference between losing stripes
        # and not: alarms drain disks before they die.
        assert reactive.lost_stripe_probability > 0
        assert (
            predictive.lost_stripe_probability
            < reactive.lost_stripe_probability
        )
        assert (
            predictive.mean_chunk_days_at_risk
            < reactive.mean_chunk_days_at_risk
        )

    def test_reactive_mode_ignores_alarms(self):
        process = WeibullFailureProcess(
            annual_failure_rate=0.4, detection_rate=1.0
        )
        config = replace(AGGRESSIVE, predictive=False)
        report = run_lifetime(process, config, trials=5, seed=2)
        totals = {}
        for result in report.results:
            for kind, count in result.repairs_completed.items():
                totals[kind] = totals.get(kind, 0) + count
        assert totals.get("predictive", 0) == 0
        assert totals.get("reactive", 0) > 0

    def test_queue_depth_tracked_under_contention(self):
        process = WeibullFailureProcess(annual_failure_rate=0.6)
        report = run_lifetime(process, AGGRESSIVE, trials=5, seed=6)
        assert report.max_queue_depth >= 1
        assert report.mean_max_queue_depth > 0

    def test_latent_errors_found_by_scrub(self):
        config = LifetimeConfig(
            num_disks=12,
            num_stripes=40,
            n=6,
            k=5,
            years=1.0,
            latent_errors_per_disk_year=2.0,
            scrub_interval_days=10.0,
        )
        process = WeibullFailureProcess(annual_failure_rate=0.05)
        report = run_lifetime(process, config, trials=5, seed=8)
        latent = sum(r.latent_errors for r in report.results)
        detected = sum(r.scrub_detections for r in report.results)
        chunk_repairs = sum(
            r.repairs_completed.get("chunk", 0) for r in report.results
        )
        assert latent > 0
        assert 0 < detected <= latent
        assert chunk_repairs > 0

    def test_unscrubbed_latent_errors_accumulate_risk(self):
        base = LifetimeConfig(
            num_disks=12,
            num_stripes=40,
            n=6,
            k=5,
            years=1.0,
            latent_errors_per_disk_year=2.0,
            scrub_interval_days=5.0,
        )
        process = WeibullFailureProcess(annual_failure_rate=0.05)
        scrubbed = run_lifetime(process, base, trials=5, seed=8)
        unscrubbed = run_lifetime(
            process, replace(base, scrub_interval_days=0.0), trials=5, seed=8
        )
        assert (
            unscrubbed.mean_chunk_days_at_risk
            > scrubbed.mean_chunk_days_at_risk
        )

    def test_trials_must_be_positive(self):
        with pytest.raises(ValueError, match="trials"):
            run_lifetime(
                WeibullFailureProcess(), LifetimeConfig(), trials=0
            )

    def test_report_dict_shape(self):
        process = WeibullFailureProcess(annual_failure_rate=0.2)
        config = LifetimeConfig(num_disks=12, num_stripes=20, n=9, k=6)
        document = run_lifetime(process, config, trials=3, seed=1).to_dict()
        for key in (
            "process",
            "predictive",
            "trials",
            "lost_stripe_probability",
            "mean_chunk_days_at_risk",
            "max_queue_depth",
            "disk_failures",
            "repairs_completed",
        ):
            assert key in document
        assert document["trials"] == 3
        assert "summary" not in document


class TestDurabilityStudy:
    def test_both_modes_per_process(self):
        traces = SmartTraceGenerator(
            num_disks=40, annual_failure_rate=0.3, seed=3
        ).generate()
        processes = [
            WeibullFailureProcess(annual_failure_rate=0.1),
            TraceReplayProcess(traces, ThresholdPredictor()),
        ]
        config = LifetimeConfig(num_disks=12, num_stripes=30, n=9, k=6)
        entries = durability_study(processes, config, trials=3, seed=2)
        assert [e["process"] for e in entries] == ["weibull", "trace-replay"]
        for entry in entries:
            assert entry["predictive"]["predictive"] is True
            assert entry["reactive"]["predictive"] is False
            assert entry["predictive"]["trials"] == 3
