"""Span-based tracing of repair runs (testbed and simulator alike).

A repair run is a tree of timed phases::

    repair
    ├── plan_commit
    ├── round (round=0)
    │   ├── action (method=migration, stripe=4, ...)
    │   ├── action (method=reconstruction, ...)
    │   └── journal_fsync
    └── round (round=1) ...

:class:`Tracer` records that tree as flat :class:`Span` records (id,
parent id, name, start, end, attrs) — the JSON schema both the
wall-clock runtime and the discrete-event simulator emit, so the same
``repro report`` renders either.  The clock is pluggable:

* :class:`WallClock` — ``time.monotonic()``; the emulated testbed.
* :class:`SimClock` — an explicitly advanced simulated time; the
  event-driven simulator sets it to ``Simulation.now``.

Span creation is thread-safe and parenting is per-thread: a span
opened on an agent worker thread does not accidentally nest under the
coordinator's current round.  Spans may be used lexically
(``with tracer.span("round", round=i):``) or hand-closed
(``span = tracer.start_span(...); ...; span.finish()``) for intervals
that do not nest in code — e.g. an action opened at command issue and
closed when its ACK arrives.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: schema version of the trace JSON document
TRACE_SCHEMA_VERSION = 1


class TraceError(ValueError):
    """Raised on malformed trace documents."""


class WallClock:
    """Monotonic wall-clock time (the emulated testbed's clock)."""

    def now(self) -> float:
        return time.monotonic()


class SimClock:
    """Explicitly advanced simulated time (the simulator's clock)."""

    def __init__(self, start: float = 0.0):
        self.time = float(start)

    def advance_to(self, timestamp: float) -> None:
        """Move simulated time forward (never backward)."""
        if timestamp > self.time:
            self.time = float(timestamp)

    def now(self) -> float:
        return self.time


class Span:
    """One timed interval in the trace tree."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def annotate(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> "Span":
        """Close the span at the tracer clock's current time."""
        if attrs:
            self.annotate(**attrs)
        self.tracer._finish(self)
        return self

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, attrs={self.attrs})"
        )


class _SpanContext:
    """Context manager wrapping a span's open/close around a block."""

    __slots__ = ("span",)

    def __init__(self, span: Span):
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.finish()


class Tracer:
    """Collects spans into a trace document.

    Args:
        clock: time source; :class:`WallClock` by default.
        enabled: a disabled tracer records nothing (spans still work
            as inert objects, so instrumented code needs no branches).
    """

    def __init__(self, clock=None, enabled: bool = True):
        self.clock = clock or WallClock()
        self.enabled = enabled
        self._lock = threading.Lock()
        self._next_id = 1
        self._spans: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Open a span; it must be closed via :meth:`Span.finish`.

        Without an explicit ``parent`` the span nests under the
        current thread's innermost *lexical* span (one opened via
        :meth:`span`), or becomes a root span.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else None
        return Span(
            self,
            span_id,
            parent.span_id if parent is not None else None,
            name,
            self.clock.now(),
            dict(attrs),
        )

    def span(self, name: str, parent: Optional[Span] = None, **attrs):
        """Lexical span: ``with tracer.span("round", round=i) as s:``."""
        opened = self.start_span(name, parent=parent, **attrs)
        tracer = self

        class _Lexical(_SpanContext):
            __slots__ = ()

            def __enter__(self) -> Span:
                tracer._stack().append(self.span)
                return self.span

            def __exit__(self, *exc) -> None:
                stack = tracer._stack()
                if stack and stack[-1] is self.span:
                    stack.pop()
                self.span.finish()

        return _Lexical(opened)

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return  # already closed (idempotent finish)
        span.end = self.clock.now()
        if not self.enabled:
            return
        with self._lock:
            self._spans.append(span)

    # -- reading the trace ---------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order (optionally by name)."""
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def children_of(self, span: Span, name: Optional[str] = None) -> List[Span]:
        return [
            s
            for s in self.spans(name)
            if s.parent_id == span.span_id
        ]

    def to_dict(self) -> dict:
        """The trace document (see DESIGN.md, trace schema)."""
        spans = sorted(self.spans(), key=lambda s: (s.start, s.span_id))
        return {
            "version": TRACE_SCHEMA_VERSION,
            "clock": type(self.clock).__name__,
            "spans": [s.to_dict() for s in spans],
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))


# ----------------------------------------------------------------------
# reading trace documents back (the ``repro report`` side)
# ----------------------------------------------------------------------


class TraceDocument:
    """A parsed trace: flat span records plus tree navigation."""

    def __init__(self, document: dict):
        version = document.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceError(
                f"unsupported trace version {version!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        spans = document.get("spans")
        if not isinstance(spans, list):
            raise TraceError("trace document has no spans list")
        self.clock = document.get("clock", "WallClock")
        self.spans: List[dict] = []
        seen = set()
        for record in spans:
            try:
                span_id = record["id"]
                record["name"], record["start"], record["attrs"]
            except (TypeError, KeyError) as exc:
                raise TraceError(f"malformed span record {record!r}") from exc
            if span_id in seen:
                raise TraceError(f"duplicate span id {span_id}")
            seen.add(span_id)
            self.spans.append(record)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceDocument":
        try:
            document = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid JSON in {path}: {exc}") from exc
        return cls(document)

    def named(self, name: str) -> List[dict]:
        return [s for s in self.spans if s["name"] == name]

    def children_of(self, span_id: int, name: Optional[str] = None) -> List[dict]:
        return [
            s
            for s in self.spans
            if s["parent"] == span_id and (name is None or s["name"] == name)
        ]

    def roots(self) -> List[dict]:
        return [s for s in self.spans if s["parent"] is None]

    def walk(self) -> Iterator[dict]:
        yield from self.spans


def duration_of(span: dict) -> float:
    """Duration of a span record (0.0 for an unfinished span)."""
    end = span.get("end")
    if end is None:
        return 0.0
    return end - span["start"]
